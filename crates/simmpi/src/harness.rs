//! Top-level harness: run an MPI program on a simulated cluster and collect
//! per-rank overlap reports plus fabric ground truth.

use std::sync::Arc;

use overlap_core::{OverlapReport, RecorderOpts, XferTimeTable};
use parking_lot::Mutex;
use simcore::{ActivityLog, SimError, SimOpts, Time};
use simnet::{Cluster, FaultEvent, NetConfig, TransferRecord};

use crate::config::MpiConfig;
use crate::mpi::Mpi;

/// Everything a run produces.
#[derive(Debug)]
pub struct MpiRunOutcome {
    /// Per-rank overlap reports from the instrumentation framework.
    pub reports: Vec<OverlapReport>,
    /// Ground-truth physical transfer records from the fabric.
    pub transfers: Vec<TransferRecord>,
    /// Ground-truth per-rank activity logs.
    pub activity: Vec<ActivityLog>,
    /// Ground-truth injected fault events (empty on a loss-free fabric).
    pub faults: Vec<FaultEvent>,
    /// Per-rank reliability-layer counters (all zero on a loss-free fabric).
    pub rel_stats: Vec<crate::RelStats>,
    /// Per-rank time-resolved traces (empty unless `RecorderOpts::trace`
    /// was set; ordered by rank when present).
    pub traces: Vec<overlap_core::trace::RankTrace>,
    /// Virtual end time of the run.
    pub end_time: Time,
    /// Engine queue entries processed.
    pub events_processed: u64,
}

impl MpiRunOutcome {
    /// Ground-truth overlap for `rank`: Σ over transfers touching the rank of
    /// the intersection between the physical transfer interval and the rank's
    /// compute intervals.
    pub fn true_overlap(&self, rank: usize) -> u64 {
        simnet::truth::total_true_overlap(&self.transfers, rank, &self.activity[rank])
    }

    /// Σ over transfers touching `rank` of how much the physical duration
    /// exceeded the a-priori table time — the congestion slack that loosens
    /// the framework's *upper* bound (see `DESIGN.md`).
    pub fn congestion_excess(&self, rank: usize, table: &XferTimeTable) -> u64 {
        self.transfers
            .iter()
            .filter(|t| t.src == rank || t.dst == rank)
            .map(|t| t.duration().saturating_sub(table.lookup(t.bytes as u64)))
            .sum()
    }

    /// All ranks' metrics registries folded into one (counters add,
    /// histograms merge per name).
    pub fn metrics(&self) -> overlap_core::MetricsRegistry {
        let mut m = overlap_core::MetricsRegistry::new();
        for r in &self.reports {
            m.merge(&r.metrics);
        }
        m
    }
}

impl MpiRunOutcome {
    /// Write every rank's report to `dir` as `overlap.rank<N>.json` — the
    /// paper's "output file is generated for each process" behaviour.
    pub fn write_reports(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::with_capacity(self.reports.len());
        for r in &self.reports {
            let path = dir.join(format!("overlap.rank{}.json", r.rank));
            r.save_json(&path)?;
            paths.push(path);
        }
        Ok(paths)
    }
}

/// The a-priori transfer-time table for a fabric — what the paper measured
/// once with `perf_main` and stored on disk. Sampled at power-of-two sizes
/// up to 8 MiB from the fabric's idle one-way transfer time.
pub fn default_xfer_table(net: &NetConfig) -> XferTimeTable {
    XferTimeTable::sample(1, 8 << 20, |b| net.transfer_time(b as usize))
}

/// Run `body` as an MPI program on `nranks` simulated nodes.
pub fn run_mpi<F>(
    nranks: usize,
    net: NetConfig,
    mpi_cfg: MpiConfig,
    rec_opts: RecorderOpts,
    body: F,
) -> Result<MpiRunOutcome, SimError>
where
    F: Fn(&mut Mpi) + Send + Sync + 'static,
{
    let table = default_xfer_table(&net);
    run_mpi_with(
        nranks,
        net,
        mpi_cfg,
        rec_opts,
        table,
        SimOpts::default(),
        body,
    )
}

/// Full-control variant of [`run_mpi`]: custom transfer-time table and
/// engine limits.
pub fn run_mpi_with<F>(
    nranks: usize,
    net: NetConfig,
    mpi_cfg: MpiConfig,
    rec_opts: RecorderOpts,
    table: XferTimeTable,
    opts: SimOpts,
    body: F,
) -> Result<MpiRunOutcome, SimError>
where
    F: Fn(&mut Mpi) + Send + Sync + 'static,
{
    run_mpi_explored(nranks, net, mpi_cfg, rec_opts, table, opts, None, body)
}

/// [`run_mpi_with`] plus an optional schedule oracle: when `oracle` is
/// `Some`, every engine nondeterminism point (same-time event ties,
/// progress-poll drain order, fault-timing jitter) is resolved by the
/// oracle and recorded in its trace, so the schedule can be replayed or
/// perturbed. `None` runs the untouched canonical path.
#[allow(clippy::too_many_arguments)]
pub fn run_mpi_explored<F>(
    nranks: usize,
    net: NetConfig,
    mpi_cfg: MpiConfig,
    rec_opts: RecorderOpts,
    table: XferTimeTable,
    opts: SimOpts,
    oracle: Option<simcore::OracleHandle>,
    body: F,
) -> Result<MpiRunOutcome, SimError>
where
    F: Fn(&mut Mpi) + Send + Sync + 'static,
{
    let cluster = Cluster::new(nranks, net);
    if let Some(orc) = oracle {
        cluster.handle().set_oracle(orc);
    }
    type PerRank = Vec<
        Option<(
            OverlapReport,
            crate::RelStats,
            Option<overlap_core::trace::RankTrace>,
        )>,
    >;
    let collected: Arc<Mutex<PerRank>> = Arc::new(Mutex::new((0..nranks).map(|_| None).collect()));
    let collected_in = Arc::clone(&collected);
    let out = cluster.run(opts, move |ctx, world| {
        let rank = ctx.rank();
        let mut mpi = Mpi::init(
            ctx,
            world.clone(),
            mpi_cfg.clone(),
            table.clone(),
            rec_opts.clone(),
        );
        body(&mut mpi);
        collected_in.lock()[rank] = Some(mpi.finalize_full());
    })?;
    let mut reports = Vec::with_capacity(nranks);
    let mut rel_stats = Vec::with_capacity(nranks);
    let mut traces = Vec::new();
    for slot in Arc::try_unwrap(collected)
        .expect("report collector uniquely owned after run")
        .into_inner()
    {
        let (report, stats, trace) = slot.expect("every rank produced a report");
        reports.push(report);
        rel_stats.push(stats);
        traces.extend(trace);
    }
    Ok(MpiRunOutcome {
        reports,
        transfers: out.transfers,
        activity: out.activity,
        faults: out.faults,
        rel_stats,
        traces,
        end_time: out.end_time,
        events_processed: out.events_processed,
    })
}
