//! Multi-client service semantics over real loopback sockets, driven by a
//! real captured figure stream:
//!
//! * two sessions pushed **concurrently** from interleaved client threads
//!   (each session arrives as many small framed pushes racing the other
//!   session's) produce per-session reports byte-identical to pushing the
//!   same streams serially — and to a local in-process fold;
//! * the fleet view equals the merged view of the same streams folded
//!   locally through [`overlapd::Service`];
//! * the `repro push` CLI exits 0 on success and 2 when the server refuses
//!   the stream (missing/mismatched `schema_version`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use overlap_core::stream::SessionFold;
use overlap_core::trace::jsonl;
use overlapd::{push_text, Server, Service};

/// Serialize tests: `tracecap` is process-global.
fn global_lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn start_server() -> (
    String,
    overlapd::server::ServerHandle,
    std::thread::JoinHandle<()>,
) {
    let service = Arc::new(Service::default());
    let server = Server::bind("127.0.0.1:0", service).expect("bind loopback");
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

/// Tiny HTTP client: one request, returns (status, body bytes).
fn http(addr: &str, method: &str, path: &str) -> (u16, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    let head = format!("{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
    s.write_all(head.as_bytes()).unwrap();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let sep = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header/body separator");
    (status, raw[sep + 4..].to_vec())
}

/// The fig03 event stream, exactly as `repro fig03 --trace` exports it.
fn fig03_stream() -> String {
    bench::tracecap::enable();
    let _ = bench::tracecap::drain();
    let h = bench::figures::all()
        .into_iter()
        .find(|h| h.id == "fig03")
        .expect("fig03 registered");
    let _series = (h.run)();
    let bundles: Vec<_> = bench::tracecap::drain().into_values().collect();
    assert!(!bundles.is_empty(), "fig03 should register traced scopes");
    jsonl(&bundles)
}

/// Split a JSONL text into chunks of complete lines so a session arrives
/// as many separate framed pushes (the header rides only in the first).
fn line_chunks(text: &str, lines_per_chunk: usize) -> Vec<String> {
    let lines: Vec<&str> = text.lines().collect();
    lines
        .chunks(lines_per_chunk)
        .map(|c| {
            let mut s = c.join("\n");
            s.push('\n');
            s
        })
        .collect()
}

#[test]
fn interleaved_concurrent_pushes_match_serial_and_local_folds() {
    let _g = global_lock();
    let fig = fig03_stream();
    let probe = bench::enginebench::ingest_stream(4, 300);

    // Concurrent: each session arrives as many small pushes, the two client
    // threads racing each other connection-by-connection.
    let (addr, handle, join) = start_server();
    let push_chunked = |addr: String, session: &'static str, text: String| {
        std::thread::spawn(move || {
            for chunk in line_chunks(&text, 500) {
                push_text(&addr, session, &chunk).expect("chunk push");
            }
        })
    };
    let ta = push_chunked(addr.clone(), "fig03", fig.clone());
    let tb = push_chunked(addr.clone(), "probe", probe.clone());
    ta.join().unwrap();
    tb.join().unwrap();

    // Serial: same streams, one push each, a fresh server.
    let (serial_addr, serial_handle, serial_join) = start_server();
    push_text(&serial_addr, "fig03", &fig).expect("serial fig03 push");
    push_text(&serial_addr, "probe", &probe).expect("serial probe push");

    // Local reference folds.
    let mut ref_fig = SessionFold::default();
    ref_fig.push_text(&fig).unwrap();
    let mut ref_probe = SessionFold::default();
    ref_probe.push_text(&probe).unwrap();

    for (session, reference) in [("fig03", &mut ref_fig), ("probe", &mut ref_probe)] {
        let path = format!("/v1/sessions/{session}/report");
        let (st, concurrent) = http(&addr, "GET", &path);
        assert_eq!(st, 200);
        let (st, serial) = http(&serial_addr, "GET", &path);
        assert_eq!(st, 200);
        let local = serde_json::to_string(&reference.report())
            .unwrap()
            .into_bytes();
        assert_eq!(
            concurrent, serial,
            "{session}: concurrent interleaved pushes diverge from serial pushes"
        );
        assert_eq!(
            concurrent, local,
            "{session}: server report diverges from the local fold"
        );
        // The artifacts agree too, not just the summaries.
        let (_, c_attr) = http(
            &addr,
            "GET",
            &format!("/v1/sessions/{session}/attribution.json"),
        );
        let l_attr = serde_json::to_string_pretty(&reference.attribution(session))
            .unwrap()
            .into_bytes();
        assert_eq!(c_attr, l_attr, "{session}: attribution artifact diverges");
    }

    // Fleet view equals the merged local folds of the same streams.
    let expected = Service::default();
    expected
        .session("fig03")
        .lock()
        .unwrap()
        .push_text(&fig)
        .unwrap();
    expected
        .session("probe")
        .lock()
        .unwrap()
        .push_text(&probe)
        .unwrap();
    let (st, fleet) = http(&addr, "GET", "/v1/fleet");
    assert_eq!(st, 200);
    assert_eq!(
        fleet,
        serde_json::to_string(&expected.fleet())
            .unwrap()
            .into_bytes(),
        "fleet view diverges from the merged local folds"
    );

    handle.shutdown();
    join.join().unwrap();
    serial_handle.shutdown();
    serial_join.join().unwrap();
}

#[test]
fn repro_push_cli_exit_codes() {
    let _g = global_lock();
    let (addr, handle, join) = start_server();
    let dir = std::env::temp_dir().join(format!("overlapd-push-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // A refused stream (no schema header) exits 2.
    let bad = dir.join("bad.events.jsonl");
    std::fs::write(
        &bad,
        "{\"scope\":\"x\",\"rank\":0,\"t\":0,\"ev\":\"call_exit\"}\n",
    )
    .unwrap();
    let code =
        bench::serve::push_main(&[bad.display().to_string(), "--to".to_string(), addr.clone()]);
    assert_eq!(code, 2, "refused stream must exit 2");

    // A mismatched schema_version exits 2 as well.
    let old = dir.join("old.events.jsonl");
    std::fs::write(&old, "{\"ev\":\"header\",\"schema_version\":999}\n").unwrap();
    let code =
        bench::serve::push_main(&[old.display().to_string(), "--to".to_string(), addr.clone()]);
    assert_eq!(code, 2, "schema mismatch must exit 2");

    // A well-formed stream exits 0 and lands in a session named after the
    // file (the trailing `.events` is stripped).
    let good = dir.join("probe.events.jsonl");
    std::fs::write(&good, bench::enginebench::ingest_stream(2, 20)).unwrap();
    let code =
        bench::serve::push_main(&[good.display().to_string(), "--to".to_string(), addr.clone()]);
    assert_eq!(code, 0, "well-formed stream must exit 0");
    let (st, body) = http(&addr, "GET", "/v1/sessions/probe/report");
    assert_eq!(st, 200);
    assert!(
        body.len() > 2,
        "pushed session should serve a non-empty report"
    );

    std::fs::remove_dir_all(&dir).ok();
    handle.shutdown();
    join.join().unwrap();
}
