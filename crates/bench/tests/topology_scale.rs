//! Datacenter-scale smoke: a 4096-rank job on a fitted fat-tree must fit.
//!
//! The topology layer keeps per-rank state lean (routes are computed into a
//! reused buffer from flat precomputed tables shared via `Arc`, and the
//! background tenant is O(1) per *link*, not per rank), so steady-state
//! allocation per rank per iteration must stay small and — crucially — not
//! scale with the fabric size. The test measures the marginal allocation of
//! extra iterations at 4096 ranks, excluding one-time setup (fiber stacks,
//! link tables).

use overlap_core::RecorderOpts;
use simmpi::{run_mpi, MpiConfig, Src, TagSel};
use simnet::{BackgroundJob, NetConfig, TopologySpec, TrafficPattern};

#[global_allocator]
static ALLOC: bench::alloc::CountingAlloc = bench::alloc::CountingAlloc;

const RANKS: usize = 4096;

/// One ring-exchange run; returns the counting-allocator (calls, bytes)
/// delta around it.
fn ring_run(iters: u64) -> (u64, u64) {
    let net = NetConfig {
        model_ingress_contention: true,
        // 128 hosts as specced; `fitted` grows it to k=26 (4394 hosts).
        topology: TopologySpec::FatTree { k: 8 },
        background: Some(
            BackgroundJob::builder(TrafficPattern::Uniform)
                .msg_bytes(4096)
                .period_ns(200_000)
                .build(),
        ),
        ..NetConfig::infiniband_2006()
    };
    let a0 = bench::alloc::snapshot();
    run_mpi(
        RANKS,
        net,
        MpiConfig::default(),
        RecorderOpts::default(),
        move |mpi| {
            let me = mpi.rank();
            let n = mpi.nranks();
            for i in 0..iters {
                let r = mpi.irecv(Src::Rank((me + n - 1) % n), TagSel::Is(i));
                let s = mpi.isend((me + 1) % n, i, &[7u8; 512]);
                mpi.wait(s);
                mpi.wait(r);
            }
        },
    )
    .unwrap_or_else(|e| panic!("{}", e.one_line()));
    bench::alloc::region(a0, bench::alloc::snapshot())
}

/// 4096 ranks on a fitted fat-tree with a background tenant complete a ring
/// exchange, and the marginal cost of extra iterations is bounded: well
/// under 64 KiB allocated per rank per iteration in steady state.
#[test]
fn halo_4k_steady_state_allocs_are_bounded_per_rank() {
    let (_, b1) = ring_run(1);
    let (_, b3) = ring_run(3);
    let per_iter = b3.saturating_sub(b1) / 2;
    let per_rank = per_iter / RANKS as u64;
    assert!(
        per_rank < 64 * 1024,
        "steady-state allocation {per_rank} B/rank/iteration (total {per_iter} B/iteration) \
         — per-rank fabric state is no longer lean"
    );
}
