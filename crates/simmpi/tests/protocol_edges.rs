//! Protocol boundary and edge cases: threshold boundaries, fragment
//! boundaries, zero-byte messages, wildcard rendezvous, waitsome.

use overlap_core::RecorderOpts;
use simmpi::{run_mpi, MpiConfig, MpiRunOutcome, Src, TagSel};
use simnet::NetConfig;

fn run(
    nranks: usize,
    cfg: MpiConfig,
    body: impl Fn(&mut simmpi::Mpi) + Send + Sync + 'static,
) -> MpiRunOutcome {
    run_mpi(
        nranks,
        NetConfig::default(),
        cfg,
        RecorderOpts::default(),
        body,
    )
    .expect("run failed")
}

fn roundtrip(cfg: MpiConfig, len: usize) -> MpiRunOutcome {
    run(2, cfg, move |mpi| {
        let msg: Vec<u8> = (0..len).map(|i| i as u8).collect();
        if mpi.rank() == 0 {
            mpi.send(1, 1, &msg);
        } else {
            let st = mpi.recv(Src::Rank(0), TagSel::Is(1));
            assert_eq!(&st.into_data()[..], &msg[..]);
        }
    })
}

#[test]
fn message_exactly_at_eager_threshold_is_eager() {
    let cfg = MpiConfig::open_mpi_pipelined();
    let threshold = cfg.eager_threshold;
    let out = roundtrip(cfg.clone(), threshold);
    assert_eq!(out.transfers.len(), 1);
    assert_eq!(out.transfers[0].kind, simnet::TransferKind::Send);
    // One byte more tips into rendezvous (pipelined: still a Send for the
    // single fragment, but the timing path differs; verify via direct-read
    // where the kind changes).
    let out2 = roundtrip(
        MpiConfig::mvapich2(),
        MpiConfig::mvapich2().eager_threshold + 1,
    );
    assert_eq!(out2.transfers[0].kind, simnet::TransferKind::RdmaRead);
}

#[test]
fn message_exactly_at_fragment_boundary() {
    let cfg = MpiConfig::open_mpi_pipelined();
    let frag = cfg.fragment_size;
    // Exactly one fragment: rides entirely with the RTS.
    let one = roundtrip(cfg.clone(), frag);
    assert_eq!(one.transfers.len(), 1);
    // One byte more: RTS fragment + one 1-byte RDMA write.
    let two = roundtrip(cfg.clone(), frag + 1);
    assert_eq!(two.transfers.len(), 2);
    let sizes: Vec<usize> = two.transfers.iter().map(|t| t.bytes).collect();
    assert!(sizes.contains(&frag));
    assert!(sizes.contains(&1));
    // Exact multiple: n equal fragments.
    let three = roundtrip(cfg, frag * 3);
    assert_eq!(three.transfers.len(), 3);
    assert!(three.transfers.iter().all(|t| t.bytes == frag));
}

#[test]
fn zero_byte_message_is_a_valid_transfer() {
    let out = run(2, MpiConfig::default(), |mpi| {
        if mpi.rank() == 0 {
            mpi.send(1, 5, &[]);
        } else {
            let st = mpi.recv(Src::Rank(0), TagSel::Is(5));
            assert_eq!(st.into_data().len(), 0);
        }
    });
    // Counted as a (zero-byte) user message, per MPI semantics.
    assert_eq!(out.transfers.len(), 1);
    assert_eq!(out.transfers[0].bytes, 0);
}

#[test]
fn wildcard_recv_matches_rendezvous() {
    for cfg in [MpiConfig::mvapich2(), MpiConfig::open_mpi_pipelined()] {
        run(2, cfg, |mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 77, &vec![6u8; 700 << 10]);
            } else {
                let st = mpi.recv(Src::Any, TagSel::Any);
                assert_eq!(st.source, 0);
                assert_eq!(st.tag, 77);
                assert_eq!(st.into_data().len(), 700 << 10);
            }
        });
    }
}

#[test]
fn waitsome_returns_ready_subset() {
    run(3, MpiConfig::default(), |mpi| {
        if mpi.rank() == 0 {
            let r1 = mpi.irecv(Src::Rank(1), TagSel::Is(1));
            let r2 = mpi.irecv(Src::Rank(2), TagSel::Is(2));
            let mut seen = Vec::new();
            let mut pending = vec![r1, r2];
            while !pending.is_empty() {
                let done = mpi.waitsome(&pending);
                // Remove completed (indices refer to the passed slice).
                let done_idx: Vec<usize> = done.iter().map(|&(i, _)| i).collect();
                for (i, st) in done {
                    seen.push((pending[i], st.source));
                }
                pending = pending
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| !done_idx.contains(i))
                    .map(|(_, r)| r)
                    .collect();
            }
            let sources: Vec<usize> = seen.iter().map(|&(_, s)| s).collect();
            assert!(sources.contains(&1) && sources.contains(&2));
        } else if mpi.rank() == 1 {
            mpi.compute(2_000_000); // deliberately late
            mpi.send(0, 1, &[1u8; 32]);
        } else {
            mpi.send(0, 2, &[2u8; 32]);
        }
    });
}

#[test]
fn cache_disabled_mode_still_correct_under_concurrency() {
    // The aliasing regression scenario with the cache off: every send pins
    // its own region.
    run(
        3,
        MpiConfig {
            use_reg_cache: false,
            ..MpiConfig::open_mpi_leave_pinned()
        },
        |mpi| {
            if mpi.rank() == 0 {
                let s1 = mpi.isend(1, 1, &vec![0x11; 100 << 10]);
                let s2 = mpi.isend(2, 2, &vec![0x22; 100 << 10]);
                mpi.waitall(&[s1, s2]);
            } else {
                mpi.compute(500_000);
                let expect = if mpi.rank() == 1 { 0x11 } else { 0x22 };
                let st = mpi.recv(Src::Rank(0), TagSel::Is(mpi.rank() as u64));
                assert!(st.into_data().iter().all(|&b| b == expect));
            }
        },
    );
}

#[test]
fn many_small_messages_interleaved_with_one_huge() {
    // Ordering and matching hold when a rendezvous transfer is in flight
    // among a stream of eager ones, same (src, dst, tag).
    run(2, MpiConfig::mvapich2(), |mpi| {
        if mpi.rank() == 0 {
            for i in 0..5u8 {
                mpi.send(1, 9, &[i; 128]);
            }
            mpi.send(1, 9, &vec![99u8; 900 << 10]);
            for i in 5..10u8 {
                mpi.send(1, 9, &[i; 128]);
            }
        } else {
            for i in 0..5u8 {
                assert_eq!(mpi.recv(Src::Rank(0), TagSel::Is(9)).into_data()[0], i);
            }
            assert_eq!(
                mpi.recv(Src::Rank(0), TagSel::Is(9)).into_data().len(),
                900 << 10
            );
            for i in 5..10u8 {
                assert_eq!(mpi.recv(Src::Rank(0), TagSel::Is(9)).into_data()[0], i);
            }
        }
    });
}
