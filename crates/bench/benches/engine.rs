//! Engine scheduler smoke bench: locked binary heap vs. timing wheel.
//!
//! Exercises the same hold-model code the `repro --bench-json` perf
//! trajectory records (`bench::enginebench`), so the CI smoke run and the
//! committed `BENCH_*.json` numbers come from one implementation. Run with
//! `cargo bench -p bench --bench engine`.

use bench::enginebench::{
    heap_hold_secs, sim_events_per_sec, wheel_hold_secs, TRAJECTORY_OUTSTANDING,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

/// Smaller than the trajectory event count: criterion repeats each closure
/// many times, the trajectory runs it once.
const EVENTS: u64 = 50_000;

fn sched_hold(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_hold");
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("heap_locked", |b| {
        b.iter(|| heap_hold_secs(EVENTS, TRAJECTORY_OUTSTANDING))
    });
    g.bench_function("wheel_inbox", |b| {
        b.iter(|| wheel_hold_secs(EVENTS, TRAJECTORY_OUTSTANDING))
    });
    g.finish();
}

fn engine_throughput(c: &mut Criterion) {
    c.bench_function("sim_4ranks_events", |b| {
        b.iter(|| sim_events_per_sec(4, 2_500))
    });
}

criterion_group!(benches, sched_hold, engine_throughput);
criterion_main!(benches);
