//! ARMCI semantics: one-sided data movement, handles, fences, and the
//! blocking-vs-nonblocking overlap contrast of paper Figure 19.

use overlap_core::RecorderOpts;
use simarmci::{run_armci, ArmciRunOutcome};
use simnet::NetConfig;

fn run(
    nranks: usize,
    body: impl Fn(&mut simarmci::Armci) + Send + Sync + 'static,
) -> ArmciRunOutcome {
    run_armci(nranks, NetConfig::default(), RecorderOpts::default(), body).expect("run failed")
}

#[test]
fn put_places_data_in_remote_segment() {
    run(2, |a| {
        let mem = a.malloc(1024);
        if a.rank() == 0 {
            a.put(&mem, 1, 100, &[7u8; 64]);
            a.barrier();
        } else {
            a.barrier();
            let local = a.local_read(&mem, 100, 64);
            assert_eq!(local, vec![7u8; 64]);
            assert_eq!(a.local_read(&mem, 0, 1)[0], 0);
        }
    });
}

#[test]
fn get_fetches_remote_segment() {
    run(2, |a| {
        let mem = a.malloc(4096);
        if a.rank() == 1 {
            a.local_write(&mem, 0, &(0u8..=255).collect::<Vec<_>>());
        }
        a.barrier();
        if a.rank() == 0 {
            let data = a.get(&mem, 1, 10, 20);
            assert_eq!(&data[..], &(10u8..30).collect::<Vec<_>>()[..]);
        }
    });
}

#[test]
fn nb_put_wait_and_fence() {
    run(3, |a| {
        let mem = a.malloc(256);
        if a.rank() == 0 {
            let h1 = a.nb_put(&mem, 1, 0, &[1u8; 128]);
            let h2 = a.nb_put(&mem, 2, 0, &[2u8; 128]);
            a.compute(50_000);
            a.wait(h1);
            a.wait(h2);
            a.barrier();
        } else {
            a.barrier();
            let v = a.local_read(&mem, 0, 128);
            assert_eq!(v, vec![a.rank() as u8; 128]);
        }
    });
}

#[test]
fn all_fence_completes_implicit_puts() {
    run(2, |a| {
        let mem = a.malloc(64);
        if a.rank() == 0 {
            for i in 0..5u8 {
                a.nb_put(&mem, 1, i as usize * 8, &[i + 1; 8]);
            }
            a.all_fence();
            a.barrier();
        } else {
            a.barrier();
            for i in 0..5u8 {
                assert_eq!(a.local_read(&mem, i as usize * 8, 8), vec![i + 1; 8]);
            }
        }
    });
}

#[test]
fn allreduce_sums_across_ranks() {
    run(4, |a| {
        let out = a.allreduce_sum(&[1.0, a.rank() as f64]);
        assert_eq!(out, vec![4.0, 6.0]);
    });
}

#[test]
fn blocking_put_is_case1_zero_overlap() {
    let out = run(2, |a| {
        let mem = a.malloc(1 << 20);
        a.barrier();
        if a.rank() == 0 {
            for _ in 0..10 {
                a.put(&mem, 1, 0, &vec![1u8; 512 << 10]);
                a.compute(1_000_000);
            }
        } else {
            a.compute(20_000_000);
        }
        a.barrier();
    });
    let r0 = &out.reports[0];
    assert_eq!(r0.total.transfers, 10);
    assert_eq!(
        r0.total.max_overlap, 0,
        "blocking puts must show zero overlap"
    );
    assert_eq!(r0.total.case_same_call, 10);
}

#[test]
fn nonblocking_put_overlaps_computation() {
    let out = run(2, |a| {
        let mem = a.malloc(1 << 20);
        a.barrier();
        if a.rank() == 0 {
            for _ in 0..10 {
                let h = a.nb_put(&mem, 1, 0, &vec![1u8; 512 << 10]);
                a.compute(1_000_000); // > transfer time (~529 us)
                a.wait(h);
            }
        } else {
            a.compute(20_000_000);
        }
        a.barrier();
    });
    let r0 = &out.reports[0];
    assert!(
        r0.total.max_pct() > 95.0,
        "non-blocking puts should overlap nearly fully: {}",
        r0.total.max_pct()
    );
    assert!(r0.total.min_pct() > 90.0);
    // Validate against ground truth.
    let truth = out.true_overlap(0);
    assert!(r0.total.min_overlap <= truth);
}

#[test]
fn nb_get_returns_data_after_overlapped_wait() {
    run(2, |a| {
        let mem = a.malloc(8192);
        if a.rank() == 1 {
            a.local_write(&mem, 0, &[42u8; 8192]);
        }
        a.barrier();
        if a.rank() == 0 {
            let h = a.nb_get(&mem, 1, 0, 8192);
            a.compute(100_000);
            let data = a.wait(h).expect("get data");
            assert_eq!(&data[..], &[42u8; 8192][..]);
        }
    });
}

#[test]
fn one_sided_ops_record_ground_truth() {
    let out = run(2, |a| {
        let mem = a.malloc(4096);
        a.barrier();
        if a.rank() == 0 {
            a.put(&mem, 1, 0, &[1u8; 4096]);
            let _ = a.get(&mem, 1, 0, 4096);
        }
        a.barrier();
    });
    assert_eq!(out.transfers.len(), 2);
    let kinds: Vec<_> = out.transfers.iter().map(|t| t.kind).collect();
    assert!(kinds.contains(&simnet::TransferKind::RdmaWrite));
    assert!(kinds.contains(&simnet::TransferKind::RdmaRead));
}

#[test]
fn malloc_segments_are_independent_per_rank() {
    run(4, |a| {
        let mem = a.malloc(128);
        let me = a.rank() as u8;
        a.local_write(&mem, 0, &[me; 128]);
        a.barrier();
        // Everyone reads everyone: segment r must hold r everywhere.
        for r in 0..a.nranks() {
            let data = if r == a.rank() {
                a.local_read(&mem, 0, 128).into()
            } else {
                a.get(&mem, r, 0, 128)
            };
            assert_eq!(&data[..], &[r as u8; 128][..]);
        }
    });
}

#[test]
fn accumulate_adds_elementwise_at_target() {
    run(3, |a| {
        let mem = a.malloc(64);
        if a.rank() == 1 {
            // Seed the target values.
            let seed: Vec<u8> = [1.0f64, 2.0, 3.0]
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect();
            a.local_write(&mem, 0, &seed);
        }
        a.barrier();
        if a.rank() != 1 {
            // Both other ranks accumulate concurrently; sums must compose.
            a.acc(&mem, 1, 0, &[10.0, 20.0, 30.0]);
        }
        a.barrier();
        if a.rank() == 1 {
            let raw = a.local_read(&mem, 0, 24);
            let vals: Vec<f64> = raw
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            assert_eq!(vals, vec![21.0, 42.0, 63.0]);
        }
    });
}

#[test]
fn nb_acc_overlaps_and_counts_as_transfer() {
    let out = run(2, |a| {
        let mem = a.malloc(8192);
        a.barrier();
        if a.rank() == 0 {
            for _ in 0..5 {
                let h = a.nb_acc(&mem, 1, 0, &vec![1.0f64; 1024]);
                a.compute(100_000);
                a.wait(h);
            }
        } else {
            a.compute(1_000_000);
        }
        a.barrier();
    });
    assert_eq!(out.reports[0].total.transfers, 5);
    assert!(
        out.reports[0].total.max_pct() > 90.0,
        "nb_acc should overlap"
    );
    let w = out.transfers.iter().filter(|t| t.bytes == 8192).count();
    assert_eq!(w, 5);
    // Target sees the accumulated sum.
}

#[test]
fn rmw_fetch_add_is_atomic_across_ranks() {
    // All ranks increment a shared counter concurrently; the final value and
    // the set of observed "old" values must both be exact.
    use std::sync::Mutex;
    static OLDS: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    OLDS.lock().unwrap().clear();
    run(4, |a| {
        let mem = a.malloc(64);
        a.barrier();
        for _ in 0..5 {
            let old = a.rmw_fetch_add(&mem, 0, 0, 1);
            OLDS.lock().unwrap().push(old);
        }
        a.barrier();
        if a.rank() == 0 {
            let raw = a.local_read(&mem, 0, 8);
            let total = u64::from_le_bytes(raw.try_into().unwrap());
            assert_eq!(total, 20, "4 ranks x 5 increments");
        }
    });
    let mut olds = OLDS.lock().unwrap().clone();
    olds.sort_unstable();
    assert_eq!(
        olds,
        (0..20).collect::<Vec<u64>>(),
        "each ticket issued once"
    );
}

#[test]
fn rmw_serves_as_a_ticket_lock() {
    run(3, |a| {
        let mem = a.malloc(16);
        a.barrier();
        let ticket = a.rmw_fetch_add(&mem, 0, 0, 1);
        assert!(ticket < 3);
        a.barrier();
    });
}
