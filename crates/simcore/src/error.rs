//! Simulation error types.

use std::fmt;

/// Terminal failures of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained while one or more ranks were still parked:
    /// no future event can ever wake them. This is the simulated analogue of
    /// an MPI deadlock (e.g. two blocking rendezvous sends to each other).
    Deadlock {
        /// Ranks that were parked when the queue drained.
        parked: Vec<usize>,
        /// Virtual time at which the deadlock was detected.
        at: crate::Time,
    },
    /// A rank's body panicked; the message is the stringified payload.
    RankPanic {
        /// The panicking rank.
        rank: usize,
        /// Stringified panic payload.
        message: String,
    },
    /// Virtual time exceeded [`crate::SimOpts::max_time`].
    TimeLimitExceeded {
        /// The configured limit, ns.
        limit: crate::Time,
    },
    /// More events were processed than [`crate::SimOpts::max_events`] allows
    /// (guards against livelock in buggy protocols).
    EventLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { parked, at } => write!(
                f,
                "simulated deadlock at t={}ns: ranks {:?} are parked with no pending events",
                at, parked
            ),
            SimError::RankPanic { rank, message } => {
                write!(f, "rank {} panicked: {}", rank, message)
            }
            SimError::TimeLimitExceeded { limit } => {
                write!(f, "virtual time limit exceeded ({}ns)", limit)
            }
            SimError::EventLimitExceeded { limit } => {
                write!(f, "event limit exceeded ({} events)", limit)
            }
        }
    }
}

impl std::error::Error for SimError {}
