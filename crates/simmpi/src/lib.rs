#![warn(missing_docs)]

//! # simmpi — an instrumented MPI-like message-passing library
//!
//! A two-sided message-passing library over the `simnet` fabric, modeled on
//! the point-to-point designs of Open MPI 1.0.x and MVAPICH2 0.6.x that the
//! paper instrumented:
//!
//! * **eager protocol** for short messages — sender copies into a bounce
//!   buffer and fires a single send; the receiver's host discovers the
//!   message at its next poll,
//! * **rendezvous, pipelined RDMA-Write mode** (Open MPI default) — an RTS
//!   carrying the first fragment, a CTS from the receiver, then the sender
//!   pipelines the remaining fragments as RDMA Writes and the last fragment
//!   carries the FIN,
//! * **rendezvous, direct RDMA-Read mode** (Open MPI `mpi_leave_pinned`,
//!   MVAPICH2 zero-copy) — an RTS advertising the pinned send buffer; the
//!   receiver reads it directly and the completion notifies the sender.
//!
//! The **progress engine is polling-based**: protocol state only advances
//! when the application is inside a library call, while posted NIC operations
//! proceed in background virtual time. This single property produces the
//! paper's characteristic microbenchmark shapes (zero overlap for late
//! receivers under direct RDMA, first-fragment-only overlap for the
//! pipelined scheme, and the `MPI_Iprobe` tuning opportunity exploited for
//! NAS SP).
//!
//! Every entry point is instrumented with the `overlap-core` recorder —
//! the library-internal placement of `XFER_BEGIN` / `XFER_END` stamps follows
//! the table in `DESIGN.md`.
//!
//! ## Example
//!
//! ```
//! use overlap_core::RecorderOpts;
//! use simmpi::{run_mpi, MpiConfig, Src, TagSel};
//! use simnet::NetConfig;
//!
//! let out = run_mpi(2, NetConfig::default(), MpiConfig::default(),
//!                   RecorderOpts::default(), |mpi| {
//!     if mpi.rank() == 0 {
//!         mpi.send(1, 42, b"hello");
//!     } else {
//!         let st = mpi.recv(Src::Rank(0), TagSel::Is(42));
//!         assert_eq!(&st.into_data()[..], b"hello");
//!     }
//! }).unwrap();
//! assert_eq!(out.reports.len(), 2);
//! assert_eq!(out.transfers.len(), 1); // one 5-byte eager transfer
//! ```

pub mod collectives;
pub mod comm;
pub mod config;
pub mod harness;
pub mod icoll;
pub mod mpi;
pub mod proto;
pub mod reliability;
pub mod types;

pub use comm::Comm;
pub use config::{MpiConfig, ProgressModel, RndvMode};
pub use harness::{default_xfer_table, run_mpi, run_mpi_explored, run_mpi_with, MpiRunOutcome};
pub use icoll::{CollHandle, CollResult};
pub use mpi::Mpi;
pub use reliability::RelStats;
pub use types::{
    bytes_to_f64s, f64s_to_bytes, PersistentOp, ReduceOp, Request, Src, Status, TagSel,
};
