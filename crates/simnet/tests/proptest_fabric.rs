//! Fabric property tests: byte conservation, FIFO per-path ordering, and
//! timing-model sanity over randomized operation sequences.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use proptest::prelude::*;
use simcore::SimOpts;
use simnet::{Cluster, NetConfig, Packet};

#[derive(Debug, Clone, Copy)]
struct SendSpec {
    bytes: usize,
    gap_ns: u64,
}

fn arb_sends() -> impl Strategy<Value = Vec<SendSpec>> {
    prop::collection::vec(
        (1usize..100_000, 0u64..100_000).prop_map(|(bytes, gap_ns)| SendSpec { bytes, gap_ns }),
        1..20,
    )
}

/// Rank 0 posts the schedule's sends (with their compute gaps) to rank 1,
/// which drains them; returns the outcome with its ground-truth records.
fn run_sender_schedule(sends: &[SendSpec], net: NetConfig) -> simnet::ClusterOutcome {
    let sends_in = sends.to_vec();
    let cluster = Cluster::new(2, net);
    cluster
        .run(SimOpts::default(), move |ctx, world| {
            if ctx.rank() == 0 {
                for s in &sends_in {
                    if s.gap_ns > 0 {
                        ctx.compute(s.gap_ns);
                    }
                    let mut w = world.lock();
                    let x = w.alloc_xfer_id();
                    let pkt = Packet::with_data(
                        0,
                        s.bytes + 64,
                        1,
                        [0; 6],
                        Bytes::from(vec![1u8; s.bytes]),
                    );
                    w.post_send(0, 1, pkt, 0, Some(x));
                }
            } else {
                let total = sends_in.len();
                let mut got = 0;
                while got < total {
                    if world.lock().poll_rx(1).is_some() {
                        got += 1;
                    } else {
                        ctx.park();
                    }
                }
            }
        })
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every posted send is delivered exactly once, in order, with intact
    /// sizes and sequence-stamped contents.
    #[test]
    fn sends_conserve_bytes_and_order(sends in arb_sends()) {
        let received: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let received_in = Arc::clone(&received);
        let sends_in = sends.clone();
        let cluster = Cluster::new(2, NetConfig::default());
        let out = cluster.run(SimOpts::default(), move |ctx, world| {
            if ctx.rank() == 0 {
                for (i, s) in sends_in.iter().enumerate() {
                    if s.gap_ns > 0 {
                        ctx.compute(s.gap_ns);
                    }
                    let mut w = world.lock();
                    let x = w.alloc_xfer_id();
                    let pkt = Packet::with_data(
                        0,
                        s.bytes + 64,
                        1,
                        [i as u64, 0, 0, 0, 0, 0],
                        Bytes::from(vec![i as u8; s.bytes]),
                    );
                    w.post_send(0, 1, pkt, 0, Some(x));
                }
                // Drain our own completions.
                let total = sends_in.len();
                let mut got = 0;
                while got < total {
                    while world.lock().poll_cq(0).is_some() {
                        got += 1;
                    }
                    if got < total {
                        ctx.park();
                    }
                }
            } else {
                let total = sends_in.len();
                let mut got = 0;
                while got < total {
                    let p = world.lock().poll_rx(1);
                    match p {
                        Some(p) => {
                            let data = p.data.unwrap();
                            assert!(data.iter().all(|&b| b == p.h[0] as u8));
                            received_in.lock().push((p.h[0], data.len()));
                            got += 1;
                        }
                        None => ctx.park(),
                    }
                }
            }
        }).unwrap();

        let got = received.lock().clone();
        prop_assert_eq!(got.len(), sends.len());
        // FIFO: sequence numbers strictly increasing.
        for (i, &(seq, len)) in got.iter().enumerate() {
            prop_assert_eq!(seq, i as u64, "out-of-order delivery");
            prop_assert_eq!(len, sends[i].bytes);
        }
        // Ground truth records every payload byte exactly once.
        let truth_bytes: usize = out.transfers.iter().map(|t| t.bytes).sum();
        let sent_bytes: usize = sends.iter().map(|s| s.bytes).sum();
        prop_assert_eq!(truth_bytes, sent_bytes);
    }

    /// The default flat crossbar goes through the hop-by-hop fabric walk,
    /// yet must reproduce the pre-topology formula *exactly*: every
    /// transfer's physical duration is serialization + wire latency, to the
    /// nanosecond, no matter how the DMA engine queues the posts (queuing
    /// shifts the start, never the flight time — dedicated hops never
    /// contend).
    #[test]
    fn flat_crossbar_reproduces_ideal_timing_exactly(sends in arb_sends()) {
        let net = NetConfig::default();
        let out = run_sender_schedule(&sends, net.clone());
        prop_assert_eq!(out.transfers.len(), sends.len());
        for t in &out.transfers {
            prop_assert_eq!(
                t.duration(),
                net.serialize(t.bytes + 64) + net.wire_latency,
                "flat-crossbar flight time must be exact for {} bytes",
                t.bytes
            );
        }
    }

    /// Hierarchical routing is deterministic: the same schedule on the same
    /// fat-tree (with a background tenant sharing its links) yields
    /// byte-identical ground-truth records, and no transfer beats the
    /// canonical route's propagation + serialization.
    #[test]
    fn fat_tree_timing_is_deterministic_and_bounded(sends in arb_sends()) {
        let net = NetConfig {
            topology: simnet::TopologySpec::FatTree { k: 4 },
            hop_latency: 1_000,
            background: Some(
                simnet::BackgroundJob::builder(simnet::TrafficPattern::Uniform)
                    .msg_bytes(4096)
                    .period_ns(100_000)
                    .build(),
            ),
            ..NetConfig::default()
        };
        let a = run_sender_schedule(&sends, net.clone());
        let b = run_sender_schedule(&sends, net.clone());
        let key = |o: &simnet::ClusterOutcome| -> Vec<(u64, u64, usize)> {
            o.transfers.iter().map(|t| (t.phys_start, t.phys_end, t.bytes)).collect()
        };
        prop_assert_eq!(key(&a), key(&b), "same schedule must route and queue identically");
        let topo = net.build_topology(2);
        let floor = topo.path_latency(0, 1);
        for t in &a.transfers {
            prop_assert!(t.duration() >= net.serialize(t.bytes + 64) + floor);
        }
    }

    /// Physical transfer durations always respect the cost model: at least
    /// serialization + latency, and DMA start never precedes the post.
    #[test]
    fn transfer_timing_respects_cost_model(sends in arb_sends()) {
        let sends_in = sends.clone();
        let cluster = Cluster::new(2, NetConfig::default());
        let net = NetConfig::default();
        let out = cluster.run(SimOpts::default(), move |ctx, world| {
            if ctx.rank() == 0 {
                for s in &sends_in {
                    let mut w = world.lock();
                    let x = w.alloc_xfer_id();
                    let pkt = Packet::with_data(
                        0,
                        s.bytes + 64,
                        1,
                        [0; 6],
                        Bytes::from(vec![1u8; s.bytes]),
                    );
                    w.post_send(0, 1, pkt, 0, Some(x));
                }
            } else {
                let total = sends_in.len();
                let mut got = 0;
                while got < total {
                    if world.lock().poll_rx(1).is_some() {
                        got += 1;
                    } else {
                        ctx.park();
                    }
                }
            }
        }).unwrap();
        for t in &out.transfers {
            let min_duration = net.serialize(t.bytes + 64) + net.wire_latency;
            prop_assert!(t.duration() >= min_duration,
                "transfer of {} bytes took {} < {}", t.bytes, t.duration(), min_duration);
        }
        // Back-to-back posts serialize on the DMA engine: starts are
        // non-decreasing and non-overlapping in serialization time.
        for w in out.transfers.windows(2) {
            prop_assert!(w[1].phys_start >= w[0].phys_start + net.serialize(w[0].bytes + 64));
        }
    }
}
