//! Virtual time.
//!
//! The simulation clock counts **nanoseconds** in a `u64`. Durations use the
//! same unit. A `u64` nanosecond clock spans ~584 years of virtual time, far
//! beyond any simulated workload here.

/// A point in virtual time, in nanoseconds since simulation start.
pub type Time = u64;

/// A span of virtual time, in nanoseconds.
pub type Duration = u64;

/// Construct a duration from nanoseconds (identity; for symmetry).
#[inline]
pub const fn ns(v: u64) -> Duration {
    v
}

/// Construct a duration from microseconds.
#[inline]
pub const fn us(v: u64) -> Duration {
    v * 1_000
}

/// Construct a duration from milliseconds.
#[inline]
pub const fn ms(v: u64) -> Duration {
    v * 1_000_000
}

/// Convert a duration to fractional microseconds (for reporting).
#[inline]
pub fn to_us(d: Duration) -> f64 {
    d as f64 / 1_000.0
}

/// Convert a duration to fractional milliseconds (for reporting).
#[inline]
pub fn to_ms(d: Duration) -> f64 {
    d as f64 / 1_000_000.0
}

/// Convert fractional microseconds to a duration, rounding to nearest ns.
#[inline]
pub fn from_us_f64(v: f64) -> Duration {
    (v * 1_000.0).round().max(0.0) as Duration
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_scale() {
        assert_eq!(ns(7), 7);
        assert_eq!(us(3), 3_000);
        assert_eq!(ms(2), 2_000_000);
    }

    #[test]
    fn round_trips() {
        assert_eq!(to_us(us(5)), 5.0);
        assert_eq!(to_ms(ms(9)), 9.0);
        assert_eq!(from_us_f64(1.5), 1_500);
        assert_eq!(from_us_f64(-1.0), 0);
    }
}
