//! Wire-protocol packet layout.
//!
//! Header word assignments per packet type (see the `Packet::h` array):
//!
//! | type | h\[0\] | h\[1\] | h\[2\] | h\[3\] | h\[4\] | data |
//! |---|---|---|---|---|---|---|
//! | `EAGER` | tag | xfer id | — | — | — | payload |
//! | `RTS_READ` | tag | total len | src region | xfer id | sender req | — |
//! | `RTS_PIPE` | tag | total len | frag1 xfer | sender req | — | fragment 1 |
//! | `CTS` | sender req | recv region | — | — | — | — |
//! | `FIN_READ` | sender req | xfer id | total len | — | — | — |
//! | `FIN_PIPE` | recv req | — | — | — | — | — |
//! | `BARRIER` | tag | — | — | — | — | — |
//! | `ACK` | next expected seq | — | — | — | — | — |
//! | `NACK` | first missing seq | — | — | — | — | — |
//!
//! `h[5]` is reserved in **every** packet type for the reliability layer's
//! sequence number (`seq + 1`; `0` = unsequenced). It is `0` whenever the
//! fabric is configured loss-free (`FaultPlan::none()`), keeping the wire
//! format byte-identical to the reliability-unaware protocol. `ACK` / `NACK`
//! are themselves unsequenced: cumulative ACKs are idempotent and a lost NACK
//! is recovered by the sender's retransmission timeout.

/// Eager data packet (short messages).
pub const PT_EAGER: u16 = 1;
/// Rendezvous request-to-send, direct RDMA-Read mode.
pub const PT_RTS_READ: u16 = 2;
/// Rendezvous request-to-send carrying fragment 1, pipelined mode.
pub const PT_RTS_PIPE: u16 = 3;
/// Receiver clear-to-send (ACK) naming its registered buffer.
pub const PT_CTS: u16 = 4;
/// Transfer-complete notification to the sender (direct-read mode).
pub const PT_FIN_READ: u16 = 5;
/// Transfer-complete notification to the receiver (pipelined mode; rides
/// with the last fragment).
pub const PT_FIN_PIPE: u16 = 6;
/// Zero-payload synchronization packet (barrier and friends); matched like a
/// normal message but never counted as a data transfer.
pub const PT_BARRIER: u16 = 7;
/// Receiver-matched acknowledgment for synchronous eager sends
/// (`MPI_Ssend`): h\[0\] = sender request id.
pub const PT_SSEND_ACK: u16 = 8;
/// Reliability-layer cumulative acknowledgment: h\[0\] = next sequence number
/// the receiver expects from this sender (everything below is delivered).
pub const PT_ACK: u16 = 9;
/// Reliability-layer negative acknowledgment: h\[0\] = first missing sequence
/// number (a gap was observed; the sender should retransmit immediately).
pub const PT_NACK: u16 = 10;

/// Correlation-word kinds for completion-queue entries (`Completion::user`
/// high byte).
pub mod wr_kind {
    /// Completion of a control packet; no action beyond dropping it.
    pub const IGNORE: u64 = 0;
    /// Local completion of an eager send.
    pub const EAGER_SEND: u64 = 1;
    /// Completion of one pipelined RDMA-Write fragment.
    pub const FRAG_WRITE: u64 = 2;
    /// Completion of a rendezvous RDMA Read (data attached).
    pub const RDMA_READ: u64 = 3;
    /// Completion of a NIC-matched receive (hw-tag progress model): matched
    /// payload attached, `(src, tag, xfer word)` in the immediate data.
    pub const HW_RECV: u64 = 4;
    /// NIC match notification for a synchronous hw-tag eager send.
    pub const HW_MATCHED: u64 = 5;
}

/// Pack a completion correlation word: kind in the top byte, request id in
/// the low 56 bits.
pub fn pack_user(kind: u64, req: u64) -> u64 {
    debug_assert!(req < (1 << 56), "request id overflow");
    (kind << 56) | req
}

/// Unpack a correlation word into `(kind, request id)`.
pub fn unpack_user(user: u64) -> (u64, u64) {
    (user >> 56, user & ((1 << 56) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_word_roundtrip() {
        for kind in [
            wr_kind::IGNORE,
            wr_kind::EAGER_SEND,
            wr_kind::FRAG_WRITE,
            wr_kind::RDMA_READ,
            wr_kind::HW_RECV,
            wr_kind::HW_MATCHED,
        ] {
            let u = pack_user(kind, 123_456);
            assert_eq!(unpack_user(u), (kind, 123_456));
        }
    }

    #[test]
    fn packet_types_are_distinct() {
        let all = [
            PT_EAGER,
            PT_RTS_READ,
            PT_RTS_PIPE,
            PT_CTS,
            PT_FIN_READ,
            PT_FIN_PIPE,
            PT_BARRIER,
            PT_SSEND_ACK,
            PT_ACK,
            PT_NACK,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
