//! Schedule-space explorer: loom-style interleaving and fault-timing search.
//!
//! The simulator is deterministic, so a single run samples exactly one
//! schedule out of the many a real system could exhibit. This module drives
//! the [`simcore::ScheduleOracle`] machinery to search that space: every
//! engine tie-break (same-time event order), progress-poll drain order and
//! fault-timing jitter step becomes an explicit choice, each explored
//! schedule is checked against the framework's schedule-independent
//! invariants ([`overlap_core::invariant`], activity-log monotonicity,
//! exact wait-state reconciliation), and any failing schedule is shrunk to
//! a minimal divergent choice prefix written as a replayable
//! `<scenario>.counterexample.json` token.
//!
//! Three strategies are available (`repro explore --strategy ...`):
//!
//! * `exhaustive` — bounded-exhaustive DFS over the choice tree with a
//!   preemption bound (DPOR-lite): each explored schedule's decision trace
//!   is expanded at every point past its forced prefix, capping the number
//!   of non-canonical choices per schedule,
//! * `random` — seeded random-permutation schedules, one
//!   [`simcore::RandomOracle`] seed per schedule,
//! * `guided` — hill-climbing search toward extreme overlap bounds (first
//!   minimizing the summed min bound, then maximizing the summed max
//!   bound), mutating one choice of the best-known schedule per step.
//!
//! Deadlocks found during exploration are reported and shrunk like
//! invariant violations, but only invariant violations fail the run
//! (exit 1): a deadlock on a fault-planted scenario is a *finding*, not an
//! instrumentation bug. See `docs/EXPLORATION.md` for the full model.

use std::path::{Path, PathBuf};

use overlap_core::RecorderOpts;
use simcore::{
    ChoiceRec, OracleHandle, RandomOracle, ReplayOracle, ScheduleOracle, SimError, SimOpts,
};
use simmpi::{
    default_xfer_table, run_mpi_explored, Mpi, MpiConfig, MpiRunOutcome, ProgressModel, Src, TagSel,
};
use simnet::{FaultPlan, NetConfig};

/// Version of the explorer's on-disk formats (counterexample tokens and the
/// `--json` explore report). Replays refuse tokens from other versions.
///
/// v2: the choice vocabulary grew the kind-4 `ProgressWake` point (the
/// async-rank progress fiber deciding to drain now or defer), so v1 tokens
/// — recorded when that kind could not appear — are refused rather than
/// replayed against a schedule space they never described.
pub const SCHEMA_VERSION: u32 = 2;

/// Event cap per explored schedule: guards against livelock on a perturbed
/// schedule wedging the whole exploration.
const MAX_EVENTS_PER_SCHEDULE: u64 = 4_000_000;

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

/// A fixed, fully seeded workload the explorer perturbs.
#[derive(Clone, Copy)]
pub struct Scenario {
    /// Scenario identifier (`repro explore <id>`).
    pub id: &'static str,
    /// One-line description for `repro explore list`.
    pub about: &'static str,
    /// Ranks the workload spins up.
    pub nranks: usize,
    /// Seed of the scenario's fault plan (0 when fault-free); echoed into
    /// counterexample tokens so a replay can assert the same configuration.
    pub fault_seed: u64,
    net: fn() -> NetConfig,
    mpi: fn() -> MpiConfig,
    body: fn(&mut Mpi),
}

fn eager2_net() -> NetConfig {
    crate::topo::apply(NetConfig::default())
}

fn eager2_mpi() -> MpiConfig {
    MpiConfig::open_mpi_pipelined()
}

/// Two ranks exchange two small eager messages with overlap windows — the
/// bounded-exhaustive scenario: fault-free, so the schedule space is pure
/// event-tie / progress-poll interleaving.
fn eager2_body(mpi: &mut Mpi) {
    let msg = vec![0x5Au8; 2 << 10];
    let peer = 1 - mpi.rank();
    for i in 0..2u64 {
        let s = mpi.isend(peer, i, &msg);
        let r = mpi.irecv(Src::Rank(peer), TagSel::Is(i));
        mpi.compute(3_000);
        mpi.wait(s);
        mpi.wait(r);
    }
}

fn fig03ish_net() -> NetConfig {
    // No loss: the reliability layer runs (sequencing + ACKs) and the
    // oracle may jitter every packet's arrival within a 300 ns window,
    // but every schedule must still complete cleanly.
    crate::topo::apply(NetConfig {
        faults: FaultPlan {
            seed: 11,
            explore_jitter_ns: 300,
            explore_jitter_steps: 3,
            ..FaultPlan::none()
        },
        ..NetConfig::default()
    })
}

fn fig03ish_mpi() -> MpiConfig {
    MpiConfig::open_mpi_pipelined()
}

/// The Fig. 3 microbenchmark shape (10 KB eager Isend–Irecv with inserted
/// computation) under arrival jitter — the CI smoke scenario.
fn fig03ish_body(mpi: &mut Mpi) {
    let msg = vec![0x5Au8; 10 << 10];
    for i in 0..2u64 {
        if mpi.rank() == 0 {
            let s = mpi.isend(1, i, &msg);
            mpi.compute(10_000);
            mpi.wait(s);
        } else {
            let r = mpi.irecv(Src::Rank(0), TagSel::Is(i));
            mpi.compute(10_000);
            mpi.wait(r);
        }
        mpi.barrier();
    }
}

fn asyncrank2_net() -> NetConfig {
    crate::topo::apply(NetConfig::default())
}

fn asyncrank2_mpi() -> MpiConfig {
    MpiConfig {
        // A short poll interval packs several progress-fiber wakes into
        // each compute window below, so the schedule space is dominated by
        // kind-4 `ProgressWake` drain-now/defer decisions.
        progress: ProgressModel::AsyncRank {
            poll_interval: 2_000,
        },
        ..MpiConfig::open_mpi_pipelined()
    }
}

/// The eager2 exchange under the async progress rank: arrivals land while
/// both ranks compute, so every poll boundary with pending host events is a
/// `ProgressWake` choice point the oracle can flip between draining
/// immediately and deferring to the next boundary.
fn asyncrank2_body(mpi: &mut Mpi) {
    let msg = vec![0x5Au8; 2 << 10];
    let peer = 1 - mpi.rank();
    for i in 0..2u64 {
        let s = mpi.isend(peer, i, &msg);
        let r = mpi.irecv(Src::Rank(peer), TagSel::Is(i));
        mpi.compute(9_000);
        mpi.wait(s);
        mpi.wait(r);
    }
}

fn deadlock_net() -> NetConfig {
    // Total loss: every two-sided packet (including the rendezvous RTS and
    // all its retransmissions) is dropped.
    crate::topo::apply(NetConfig {
        faults: FaultPlan {
            seed: 42,
            drop_prob: 1.0,
            explore_jitter_ns: 200,
            explore_jitter_steps: 3,
            ..FaultPlan::none()
        },
        ..NetConfig::default()
    })
}

fn deadlock_mpi() -> MpiConfig {
    MpiConfig {
        // A tiny retry budget so the reliability layer abandons quickly and
        // the run quiesces into the engine's detectable deadlock instead of
        // retransmitting forever.
        max_retries: 2,
        ..MpiConfig::open_mpi_pipelined()
    }
}

/// The planted deadlock: a rendezvous-size send whose control traffic the
/// fault plan drops past the retry budget. Rank 0 blocks waiting for the
/// CTS that can never arrive, rank 1 blocks waiting for the RTS — a
/// two-rank wait-for cycle the engine reports at quiescence.
fn deadlock_body(mpi: &mut Mpi) {
    let msg = vec![0x5Au8; 64 << 10];
    if mpi.rank() == 0 {
        let s = mpi.isend(1, 7, &msg);
        mpi.compute(5_000);
        mpi.wait(s);
    } else {
        mpi.recv(Src::Rank(0), TagSel::Is(7));
    }
}

/// The scenario registry.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            id: "eager2",
            about: "2-rank eager exchange, fault-free (bounded-exhaustive target)",
            nranks: 2,
            fault_seed: 0,
            net: eager2_net,
            mpi: eager2_mpi,
            body: eager2_body,
        },
        Scenario {
            id: "fig03ish",
            about: "Fig. 3 shape (10 KB eager) under 300 ns arrival jitter",
            nranks: 2,
            fault_seed: 11,
            net: fig03ish_net,
            mpi: fig03ish_mpi,
            body: fig03ish_body,
        },
        Scenario {
            id: "asyncrank2",
            about: "eager2 shape under the async progress rank (ProgressWake interleavings)",
            nranks: 2,
            fault_seed: 0,
            net: asyncrank2_net,
            mpi: asyncrank2_mpi,
            body: asyncrank2_body,
        },
        Scenario {
            id: "deadlock",
            about: "rendezvous send with control traffic dropped past the retry budget",
            nranks: 2,
            fault_seed: 42,
            net: deadlock_net,
            mpi: deadlock_mpi,
            body: deadlock_body,
        },
    ]
}

/// Look up a scenario by id.
pub fn find_scenario(id: &str) -> Option<Scenario> {
    scenarios().into_iter().find(|s| s.id == id)
}

// ---------------------------------------------------------------------------
// Running one schedule
// ---------------------------------------------------------------------------

/// What one explored schedule did.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The run completed and every invariant held.
    Clean {
        /// Virtual end time of the schedule.
        end_time: u64,
        /// Σ over ranks of the total min-overlap bound (guided objective).
        min_sum: u64,
        /// Σ over ranks of the total max-overlap bound (guided objective).
        max_sum: u64,
    },
    /// The run completed but one or more invariants failed.
    Violation(Vec<String>),
    /// The run deadlocked; the string is the engine's one-line diagnostic
    /// (including the wait-for cycle when the diagnostics carry one).
    Deadlock(String),
    /// The run failed some other way (event-limit livelock guard, rank
    /// panic, ...).
    Error(String),
}

impl Outcome {
    /// Stable category tag, used to match a replayed outcome against the
    /// counterexample that recorded it.
    pub fn category(&self) -> &'static str {
        match self {
            Outcome::Clean { .. } => "clean",
            Outcome::Violation(_) => "violation",
            Outcome::Deadlock(_) => "deadlock",
            Outcome::Error(_) => "error",
        }
    }
}

/// One explored schedule: its outcome plus the full recorded decision
/// sequence that identifies it.
#[derive(Debug, Clone)]
pub struct ScheduleRun {
    /// What the schedule did.
    pub outcome: Outcome,
    /// Every oracle decision the run consulted, in consultation order.
    pub choices: Vec<ChoiceRec>,
}

/// Invariant checks that run on every completed schedule, beyond the report
/// checks in [`overlap_core::invariant`]: ground-truth activity logs must be
/// time-ordered with non-negative spans, and the wait-state attribution must
/// reconcile exactly against the overlap bounds on every transfer.
fn check_run(out: &MpiRunOutcome) -> Vec<String> {
    let mut v: Vec<String> = overlap_core::check_reports(&out.reports)
        .into_iter()
        .map(|v| v.to_string())
        .collect();
    for (rank, log) in out.activity.iter().enumerate() {
        let mut last = 0u64;
        for &(from, until, kind) in log.entries() {
            if until < from {
                v.push(format!(
                    "activity_span: rank {rank} {kind:?} interval [{from}, {until}) runs backwards"
                ));
            }
            if from < last {
                v.push(format!(
                    "activity_order: rank {rank} {kind:?} interval starts at {from} before previous start {last}"
                ));
            }
            last = from;
        }
    }
    for tr in &out.traces {
        let attr = overlap_core::attribute(tr);
        for rec in &attr.records {
            let explained: u64 = rec.breakdown.iter().map(|s| s.ns).sum();
            if explained != rec.nonoverlap || rec.nonoverlap != rec.xfer_time - rec.max_overlap {
                v.push(format!(
                    "attribution_reconcile: rank {} transfer {:?} breakdown {} vs nonoverlap {} (xfer {} max {})",
                    tr.rank, rec.id, explained, rec.nonoverlap, rec.xfer_time, rec.max_overlap
                ));
            }
        }
    }
    v
}

/// Run one schedule of `sc` under `oracle` and classify the result.
pub fn run_schedule(sc: &Scenario, oracle: Box<dyn ScheduleOracle>) -> ScheduleRun {
    let handle = OracleHandle::new(oracle);
    let net = (sc.net)();
    let table = default_xfer_table(&net);
    let opts = SimOpts {
        max_events: Some(MAX_EVENTS_PER_SCHEDULE),
        ..SimOpts::default()
    };
    let rec = RecorderOpts {
        trace: true,
        ..RecorderOpts::default()
    };
    let res = run_mpi_explored(
        sc.nranks,
        net,
        (sc.mpi)(),
        rec,
        table,
        opts,
        Some(handle.clone()),
        sc.body,
    );
    let outcome = match res {
        Ok(out) => {
            let violations = check_run(&out);
            if violations.is_empty() {
                let min_sum = out.reports.iter().map(|r| r.total.min_overlap).sum();
                let max_sum = out.reports.iter().map(|r| r.total.max_overlap).sum();
                Outcome::Clean {
                    end_time: out.end_time,
                    min_sum,
                    max_sum,
                }
            } else {
                Outcome::Violation(violations)
            }
        }
        Err(e @ SimError::Deadlock { .. }) => Outcome::Deadlock(e.one_line()),
        Err(e) => Outcome::Error(e.one_line()),
    };
    ScheduleRun {
        outcome,
        choices: handle.trace(),
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// One failing schedule, shrunk to its minimal divergent choice prefix.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Outcome category (`"violation"` or `"deadlock"` / `"error"`).
    pub category: &'static str,
    /// Human-readable description (invariant list or deadlock one-liner).
    pub description: String,
    /// The minimal choice prefix reproducing the outcome (canonical-0 tail
    /// implied).
    pub choices: Vec<ChoiceRec>,
}

/// Aggregated exploration result.
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// Schedules executed.
    pub schedules: usize,
    /// Schedules that completed with every invariant holding.
    pub clean: usize,
    /// Schedules that deadlocked.
    pub deadlocks: usize,
    /// Schedules with invariant violations.
    pub violations: usize,
    /// Schedules that failed some other way.
    pub errors: usize,
    /// Distinct virtual end times among clean schedules (a coarse measure
    /// of how much of the space the strategy actually moved).
    pub distinct_end_times: usize,
    /// `true` when the exhaustive strategy enumerated the whole bounded
    /// space within budget (always `false` for sampling strategies).
    pub complete: bool,
    /// First invariant violation found, shrunk.
    pub first_violation: Option<Finding>,
    /// First deadlock found, shrunk.
    pub first_deadlock: Option<Finding>,
}

impl ExploreStats {
    fn note(&mut self, sc: &Scenario, run: &ScheduleRun, end_times: &mut Vec<u64>) {
        self.schedules += 1;
        match &run.outcome {
            Outcome::Clean { end_time, .. } => {
                self.clean += 1;
                if !end_times.contains(end_time) {
                    end_times.push(*end_time);
                }
            }
            Outcome::Violation(_) => {
                self.violations += 1;
                if self.first_violation.is_none() {
                    self.first_violation = Some(shrink_finding(sc, run, "violation"));
                }
            }
            Outcome::Deadlock(_) => {
                self.deadlocks += 1;
                if self.first_deadlock.is_none() {
                    self.first_deadlock = Some(shrink_finding(sc, run, "deadlock"));
                }
            }
            Outcome::Error(_) => self.errors += 1,
        }
    }
}

fn count_nonzero(prefix: &[ChoiceRec]) -> usize {
    prefix.iter().filter(|r| r.choice != 0).count()
}

/// Bounded-exhaustive DFS (DPOR-lite): explore the choice tree by replaying
/// forced prefixes, expanding every decision past the prefix, with at most
/// `preemption_bound` non-canonical choices per schedule. Stops early when
/// `budget` schedules have run; [`ExploreStats::complete`] records whether
/// the bounded space was fully enumerated.
pub fn explore_exhaustive(sc: &Scenario, budget: usize, preemption_bound: usize) -> ExploreStats {
    let mut stats = ExploreStats::default();
    let mut end_times = Vec::new();
    let mut stack: Vec<Vec<ChoiceRec>> = vec![Vec::new()];
    let mut truncated = false;
    while let Some(prefix) = stack.pop() {
        if stats.schedules >= budget {
            truncated = true;
            break;
        }
        let run = run_schedule(sc, Box::new(ReplayOracle::new(prefix.clone())));
        stats.note(sc, &run, &mut end_times);
        // Branch only past the forced prefix: every position before it was
        // already expanded by an ancestor, so each schedule is visited once.
        for i in prefix.len()..run.choices.len() {
            let rec = run.choices[i];
            let taken_nonzero = count_nonzero(&run.choices[..i]);
            for alt in 0..rec.arity {
                if alt == rec.choice {
                    continue;
                }
                if taken_nonzero + usize::from(alt != 0) > preemption_bound {
                    continue;
                }
                let mut p = run.choices[..i].to_vec();
                p.push(ChoiceRec {
                    kind: rec.kind,
                    arity: rec.arity,
                    choice: alt,
                });
                stack.push(p);
            }
        }
    }
    stats.distinct_end_times = end_times.len();
    stats.complete = !truncated;
    stats
}

/// Seeded random-permutation search: `budget` schedules, one
/// [`RandomOracle`] seed per schedule (`seed + i`).
pub fn explore_random(sc: &Scenario, budget: usize, seed: u64) -> ExploreStats {
    let mut stats = ExploreStats::default();
    let mut end_times = Vec::new();
    for i in 0..budget {
        let run = run_schedule(sc, Box::new(RandomOracle::new(seed.wrapping_add(i as u64))));
        stats.note(sc, &run, &mut end_times);
    }
    stats.distinct_end_times = end_times.len();
    stats
}

/// splitmix64 for the guided strategy's mutation choices.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Guided min/max-overlap search: hill-climb from the canonical schedule,
/// mutating one choice of the best-known schedule per step. The first half
/// of the budget *minimizes* the summed min-overlap bound (hunting
/// schedules where the framework can guarantee least), the second half
/// *maximizes* the summed max bound.
pub fn explore_guided(sc: &Scenario, budget: usize, seed: u64) -> ExploreStats {
    let mut stats = ExploreStats::default();
    let mut end_times = Vec::new();
    let mut rng = seed ^ 0xd1b5_4a32_d192_ed03;

    let objective = |run: &ScheduleRun, maximize: bool| -> Option<i128> {
        match run.outcome {
            Outcome::Clean {
                min_sum, max_sum, ..
            } => Some(if maximize {
                i128::from(max_sum)
            } else {
                -i128::from(min_sum)
            }),
            _ => None,
        }
    };

    for phase in 0..2 {
        let maximize = phase == 1;
        let phase_budget = budget / 2 + if maximize { budget % 2 } else { 0 };
        if phase_budget == 0 {
            continue;
        }
        let base = run_schedule(sc, Box::new(ReplayOracle::new(Vec::new())));
        stats.note(sc, &base, &mut end_times);
        let mut best_choices = base.choices.clone();
        let mut best_score = objective(&base, maximize);
        for _ in 1..phase_budget {
            if best_choices.is_empty() {
                break; // no choice points: nothing to mutate
            }
            let mut mutated = best_choices.clone();
            let pos = (splitmix(&mut rng) % mutated.len() as u64) as usize;
            let rec = &mut mutated[pos];
            if rec.arity > 1 {
                let shift = 1 + (splitmix(&mut rng) % u64::from(rec.arity - 1)) as u32;
                rec.choice = (rec.choice + shift) % rec.arity;
            }
            mutated.truncate(pos + 1); // canonical tail past the mutation
            let run = run_schedule(sc, Box::new(ReplayOracle::new(mutated)));
            stats.note(sc, &run, &mut end_times);
            if let Some(score) = objective(&run, maximize) {
                if best_score.is_none() || score > best_score.unwrap() {
                    best_score = Some(score);
                    best_choices = run.choices.clone();
                }
            }
        }
    }
    stats.distinct_end_times = end_times.len();
    stats
}

// ---------------------------------------------------------------------------
// Shrinking and counterexamples
// ---------------------------------------------------------------------------

/// Does replaying `prefix` (canonical tail implied) reproduce `category`?
fn reproduces(sc: &Scenario, prefix: &[ChoiceRec], category: &str) -> bool {
    run_schedule(sc, Box::new(ReplayOracle::new(prefix.to_vec())))
        .outcome
        .category()
        == category
}

/// Shrink a failing decision sequence to a minimal divergent prefix that
/// still reproduces the outcome category: binary-search the shortest
/// reproducing prefix length, then greedily re-canonicalize (zero) each
/// remaining non-canonical choice, then drop the now-canonical tail.
pub fn shrink(sc: &Scenario, failing: &[ChoiceRec], category: &str) -> Vec<ChoiceRec> {
    // Binary search the minimal reproducing prefix length. Reproduction is
    // monotone in practice (a longer prefix of the same failing schedule
    // pins the same divergence); the final verification below re-checks.
    let (mut lo, mut hi) = (0usize, failing.len());
    if reproduces(sc, &failing[..0], category) {
        hi = 0;
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if reproduces(sc, &failing[..mid], category) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut prefix = failing[..hi].to_vec();
    // Greedy zeroing: canonicalize every choice that isn't load-bearing.
    for i in 0..prefix.len() {
        if prefix[i].choice == 0 {
            continue;
        }
        let saved = prefix[i].choice;
        prefix[i].choice = 0;
        if !reproduces(sc, &prefix, category) {
            prefix[i].choice = saved;
        }
    }
    // A canonical tail adds nothing: trim trailing zeros.
    while prefix.last().map(|r| r.choice) == Some(0) {
        prefix.pop();
    }
    if reproduces(sc, &prefix, category) {
        prefix
    } else {
        // Shrinking went non-monotone somewhere; fall back to the full
        // sequence, which reproduces by construction.
        failing.to_vec()
    }
}

fn shrink_finding(sc: &Scenario, run: &ScheduleRun, category: &'static str) -> Finding {
    let description = match &run.outcome {
        Outcome::Violation(vs) => vs.join("; "),
        Outcome::Deadlock(m) | Outcome::Error(m) => m.clone(),
        Outcome::Clean { .. } => String::new(),
    };
    Finding {
        category,
        description,
        choices: shrink(sc, &run.choices, category),
    }
}

/// A replayable counterexample token: everything needed to reproduce one
/// failing schedule deterministically, written as
/// `<scenario>.counterexample.json`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Counterexample {
    /// Token format version ([`SCHEMA_VERSION`]); replays refuse others.
    pub schema_version: u32,
    /// Scenario id the token belongs to.
    pub scenario: String,
    /// Strategy that found the schedule.
    pub strategy: String,
    /// Outcome category the replay must reproduce.
    pub category: String,
    /// Human-readable description of what failed.
    pub description: String,
    /// Fault-plan seed of the scenario at recording time; the replay
    /// asserts it matches the current scenario definition.
    pub fault_seed: u64,
    /// Base oracle seed of the exploration that found this schedule.
    pub oracle_seed: u64,
    /// The minimal divergent choice prefix as `[kind, arity, choice]`
    /// triples (canonical-0 tail implied).
    pub choices: Vec<Vec<u64>>,
}

impl Counterexample {
    /// Build a token from a shrunk finding.
    pub fn from_finding(sc: &Scenario, strategy: &str, oracle_seed: u64, f: &Finding) -> Self {
        Counterexample {
            schema_version: SCHEMA_VERSION,
            scenario: sc.id.to_string(),
            strategy: strategy.to_string(),
            category: f.category.to_string(),
            description: f.description.clone(),
            fault_seed: sc.fault_seed,
            oracle_seed,
            choices: f
                .choices
                .iter()
                .map(|r| vec![u64::from(r.kind), u64::from(r.arity), u64::from(r.choice)])
                .collect(),
        }
    }

    /// The choice prefix as oracle records.
    pub fn choice_recs(&self) -> Vec<ChoiceRec> {
        self.choices
            .iter()
            .filter(|t| t.len() == 3)
            .map(|t| ChoiceRec {
                kind: t[0] as u8,
                arity: t[1] as u32,
                choice: t[2] as u32,
            })
            .collect()
    }

    /// Write the token under `dir` as `<scenario>.counterexample.json`.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.counterexample.json", self.scenario));
        let json = serde_json::to_string_pretty(self).map_err(std::io::Error::other)?;
        std::fs::write(&path, json)?;
        Ok(path)
    }

    /// Replay the token against the current scenario registry.
    ///
    /// Fails (with a message) when the schema version or fault seed no
    /// longer match — the token describes a different configuration — or
    /// when the replayed schedule does not reproduce the recorded outcome
    /// category.
    pub fn replay(&self) -> Result<Outcome, String> {
        if self.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} (current {}): token from a different explorer version",
                self.schema_version, SCHEMA_VERSION
            ));
        }
        let sc = find_scenario(&self.scenario)
            .ok_or_else(|| format!("unknown scenario {:?}", self.scenario))?;
        if sc.fault_seed != self.fault_seed {
            return Err(format!(
                "fault seed {} but scenario {} now uses {}: configuration changed",
                self.fault_seed, sc.id, sc.fault_seed
            ));
        }
        let run = run_schedule(&sc, Box::new(ReplayOracle::new(self.choice_recs())));
        if run.outcome.category() == self.category {
            Ok(run.outcome)
        } else {
            Err(format!(
                "replay produced {:?}, token recorded {:?}",
                run.outcome.category(),
                self.category
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------------

/// Machine-readable summary written by `repro explore --json`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ExploreReport {
    /// Report format version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Scenario explored.
    pub scenario: String,
    /// Strategy used.
    pub strategy: String,
    /// Schedule budget requested.
    pub budget: usize,
    /// Effective base oracle seed (random/guided strategies).
    pub oracle_seed: u64,
    /// Effective fault-plan seed of the scenario.
    pub fault_seed: u64,
    /// Schedules executed.
    pub schedules: usize,
    /// Whether the bounded space was fully enumerated (exhaustive only).
    pub complete: bool,
    /// Clean schedules.
    pub clean: usize,
    /// Deadlocked schedules.
    pub deadlocks: usize,
    /// Invariant-violating schedules.
    pub violations: usize,
    /// Otherwise-failed schedules.
    pub errors: usize,
    /// Distinct clean end times (schedule-space coverage signal).
    pub distinct_end_times: usize,
    /// Paths of counterexample tokens written.
    pub counterexamples: Vec<String>,
}

/// Entry point for `repro explore ...`; returns the process exit code
/// (0 = explored with no invariant violations / replay reproduced,
/// 1 = invariant violations found or replay failed, 2 = usage error).
pub fn cli_main(args: &[String]) -> i32 {
    let mut scenario = String::from("eager2");
    let mut scenario_set = false;
    let mut strategy = String::from("random");
    let mut budget = 256usize;
    let mut seed = 1u64;
    let mut out_dir = PathBuf::from(".");
    let mut preemptions = 2usize;
    let mut replay: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut list = false;

    let usage = "usage: repro explore [<scenario>|list] [--strategy exhaustive|random|guided] \
                 [--budget N] [--seed N] [--preemptions N] [--out DIR] [--json PATH] \
                 [--replay TOKEN.json]";

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let r: Result<(), String> = (|| {
            match arg.as_str() {
                "list" => list = true,
                "--strategy" => strategy = take("--strategy")?,
                "--budget" => {
                    budget = take("--budget")?
                        .parse()
                        .map_err(|_| "--budget expects an integer".to_string())?
                }
                "--seed" => {
                    seed = take("--seed")?
                        .parse()
                        .map_err(|_| "--seed expects an integer".to_string())?
                }
                "--preemptions" => {
                    preemptions = take("--preemptions")?
                        .parse()
                        .map_err(|_| "--preemptions expects an integer".to_string())?
                }
                "--out" => out_dir = PathBuf::from(take("--out")?),
                "--json" => json = Some(PathBuf::from(take("--json")?)),
                "--replay" => replay = Some(PathBuf::from(take("--replay")?)),
                a if a.starts_with('-') => return Err(format!("unknown flag {a:?}")),
                a => {
                    if scenario_set {
                        return Err(format!(
                            "more than one scenario given ({scenario:?}, {a:?})"
                        ));
                    }
                    scenario = a.to_string();
                    scenario_set = true;
                }
            }
            Ok(())
        })();
        if let Err(msg) = r {
            eprintln!("repro explore: {msg}\n{usage}");
            return 2;
        }
    }

    if list {
        println!("scenarios:");
        for s in scenarios() {
            println!("  {:10} {}", s.id, s.about);
        }
        println!("strategies: exhaustive, random, guided");
        return 0;
    }

    if let Some(path) = replay {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("repro explore: cannot read {}: {e}", path.display());
                return 2;
            }
        };
        let token: Counterexample = match serde_json::from_str(&text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "repro explore: {} is not a counterexample token: {e}",
                    path.display()
                );
                return 2;
            }
        };
        return match token.replay() {
            Ok(outcome) => {
                println!(
                    "replayed {}: reproduced {} ({})",
                    path.display(),
                    token.category,
                    match outcome {
                        Outcome::Deadlock(m) | Outcome::Error(m) => m,
                        Outcome::Violation(vs) => vs.join("; "),
                        Outcome::Clean { end_time, .. } => format!("end_time {end_time}"),
                    }
                );
                0
            }
            Err(msg) => {
                eprintln!("repro explore: replay failed: {msg}");
                1
            }
        };
    }

    let Some(sc) = find_scenario(&scenario) else {
        eprintln!("repro explore: unknown scenario {scenario:?} (see `repro explore list`)");
        return 2;
    };

    let stats = match strategy.as_str() {
        "exhaustive" => explore_exhaustive(&sc, budget, preemptions),
        "random" => explore_random(&sc, budget, seed),
        "guided" => explore_guided(&sc, budget, seed),
        other => {
            eprintln!("repro explore: unknown strategy {other:?}\n{usage}");
            return 2;
        }
    };

    let mut counterexamples = Vec::new();
    for finding in [&stats.first_violation, &stats.first_deadlock]
        .into_iter()
        .flatten()
    {
        let token = Counterexample::from_finding(&sc, &strategy, seed, finding);
        match token.save(&out_dir) {
            Ok(path) => {
                println!(
                    "counterexample ({}, {} choice(s)): {}",
                    finding.category,
                    finding.choices.len(),
                    path.display()
                );
                counterexamples.push(path.display().to_string());
            }
            Err(e) => {
                eprintln!("repro explore: cannot write counterexample: {e}");
                return 2;
            }
        }
    }

    println!(
        "explored {scenario} with {strategy}: {} schedule(s){} — {} clean ({} distinct end times), \
         {} deadlock(s), {} violation(s), {} error(s)",
        stats.schedules,
        if stats.complete {
            " (space fully enumerated)"
        } else {
            ""
        },
        stats.clean,
        stats.distinct_end_times,
        stats.deadlocks,
        stats.violations,
        stats.errors,
    );
    if let Some(f) = &stats.first_deadlock {
        println!("first deadlock: {}", f.description);
    }
    if let Some(f) = &stats.first_violation {
        println!("first violation: {}", f.description);
    }

    if let Some(path) = json {
        let report = ExploreReport {
            schema_version: SCHEMA_VERSION,
            scenario: sc.id.to_string(),
            strategy: strategy.clone(),
            budget,
            oracle_seed: seed,
            fault_seed: sc.fault_seed,
            schedules: stats.schedules,
            complete: stats.complete,
            clean: stats.clean,
            deadlocks: stats.deadlocks,
            violations: stats.violations,
            errors: stats.errors,
            distinct_end_times: stats.distinct_end_times,
            counterexamples,
        };
        match serde_json::to_string_pretty(&report) {
            Ok(j) => {
                if let Err(e) = std::fs::write(&path, j) {
                    eprintln!("repro explore: cannot write {}: {e}", path.display());
                    return 2;
                }
                eprintln!("wrote {}", path.display());
            }
            Err(e) => {
                eprintln!("repro explore: cannot serialize report: {e}");
                return 2;
            }
        }
    }

    if stats.violations > 0 {
        1
    } else {
        0
    }
}
