//! Property tests: randomized (but deadlock-free) MPI programs must always
//! deliver payloads intact and produce bounds that bracket ground truth.

use proptest::prelude::*;

use overlap_core::RecorderOpts;
use simmpi::{default_xfer_table, run_mpi, MpiConfig, ProgressModel, RndvMode, Src, TagSel};
use simnet::NetConfig;

/// One round of a generated two-rank program. Both ranks execute the same
/// schedule (symmetric exchange), which is always deadlock-free.
#[derive(Debug, Clone, Copy)]
struct Round {
    bytes: usize,
    compute_ns: u64,
    probe: bool,
    blocking_send: bool,
}

fn arb_round() -> impl Strategy<Value = Round> {
    (
        prop_oneof![
            Just(16usize),
            Just(1 << 10),
            Just(10 << 10),
            Just(13 << 10),
            Just(100 << 10),
            Just(600 << 10),
        ],
        0u64..1_500_000,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(bytes, compute_ns, probe, blocking_send)| Round {
            bytes,
            compute_ns,
            probe,
            blocking_send,
        })
}

fn arb_cfg() -> impl Strategy<Value = MpiConfig> {
    (
        prop_oneof![Just(RndvMode::PipelinedWrite), Just(RndvMode::DirectRead)],
        prop_oneof![Just(4usize << 10), Just(12 << 10), Just(64 << 10)],
        prop_oneof![Just(32usize << 10), Just(128 << 10)],
        any::<bool>(),
    )
        .prop_map(
            |(rndv_mode, eager_threshold, fragment_size, use_reg_cache)| MpiConfig {
                eager_threshold,
                rndv_mode,
                fragment_size,
                use_reg_cache,
                reg_cache_entries: 8,
                retrans_timeout: None,
                max_retries: 16,
                progress: ProgressModel::Polling,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_deliver_and_bound_correctly(
        rounds in prop::collection::vec(arb_round(), 1..12),
        cfg in arb_cfg(),
    ) {
        let net = NetConfig::default();
        let rounds_in = rounds.clone();
        let out = run_mpi(2, net.clone(), cfg, RecorderOpts::default(), move |mpi| {
            let me = mpi.rank();
            let other = 1 - me;
            for (i, r) in rounds_in.iter().enumerate() {
                let tag = i as u64;
                let payload = vec![(me * 37 + i) as u8; r.bytes];
                let rr = mpi.irecv(Src::Rank(other), TagSel::Is(tag));
                if r.blocking_send {
                    mpi.send(other, tag, &payload);
                } else {
                    let sr = mpi.isend(other, tag, &payload);
                    mpi.compute(r.compute_ns / 2);
                    mpi.wait(sr);
                }
                if r.probe {
                    mpi.iprobe(Src::Any, TagSel::Any);
                }
                mpi.compute(r.compute_ns);
                let st = mpi.wait(rr);
                let got = st.into_data();
                let expect = (other * 37 + i) as u8;
                // Plain asserts: a failure panics the rank, which surfaces
                // as a run error (prop_assert can't cross the closure).
                assert!(got.iter().all(|&b| b == expect), "round {i} corrupted");
                assert_eq!(got.len(), r.bytes);
            }
        }).expect("run failed");

        let table = default_xfer_table(&net);
        for rank in 0..2 {
            let rep = &out.reports[rank].total;
            let truth = out.true_overlap(rank);
            let slack = out.congestion_excess(rank, &table);
            prop_assert!(rep.min_overlap <= truth,
                "rank {rank}: min {} > truth {}", rep.min_overlap, truth);
            prop_assert!(truth <= rep.max_overlap + slack,
                "rank {rank}: truth {} > max {} + slack {}", truth, rep.max_overlap, slack);
            prop_assert!(rep.min_overlap <= rep.max_overlap);
            // Every generated round moves one message per direction; the
            // pipelined mode may split one message into several transfers.
            prop_assert!(rep.transfers as usize >= rounds.len());
        }
    }

    #[test]
    fn determinism_under_random_programs(
        rounds in prop::collection::vec(arb_round(), 1..8),
        cfg in arb_cfg(),
    ) {
        let run = |rounds: Vec<Round>, cfg: MpiConfig| {
            run_mpi(2, NetConfig::default(), cfg, RecorderOpts::default(), move |mpi| {
                let me = mpi.rank();
                let other = 1 - me;
                for (i, r) in rounds.iter().enumerate() {
                    let payload = vec![3u8; r.bytes];
                    let rr = mpi.irecv(Src::Rank(other), TagSel::Is(i as u64));
                    let sr = mpi.isend(other, i as u64, &payload);
                    mpi.compute(r.compute_ns);
                    mpi.wait(sr);
                    mpi.wait(rr);
                }
            }).expect("run failed")
        };
        let a = run(rounds.clone(), cfg.clone());
        let b = run(rounds, cfg);
        prop_assert_eq!(a.end_time, b.end_time);
        prop_assert_eq!(a.events_processed, b.events_processed);
        prop_assert_eq!(&a.reports[0].total, &b.reports[0].total);
        prop_assert_eq!(&a.reports[1].total, &b.reports[1].total);
    }
}
