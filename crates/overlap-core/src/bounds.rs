//! Per-transfer overlap bound computation (paper Sec. 2.2, the three cases).

use serde::{Deserialize, Serialize};

/// Which of the paper's three cases a transfer fell into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum XferCase {
    /// Both stamps inside the same communication call: no computation could
    /// have been performed during the transfer.
    SameCall,
    /// Stamps in different calls, with interleaved computation and library
    /// periods between them.
    SplitCalls,
    /// Only one of the two stamps observed: nothing conclusive can be said.
    SingleStamp,
}

/// Minimum and maximum overlapped transfer time for one transfer.
///
/// Precise overlap is unknowable from host-side stamps alone, so each
/// transfer gets a `[min, max]` interval derived from one of the three
/// constructors (the paper's three cases). See `docs/BOUNDS.md` for the
/// full derivation.
///
/// ```
/// use overlap_core::OverlapBounds;
///
/// // xfer 100 ns, 150 ns of user computation between the stamps, 20 ns of
/// // in-library time: the transfer fits inside the computation (max = 100),
/// // and at most 20 ns of it can hide in the library (min = 80).
/// let b = OverlapBounds::split_calls(100, 150, 20);
/// assert_eq!((b.min, b.max), (80, 100));
///
/// // Both stamps inside one call: no overlap was possible.
/// assert_eq!(OverlapBounds::same_call().max, 0);
///
/// // Only one stamp observed: nothing conclusive, the bounds span
/// // everything.
/// assert_eq!(OverlapBounds::single_stamp(100).min, 0);
/// assert_eq!(OverlapBounds::single_stamp(100).max, 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverlapBounds {
    /// Lower bound on overlapped transfer time, ns.
    pub min: u64,
    /// Upper bound on overlapped transfer time, ns.
    pub max: u64,
    /// The case that produced these bounds.
    pub case: XferCase,
}

impl OverlapBounds {
    /// Case 1: `XFER_BEGIN` and `XFER_END` within the same communication
    /// call — the application was inside the library for the whole transfer,
    /// so both bounds are zero.
    pub fn same_call() -> Self {
        OverlapBounds {
            min: 0,
            max: 0,
            case: XferCase::SameCall,
        }
    }

    /// Case 2: stamps in different calls. `computation_time` is the total
    /// user computation and `noncomputation_time` the total in-library time
    /// between the two stamps; `xfer_time` is the a-priori transfer time.
    ///
    /// * max = `xfer_time` if enough interleaved computation existed to cover
    ///   it, else the computation that did exist;
    /// * min = 0 if the library time alone could have covered the transfer,
    ///   else the part of the transfer that *must* have run during
    ///   computation, `xfer_time − noncomputation_time`.
    ///
    /// The result is clamped to `min <= max`, which can only trigger when the
    /// a-priori `xfer_time` exceeds the whole observed window (a table
    /// overestimate); the paper's formulas silently assume this cannot
    /// happen.
    pub fn split_calls(xfer_time: u64, computation_time: u64, noncomputation_time: u64) -> Self {
        let max = xfer_time.min(computation_time);
        let min = xfer_time.saturating_sub(noncomputation_time).min(max);
        OverlapBounds {
            min,
            max,
            case: XferCase::SplitCalls,
        }
    }

    /// Case 3: only one stamp observed — min 0, max `xfer_time`.
    pub fn single_stamp(xfer_time: u64) -> Self {
        OverlapBounds {
            min: 0,
            max: xfer_time,
            case: XferCase::SingleStamp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_call_is_zero() {
        let b = OverlapBounds::same_call();
        assert_eq!((b.min, b.max), (0, 0));
    }

    #[test]
    fn split_with_ample_computation_is_full_overlap_possible() {
        // xfer 100, comp 150, noncomp 20 → max 100, min 80.
        let b = OverlapBounds::split_calls(100, 150, 20);
        assert_eq!((b.min, b.max), (80, 100));
    }

    #[test]
    fn split_with_scarce_computation_caps_max() {
        // xfer 100, comp 30, noncomp 10 → max 30, min 90 clamped to 30.
        let b = OverlapBounds::split_calls(100, 30, 10);
        assert_eq!(b.max, 30);
        assert!(b.min <= b.max);
    }

    #[test]
    fn split_with_large_library_time_floors_min() {
        // noncomp >= xfer → min 0.
        let b = OverlapBounds::split_calls(100, 500, 100);
        assert_eq!(b.min, 0);
        assert_eq!(b.max, 100);
    }

    #[test]
    fn single_stamp_spans_zero_to_xfer() {
        let b = OverlapBounds::single_stamp(77);
        assert_eq!((b.min, b.max), (0, 77));
    }

    #[test]
    fn invariant_min_le_max_holds_everywhere() {
        for xfer in [0u64, 1, 10, 1000] {
            for comp in [0u64, 5, 100, 10_000] {
                for noncomp in [0u64, 5, 100, 10_000] {
                    let b = OverlapBounds::split_calls(xfer, comp, noncomp);
                    assert!(b.min <= b.max);
                    assert!(b.max <= xfer);
                }
            }
        }
    }
}
