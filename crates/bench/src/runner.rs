//! Parallel deterministic harness runner.
//!
//! Every harness is a pure function of a fully seeded virtual-time
//! simulation, so harnesses (and the grid points inside the big ablation
//! sweeps) are embarrassingly parallel. This module provides the small
//! job-pool layer that exploits that:
//!
//! * a global worker budget set once from `--jobs N` ([`set_jobs`], default:
//!   available cores),
//! * [`par_map`] — order-preserving parallel map used inside harnesses for
//!   sweep grids,
//! * [`run_harnesses`] — runs a selection of harnesses concurrently but
//!   *prints in canonical order*, so stdout is byte-identical to a serial
//!   (`--jobs 1`) run,
//! * [`parse_cli`] / [`RunReport`] — the `repro` binary's argument handling
//!   and the `--json` machine-readable report used to track the perf
//!   trajectory across PRs.
//!
//! The budget is permit-based: nested `par_map` calls (a harness running
//! under `run_harnesses` that fans out its own grid) draw from the same
//! pool, so total compute-thread concurrency stays near `--jobs` instead of
//! multiplying.

use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::{Harness, HarnessKind, Series};

/// Configured worker count; 0 means "not yet set" (defaults on first use).
static CONFIGURED_JOBS: AtomicUsize = AtomicUsize::new(0);
/// Spawnable-worker permits remaining out of the configured budget.
static PERMITS: AtomicIsize = AtomicIsize::new(0);

/// Default worker count: the number of available cores.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Set the global worker budget (clamped to at least 1). Call once, before
/// running harnesses; nested [`par_map`] calls share the budget.
pub fn set_jobs(n: usize) {
    let n = n.max(1);
    CONFIGURED_JOBS.store(n, Ordering::SeqCst);
    PERMITS.store(n as isize, Ordering::SeqCst);
}

/// The configured worker budget (initializing to [`default_jobs`] on first
/// use).
pub fn jobs() -> usize {
    let c = CONFIGURED_JOBS.load(Ordering::SeqCst);
    if c != 0 {
        return c;
    }
    let d = default_jobs();
    set_jobs(d);
    d
}

/// Take up to `want` worker permits from the global budget; returns how many
/// were actually granted (possibly 0 — caller then runs inline).
fn acquire_workers(want: usize) -> usize {
    let _ = jobs(); // ensure the budget is initialized
    let mut got = 0usize;
    while got < want {
        let cur = PERMITS.load(Ordering::SeqCst);
        if cur <= 0 {
            break;
        }
        let take = cur.min((want - got) as isize);
        if PERMITS
            .compare_exchange(cur, cur - take, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            got += take as usize;
        }
    }
    got
}

fn release_workers(n: usize) {
    if n > 0 {
        PERMITS.fetch_add(n as isize, Ordering::SeqCst);
    }
}

/// Order-preserving parallel map: apply `f` to every item, using up to the
/// remaining `--jobs` budget worth of extra worker threads (the calling
/// thread always participates). Results come back in input order, so output
/// is identical to a serial `items.iter().map(f)` — only wall-clock changes.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.iter().map(&f).collect();
    }
    let extra = acquire_workers(n - 1);
    if extra == 0 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let work = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let r = f(&items[i]);
        *slots[i].lock().unwrap() = Some(r);
    };
    std::thread::scope(|s| {
        for _ in 0..extra {
            s.spawn(work);
        }
        work();
    });
    release_workers(extra);
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("par_map slot filled"))
        .collect()
}

/// One completed harness execution, as recorded for the `--json` report.
#[derive(Debug, Clone, serde::Serialize)]
pub struct HarnessRun {
    /// Harness identifier (e.g. `"fig05"`).
    pub id: &'static str,
    /// Figure or ablation.
    pub kind: HarnessKind,
    /// Simulated ranks/agents the harness spins up (largest configuration).
    pub ranks: usize,
    /// Host wall-clock seconds this harness took.
    pub wall_s: f64,
    /// Allocation calls during this harness's run — the counting-allocator
    /// delta around the run, so harness setup/teardown and the runner's own
    /// bookkeeping are excluded. The counters are process-wide, so the delta
    /// is attributable to this harness only under `--jobs 1`; reads 0 in
    /// binaries without [`crate::alloc::CountingAlloc`] installed.
    pub alloc_calls: u64,
    /// Bytes requested during this harness's run (same caveats).
    pub alloc_bytes: u64,
    /// The rendered data series.
    pub series: Series,
}

/// Machine-readable report written by `repro --json <path>`: per-harness
/// wall-clock, rank counts, and series, for tracking the perf trajectory
/// (`BENCH_*.json`) across PRs.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RunReport {
    /// Report format version; bumped when the report shape changes so
    /// downstream consumers (and explore replay tokens, which share the
    /// constant) can assert they understand the file. Currently
    /// [`crate::explore::SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Worker budget the run used.
    pub jobs: usize,
    /// Total wall-clock seconds for the whole selection.
    pub total_wall_s: f64,
    /// Per-harness results in canonical order.
    pub harnesses: Vec<HarnessRun>,
    /// Windowed time-resolved series per traced scope (empty without
    /// `--trace`), ordered by scope label.
    pub trace_windows: Vec<ScopeWindows>,
    /// Per-rank wait-state breakdowns per traced scope (empty without
    /// `--critical-path`), ordered by scope label.
    pub wait_states: Vec<crate::critpath::ScopeWaitStates>,
}

/// Time-resolved summary of one traced scope: the scope's virtual-time span
/// cut into fixed windows, each with transfer counts, summed overlap
/// bounds, in-call (wait) time, and fault/flag counts.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ScopeWindows {
    /// Scope label (`"<harness>/<point>"`).
    pub scope: String,
    /// Window width, virtual ns.
    pub window_ns: u64,
    /// The windows, in time order.
    pub windows: Vec<overlap_core::trace::WindowRow>,
}

/// Run `harnesses` on the global worker budget, invoking `on_done` for each
/// **in canonical (input) order** as soon as that harness and all its
/// predecessors have finished. With the sink printing `render()`, stdout is
/// byte-identical to a serial run regardless of `--jobs`.
pub fn run_harnesses(
    harnesses: &[Harness],
    mut on_done: impl FnMut(&HarnessRun),
) -> Vec<HarnessRun> {
    let n = harnesses.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = acquire_workers(n).max(1);
    type Slot = Option<std::thread::Result<HarnessRun>>;
    let done: Mutex<Vec<Slot>> = Mutex::new((0..n).map(|_| None).collect());
    let cv = Condvar::new();
    let next = AtomicUsize::new(0);
    let work = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let h = harnesses[i];
        let res = std::panic::catch_unwind(move || {
            let a0 = crate::alloc::snapshot();
            let t0 = Instant::now();
            let series = (h.run)();
            let wall_s = t0.elapsed().as_secs_f64();
            let (alloc_calls, alloc_bytes) = crate::alloc::region(a0, crate::alloc::snapshot());
            HarnessRun {
                id: h.id,
                kind: h.kind,
                ranks: h.ranks,
                wall_s,
                alloc_calls,
                alloc_bytes,
                series,
            }
        });
        let mut g = done.lock().unwrap();
        g[i] = Some(res);
        cv.notify_all();
    };
    let out = std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(work);
        }
        // This thread only reprints: wait for each slot in canonical order.
        let mut out = Vec::with_capacity(n);
        let mut g = done.lock().unwrap();
        for i in 0..n {
            while g[i].is_none() {
                g = cv.wait(g).unwrap();
            }
            let res = g[i].take().expect("slot ready");
            drop(g);
            match res {
                Ok(run) => {
                    on_done(&run);
                    out.push(run);
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
            g = done.lock().unwrap();
        }
        drop(g);
        out
    });
    release_workers(workers);
    out
}

/// Parsed `repro` command line.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Worker budget (`--jobs N`, default: available cores).
    pub jobs: usize,
    /// Where to write the machine-readable [`RunReport`] (`--json <path>`).
    pub json: Option<std::path::PathBuf>,
    /// Where to write per-harness Chrome-trace + JSONL files
    /// (`--trace <dir>`); also arms trace capture.
    pub trace: Option<std::path::PathBuf>,
    /// Where to write per-harness critical-path artifacts
    /// (`--critical-path <dir>`: `<id>.critpath.folded` collapsed stacks +
    /// `<id>.attribution.json` cause records); also arms trace capture and
    /// merges per-rank wait-state breakdowns into the `--json` report.
    pub critical_path: Option<std::path::PathBuf>,
    /// Where to write the perf-trajectory benchmark record
    /// (`--bench-json <path>`): scheduler hold-model throughput, engine
    /// events/sec, and allocation counts alongside per-harness wall-clock
    /// (see [`crate::enginebench::BenchReport`]).
    pub bench_json: Option<std::path::PathBuf>,
    /// Fabric topology override (`--topology <spec>`: `flat`,
    /// `fat-tree:k=8`, `dragonfly:a=4,p=2,h=2`); applied process-wide via
    /// [`crate::topo::set`] before any harness runs.
    pub topology: Option<simnet::TopologySpec>,
    /// Progress-model override (`--progress <model>`: `polling`,
    /// `async-rank[:interval=<ns>]`, `early-bird`, `hw-tag`); applied
    /// process-wide via [`crate::progress::set`] before any harness runs.
    pub progress: Option<simmpi::ProgressModel>,
    /// Tee captured traces to a running `overlapd` analysis service
    /// (`--stream <host:port>`); also arms trace capture. Push failures are
    /// warnings, never fatal.
    pub stream: Option<String>,
    /// `list` was requested.
    pub list: bool,
    /// The selected harnesses, in canonical order (figures, then ablations).
    pub selection: Vec<Harness>,
}

/// Parse `repro` arguments against the harness registries.
///
/// Selection rules: bare ids select individual harnesses; the group words
/// `figures` / `ablations` select a whole family; both compose (`repro fig05
/// ablations` runs fig05 *and* every ablation). Unknown ids or flags are an
/// error, not silently ignored.
pub fn parse_cli(
    args: &[String],
    figures: &[Harness],
    ablations: &[Harness],
) -> Result<Cli, String> {
    let mut jobs: Option<usize> = None;
    let mut json: Option<std::path::PathBuf> = None;
    let mut trace: Option<std::path::PathBuf> = None;
    let mut critical_path: Option<std::path::PathBuf> = None;
    let mut bench_json: Option<std::path::PathBuf> = None;
    let mut topology: Option<simnet::TopologySpec> = None;
    let mut progress: Option<simmpi::ProgressModel> = None;
    let mut stream: Option<String> = None;
    let mut list = false;
    let mut want_figures = false;
    let mut want_ablations = false;
    let mut ids: Vec<&str> = Vec::new();

    let parse_jobs = |v: &str| -> Result<usize, String> {
        v.parse::<usize>()
            .map_err(|_| format!("invalid --jobs value {v:?} (expected a positive integer)"))
            .and_then(|n| {
                if n == 0 {
                    Err("--jobs must be at least 1".to_string())
                } else {
                    Ok(n)
                }
            })
    };

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "list" => list = true,
            "figures" => want_figures = true,
            "ablations" => want_ablations = true,
            "--jobs" | "-j" => {
                let v = it.next().ok_or_else(|| format!("{arg} requires a value"))?;
                jobs = Some(parse_jobs(v)?);
            }
            "--json" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--json requires a path".to_string())?;
                json = Some(std::path::PathBuf::from(v));
            }
            "--trace" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--trace requires a directory".to_string())?;
                trace = Some(std::path::PathBuf::from(v));
            }
            "--bench-json" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--bench-json requires a path".to_string())?;
                bench_json = Some(std::path::PathBuf::from(v));
            }
            "--critical-path" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--critical-path requires a directory".to_string())?;
                critical_path = Some(std::path::PathBuf::from(v));
            }
            "--topology" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--topology requires a spec".to_string())?;
                topology = Some(simnet::TopologySpec::parse(v)?);
            }
            "--progress" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--progress requires a model".to_string())?;
                progress = Some(simmpi::ProgressModel::parse(v)?);
            }
            "--stream" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--stream requires a host:port address".to_string())?;
                stream = Some(v.clone());
            }
            a if a.starts_with("--jobs=") => {
                jobs = Some(parse_jobs(&a["--jobs=".len()..])?);
            }
            a if a.starts_with("--json=") => {
                json = Some(std::path::PathBuf::from(&a["--json=".len()..]));
            }
            a if a.starts_with("--trace=") => {
                trace = Some(std::path::PathBuf::from(&a["--trace=".len()..]));
            }
            a if a.starts_with("--bench-json=") => {
                bench_json = Some(std::path::PathBuf::from(&a["--bench-json=".len()..]));
            }
            a if a.starts_with("--critical-path=") => {
                critical_path = Some(std::path::PathBuf::from(&a["--critical-path=".len()..]));
            }
            a if a.starts_with("--topology=") => {
                topology = Some(simnet::TopologySpec::parse(&a["--topology=".len()..])?);
            }
            a if a.starts_with("--progress=") => {
                progress = Some(simmpi::ProgressModel::parse(&a["--progress=".len()..])?);
            }
            a if a.starts_with("--stream=") => {
                stream = Some(a["--stream=".len()..].to_string());
            }
            a if a.starts_with('-') => return Err(format!("unknown flag {a:?}")),
            a => ids.push(a),
        }
    }

    let known = |id: &str| figures.iter().chain(ablations).any(|h| h.id == id);
    let unknown: Vec<&str> = ids.iter().copied().filter(|id| !known(id)).collect();
    if !unknown.is_empty() {
        return Err(format!(
            "unknown harness id(s): {} (see `repro list`)",
            unknown.join(", ")
        ));
    }

    let select_all = ids.is_empty() && !want_figures && !want_ablations;
    let mut selection = Vec::new();
    for h in figures {
        if select_all || want_figures || ids.contains(&h.id) {
            selection.push(*h);
        }
    }
    for h in ablations {
        if select_all || want_ablations || ids.contains(&h.id) {
            selection.push(*h);
        }
    }

    Ok(Cli {
        jobs: jobs.unwrap_or_else(default_jobs),
        json,
        trace,
        critical_path,
        bench_json,
        topology,
        progress,
        stream,
        list,
        selection,
    })
}
