//! Communicators: process subgroups with their own rank numbering and
//! collective scope (the `MPI_Comm_split` subset real NAS codes use for
//! row/column communicators).

/// A communicator: an ordered subgroup of world ranks. Obtained from
/// [`crate::Mpi::comm_world`] or [`crate::Mpi::comm_split`]; passed to the
/// `*_comm` collective variants. The member list is behind an `Arc`, so
/// cloning a communicator (every `comm_world()` call, every collective) is
/// a refcount bump, not a copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comm {
    /// Unique id, agreed across members (scopes collective tags).
    pub(crate) id: u64,
    /// Member world ranks in communicator order.
    pub(crate) ranks: std::sync::Arc<[usize]>,
    /// This process's rank within the communicator.
    pub(crate) my_idx: usize,
}

impl Comm {
    pub(crate) fn world(nranks: usize, my_rank: usize) -> Self {
        Comm {
            id: 0,
            ranks: (0..nranks).collect(),
            my_idx: my_rank,
        }
    }

    /// Number of member processes.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// This process's rank within the communicator.
    pub fn rank(&self) -> usize {
        self.my_idx
    }

    /// World rank of communicator member `idx`.
    pub fn world_rank(&self, idx: usize) -> usize {
        self.ranks[idx]
    }

    /// All member world ranks in communicator order.
    pub fn members(&self) -> &[usize] {
        &self.ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_comm_is_identity() {
        let c = Comm::world(4, 2);
        assert_eq!(c.size(), 4);
        assert_eq!(c.rank(), 2);
        assert_eq!(c.world_rank(3), 3);
        assert_eq!(c.members(), &[0, 1, 2, 3]);
    }
}
