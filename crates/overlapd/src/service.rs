//! Multi-session registry and the merged fleet view.
//!
//! Each pushed stream gets its own [`SessionFold`] behind a mutex; sessions
//! are independent, so concurrent clients contend only when they push to the
//! *same* session (where serialization is exactly what the fold needs).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use overlap_core::stream::{FoldOpts, SessionFold};
use overlap_core::{MetricsRegistry, OverlapStats};
use serde::Serialize;

/// The shared session registry behind the server.
pub struct Service {
    opts: FoldOpts,
    sessions: Mutex<BTreeMap<String, Arc<Mutex<SessionFold>>>>,
}

/// One row of the `/v1/sessions` listing.
#[derive(Debug, Clone, Serialize)]
pub struct SessionInfo {
    /// Session name (client-chosen; `repro push` defaults to the file stem).
    pub name: String,
    /// Non-empty lines accepted so far.
    pub lines: u64,
    /// Raw event lines folded so far.
    pub events: u64,
    /// Scope labels seen so far, stream order.
    pub scopes: Vec<String>,
}

/// The merged cross-session fleet view served at `/v1/fleet`: every rank of
/// every scope of every session folded into one overlap aggregate and one
/// metrics registry (both mergeable by construction — counters add,
/// histograms share the fixed latency bucket layout).
#[derive(Debug, Clone, Serialize)]
pub struct FleetView {
    /// Session names, sorted.
    pub sessions: Vec<String>,
    /// Total scopes across all sessions.
    pub scopes: usize,
    /// Total rank folds across all sessions.
    pub ranks: usize,
    /// Total raw event lines folded.
    pub events: u64,
    /// All sessions' overlap measures merged.
    pub total: OverlapStats,
    /// All sessions' metrics registries merged.
    pub metrics: MetricsRegistry,
}

impl Service {
    /// Create an empty registry; every session folds with `opts`.
    pub fn new(opts: FoldOpts) -> Self {
        Service {
            opts,
            sessions: Mutex::new(BTreeMap::new()),
        }
    }

    /// Fetch-or-create the named session.
    pub fn session(&self, name: &str) -> Arc<Mutex<SessionFold>> {
        let mut g = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
        g.entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(SessionFold::new(self.opts.clone()))))
            .clone()
    }

    /// Fetch the named session if it exists.
    pub fn get(&self, name: &str) -> Option<Arc<Mutex<SessionFold>>> {
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Listing rows for every session, name order.
    pub fn list(&self) -> Vec<SessionInfo> {
        let sessions: Vec<(String, Arc<Mutex<SessionFold>>)> = {
            let g = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
            g.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        sessions
            .into_iter()
            .map(|(name, s)| {
                let s = s.lock().unwrap_or_else(|e| e.into_inner());
                SessionInfo {
                    name,
                    lines: s.lines(),
                    events: s.event_lines(),
                    scopes: s.scope_names(),
                }
            })
            .collect()
    }

    /// Build the merged fleet view. Snapshots each session in turn (name
    /// order), so it is consistent per session, not across sessions — the
    /// right trade for a live endpoint.
    pub fn fleet(&self) -> FleetView {
        let sessions: Vec<(String, Arc<Mutex<SessionFold>>)> = {
            let g = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
            g.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        let mut view = FleetView {
            sessions: Vec::new(),
            scopes: 0,
            ranks: 0,
            events: 0,
            total: OverlapStats::default(),
            metrics: MetricsRegistry::new(),
        };
        for (name, s) in sessions {
            view.sessions.push(name);
            let mut s = s.lock().unwrap_or_else(|e| e.into_inner());
            for scope in s.report() {
                view.scopes += 1;
                for rank in &scope.ranks {
                    view.ranks += 1;
                    view.events += rank.events_seen;
                    view.total.merge(&rank.total);
                    view.metrics.merge(&rank.metrics);
                }
            }
        }
        view
    }
}

impl Default for Service {
    fn default() -> Self {
        Service::new(FoldOpts::default())
    }
}
