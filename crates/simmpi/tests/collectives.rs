//! Collective correctness against sequential references.

use overlap_core::RecorderOpts;
use simmpi::{run_mpi, MpiConfig, ReduceOp};
use simnet::NetConfig;

fn run(nranks: usize, body: impl Fn(&mut simmpi::Mpi) + Send + Sync + 'static) {
    run_mpi(
        nranks,
        NetConfig::default(),
        MpiConfig::default(),
        RecorderOpts::default(),
        body,
    )
    .expect("run failed");
}

#[test]
fn barrier_synchronizes_ranks() {
    run(5, |mpi| {
        // Stagger arrival times; after the barrier, everyone must be past
        // the latest arriver.
        mpi.compute(1_000 * (mpi.rank() as u64 + 1) * 100);
        mpi.barrier();
        assert!(mpi.now() >= 500_000, "rank {} left early", mpi.rank());
    });
}

#[test]
fn bcast_from_every_root() {
    for nranks in [2, 3, 4, 7, 8] {
        run(nranks, move |mpi| {
            for root in 0..mpi.nranks() {
                let mut data = if mpi.rank() == root {
                    vec![root as u8; 1000]
                } else {
                    Vec::new()
                };
                mpi.bcast(root, &mut data);
                assert_eq!(data, vec![root as u8; 1000]);
            }
        });
    }
}

#[test]
fn reduce_sums_to_root() {
    for nranks in [2, 4, 6] {
        run(nranks, move |mpi| {
            let mine: Vec<f64> = (0..8).map(|i| (mpi.rank() * 10 + i) as f64).collect();
            let out = mpi.reduce(0, &mine, ReduceOp::Sum);
            if mpi.rank() == 0 {
                let n = mpi.nranks();
                let expect: Vec<f64> = (0..8)
                    .map(|i| (0..n).map(|r| (r * 10 + i) as f64).sum())
                    .collect();
                assert_eq!(out.unwrap(), expect);
            } else {
                assert!(out.is_none());
            }
        });
    }
}

#[test]
fn reduce_max_and_min() {
    run(4, |mpi| {
        let mine = vec![mpi.rank() as f64, -(mpi.rank() as f64)];
        let mx = mpi.reduce(0, &mine, ReduceOp::Max);
        let mn = mpi.reduce(0, &mine, ReduceOp::Min);
        if mpi.rank() == 0 {
            assert_eq!(mx.unwrap(), vec![3.0, 0.0]);
            assert_eq!(mn.unwrap(), vec![0.0, -3.0]);
        }
    });
}

#[test]
fn allreduce_agrees_everywhere() {
    for nranks in [2, 3, 5, 8] {
        run(nranks, move |mpi| {
            let mine = vec![1.0_f64, mpi.rank() as f64];
            let out = mpi.allreduce(&mine, ReduceOp::Sum);
            let n = mpi.nranks() as f64;
            let ranks_sum = (0..mpi.nranks()).map(|r| r as f64).sum::<f64>();
            assert_eq!(out, vec![n, ranks_sum]);
        });
    }
}

#[test]
fn alltoall_permutes_blocks() {
    for nranks in [2, 4, 5] {
        run(nranks, move |mpi| {
            let me = mpi.rank();
            let n = mpi.nranks();
            let blocks: Vec<Vec<u8>> = (0..n).map(|dst| vec![(me * n + dst) as u8; 64]).collect();
            let got = mpi.alltoall(&blocks);
            for (src, b) in got.iter().enumerate() {
                assert_eq!(b, &vec![(src * n + me) as u8; 64], "block from {src}");
            }
        });
    }
}

#[test]
fn allgather_collects_in_rank_order() {
    run(6, |mpi| {
        let mine = vec![mpi.rank() as u8; 32];
        let all = mpi.allgather(&mine);
        for (r, block) in all.iter().enumerate() {
            assert_eq!(block, &vec![r as u8; 32]);
        }
    });
}

#[test]
fn gather_and_scatter_roundtrip() {
    run(4, |mpi| {
        let me = mpi.rank();
        let gathered = mpi.gather(2, &[me as u8; 16]);
        if me == 2 {
            let g = gathered.unwrap();
            for (r, b) in g.iter().enumerate() {
                assert_eq!(b, &vec![r as u8; 16]);
            }
            let blocks: Vec<Vec<u8>> = (0..4).map(|r| vec![(r + 100) as u8; 8]).collect();
            let mine = mpi.scatter(2, Some(&blocks));
            assert_eq!(mine, vec![102u8; 8]);
        } else {
            assert!(gathered.is_none());
            let mine = mpi.scatter(2, None);
            assert_eq!(mine, vec![(me + 100) as u8; 8]);
        }
    });
}

#[test]
fn alltoall_long_blocks_use_rendezvous() {
    // FT-style: long alltoall payloads become rendezvous transfers.
    let out = run_mpi(
        4,
        NetConfig::default(),
        MpiConfig::mvapich2(),
        RecorderOpts::default(),
        |mpi| {
            let n = mpi.nranks();
            let blocks: Vec<Vec<u8>> = (0..n).map(|_| vec![7u8; 256 << 10]).collect();
            let got = mpi.alltoall(&blocks);
            assert!(got.iter().all(|b| b.iter().all(|&x| x == 7)));
        },
    )
    .unwrap();
    assert!(out
        .transfers
        .iter()
        .any(|t| t.kind == simnet::TransferKind::RdmaRead && t.bytes == 256 << 10));
}

#[test]
fn collectives_count_payload_transfers_but_barrier_does_not() {
    let barrier_only = run_mpi(
        4,
        NetConfig::default(),
        MpiConfig::default(),
        RecorderOpts::default(),
        |mpi| {
            for _ in 0..5 {
                mpi.barrier();
            }
        },
    )
    .unwrap();
    assert_eq!(barrier_only.transfers.len(), 0);
    assert_eq!(barrier_only.reports[0].total.transfers, 0);

    let bcast = run_mpi(
        4,
        NetConfig::default(),
        MpiConfig::default(),
        RecorderOpts::default(),
        |mpi| {
            let mut data = if mpi.rank() == 0 {
                vec![1u8; 2048]
            } else {
                Vec::new()
            };
            mpi.bcast(0, &mut data);
        },
    )
    .unwrap();
    // Binomial bcast over 4 ranks moves 3 payload messages.
    assert_eq!(bcast.transfers.len(), 3);
}
