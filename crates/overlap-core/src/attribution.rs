//! Wait-state attribution: explain *why* transfer time failed to overlap.
//!
//! The bound model (see `docs/BOUNDS.md`) quantifies *how much* of each
//! transfer provably did or did not overlap computation; this module
//! explains the remainder. The instrumented library classifies every
//! blocking interval it spends parked (and every registration stall) into a
//! [`WaitCause`] and records it as a [`WaitInterval`] on the captured
//! [`RankTrace`]. [`attribute`] then folds those intervals into one
//! [`CauseRecord`] per transfer whose cause breakdown **reconciles exactly**
//! with the bounds:
//!
//! ```text
//! Σ breakdown[cause] == xfer_time − max_overlap        (per transfer)
//! ```
//!
//! The right-hand side is the transfer's provably-non-overlapped time
//! (paper Sec. 2.3, measure 1). Reconciliation is by construction, not by
//! luck: the attributor consumes the in-call time inside the transfer's
//! observed window *latest-first* (the same in-library time the bound
//! formula `max = min(xfer_time, comp)` charges against the transfer),
//! labelling each consumed nanosecond with the wait state active at that
//! moment. In-call time not covered by any recorded wait is
//! [`WaitCause::LibraryOverhead`] (copies, posts, polls); non-overlap the
//! observed window cannot account for at all — the a-priori table says the
//! wire needed longer than the stamps span — is [`WaitCause::TableExcess`].
//!
//! Two views with different accounting:
//!
//! * **per-transfer records** ([`CauseRecord`]) may double-count wall time:
//!   two transfers in flight during the same blocked interval each charge
//!   it, exactly as the bound model charges `noncomp` against every active
//!   transfer. This is the reconciliation view.
//! * **collapsed stacks** ([`collapsed_stack`]) count each blocked
//!   nanosecond once, keyed by the enclosing library call and its cause —
//!   the per-rank critical-path view, in flamegraph-collapsed format.
//!
//! All output is a pure function of the captured trace: byte-identical
//! across runs and worker counts.

use std::collections::BTreeMap;

use crate::bins::SizeBins;
use crate::event::EventKind;
use crate::metrics::{Histogram, MetricsRegistry};
use crate::trace::{BoundRecord, RankTrace, TraceBundle};

/// Why a rank was not overlapping a transfer at some moment.
///
/// The first group is produced by the instrumented library at block time;
/// the last two only by [`attribute`], closing the reconciliation sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WaitCause {
    /// Receiver blocked before the matching send arrived (unmatched recv).
    LateSender,
    /// Sender blocked on the receiver: rendezvous data not yet pulled, or a
    /// synchronous send's receiver-matched ACK outstanding.
    LateReceiver,
    /// Rendezvous control handshake in flight (RTS posted, CTS not back).
    RendezvousHandshake,
    /// Eager send still draining through the local NIC (buffered copy on
    /// the wire, local completion not yet observed).
    EagerCopy,
    /// Matched data moving on the wire toward this rank (direct read or
    /// pipelined fragments in flight).
    WireDrain,
    /// Fabric contention: the portion of a matched transfer's flight time
    /// spent queued behind other traffic (shared topology links or the
    /// receiver's ingress engine) rather than propagating or serializing.
    /// Split out of [`WaitCause::WireDrain`] when the fabric reports a
    /// per-hop causal breakdown (see `docs/TOPOLOGY.md`).
    Contention,
    /// Blocked on the reliability layer: un-ACKed packets outstanding, or a
    /// transfer known to have been retransmitted after loss.
    AckRetransmit,
    /// Host memory registration (pinning) of a transfer buffer.
    Registration,
    /// Blocked with no open data transfer: barrier / collective control.
    Sync,
    /// Cycles an asynchronous progress fiber stole from application compute
    /// (the `async-rank` progress model's per-wake polling quantum). Never
    /// produced under polling progress.
    ProgressSteal,
    /// In-library time inside the transfer window not covered by a recorded
    /// wait: copies, posts, polls, protocol bookkeeping.
    LibraryOverhead,
    /// Non-overlap the observed window cannot host: the a-priori table time
    /// exceeds the begin→end span (table overestimate or clamped bounds).
    TableExcess,
}

impl WaitCause {
    /// Every cause, in canonical (serialization) order.
    pub const ALL: [WaitCause; 12] = [
        WaitCause::LateSender,
        WaitCause::LateReceiver,
        WaitCause::RendezvousHandshake,
        WaitCause::EagerCopy,
        WaitCause::WireDrain,
        WaitCause::Contention,
        WaitCause::AckRetransmit,
        WaitCause::Registration,
        WaitCause::Sync,
        WaitCause::ProgressSteal,
        WaitCause::LibraryOverhead,
        WaitCause::TableExcess,
    ];

    /// Inverse of [`WaitCause::label`] (used by the streaming JSONL reader).
    pub fn from_label(s: &str) -> Option<WaitCause> {
        WaitCause::ALL.iter().copied().find(|c| c.label() == s)
    }

    /// Stable lowercase label (export/metric naming).
    pub fn label(self) -> &'static str {
        match self {
            WaitCause::LateSender => "late_sender",
            WaitCause::LateReceiver => "late_receiver",
            WaitCause::RendezvousHandshake => "rendezvous_handshake",
            WaitCause::EagerCopy => "eager_copy",
            WaitCause::WireDrain => "wire_drain",
            WaitCause::Contention => "contention",
            WaitCause::AckRetransmit => "ack_retransmit",
            WaitCause::Registration => "registration",
            WaitCause::Sync => "sync",
            WaitCause::ProgressSteal => "progress_steal",
            WaitCause::LibraryOverhead => "library_overhead",
            WaitCause::TableExcess => "table_excess",
        }
    }

    /// Index of this cause in [`WaitCause::ALL`].
    fn idx(self) -> usize {
        WaitCause::ALL
            .iter()
            .position(|&c| c == self)
            .expect("cause listed in ALL")
    }
}

/// One classified blocking (or registration) interval, recorded by the
/// instrumented library while a time-resolved trace is being captured.
/// Rides on [`RankTrace::waits`]; serialized by the JSONL export as `"wait"`
/// lines (the Chrome-trace export does not render them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitInterval {
    /// Interval start, virtual ns.
    pub start: u64,
    /// Interval end, virtual ns (`end >= start`).
    pub end: u64,
    /// Why the rank was blocked.
    pub cause: WaitCause,
    /// The transfer the library believes it was blocked on, when a single
    /// one was identifiable.
    pub xfer: Option<u64>,
}

/// One cause's share of a transfer's non-overlapped time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CauseSlice {
    /// The cause.
    pub cause: WaitCause,
    /// Attributed nanoseconds.
    pub ns: u64,
}

/// Per-transfer attribution: where the non-overlapped part of the transfer's
/// wire time went. `breakdown` sums to `nonoverlap` exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CauseRecord {
    /// Transfer id (`None` for synthetic closes without one).
    pub id: Option<u64>,
    /// Payload bytes.
    pub bytes: u64,
    /// A-priori wire time, ns.
    pub xfer_time: u64,
    /// Upper overlap bound, ns.
    pub max_overlap: u64,
    /// Provably-non-overlapped time: `xfer_time − max_overlap`, ns.
    pub nonoverlap: u64,
    /// The transfer was fault-disturbed (flagged).
    pub flagged: bool,
    /// Cause breakdown in [`WaitCause::ALL`] order, zero slices omitted.
    pub breakdown: Vec<CauseSlice>,
}

/// One rank's attribution: per-transfer records plus cause totals.
#[derive(Debug, Clone, Default)]
pub struct RankAttribution {
    /// Rank the records describe.
    pub rank: usize,
    /// One record per closed transfer, in close order.
    pub records: Vec<CauseRecord>,
    /// Σ attributed ns by cause label, over all records.
    pub totals: BTreeMap<&'static str, u64>,
    /// Number of wait intervals the library recorded.
    pub wait_intervals: usize,
}

impl RankAttribution {
    /// Σ `nonoverlap` over all records — equals the rank report's
    /// `total.nonoverlapped_min()` when the trace covers the whole run.
    pub fn total_nonoverlap(&self) -> u64 {
        self.records.iter().map(|r| r.nonoverlap).sum()
    }
}

/// Top-level call spans `[start, end)` with the call name, replayed from the
/// raw event stream. An unbalanced trailing `CALL_ENTER` closes at the last
/// event's stamp. This is the span view [`attribute`] and [`collapsed_stack`]
/// consume; the streaming server maintains the same spans incrementally and
/// feeds them to [`attribute_parts`] / [`collapsed_weights`].
pub fn call_spans_of(events: &[crate::event::Event]) -> Vec<(u64, u64, &'static str)> {
    let mut spans = Vec::new();
    let mut depth = 0usize;
    let mut open: Option<(u64, &'static str)> = None;
    let mut last_t = 0u64;
    for e in events {
        last_t = last_t.max(e.t);
        match e.kind {
            EventKind::CallEnter { name } => {
                if depth == 0 {
                    open = Some((e.t, name));
                }
                depth += 1;
            }
            EventKind::CallExit if depth > 0 => {
                depth -= 1;
                if depth == 0 {
                    if let Some((s, name)) = open.take() {
                        spans.push((s, e.t, name));
                    }
                }
            }
            _ => {}
        }
    }
    if let Some((s, name)) = open {
        if last_t > s {
            spans.push((s, last_t, name));
        }
    }
    spans
}

/// Atomic in-call segments: each top-level call span cut at wait-interval
/// boundaries, labelled with the wait's cause and the transfer the wait was
/// pinned on (gaps between waits are [`WaitCause::LibraryOverhead`] with no
/// transfer). Returned in time order.
fn call_atoms(
    spans: &[(u64, u64, &'static str)],
    all_waits: &[WaitInterval],
) -> Vec<(u64, u64, WaitCause, Option<u64>)> {
    let mut waits: Vec<&WaitInterval> = all_waits.iter().filter(|w| w.end > w.start).collect();
    waits.sort_by_key(|w| (w.start, w.end));
    let mut atoms = Vec::new();
    let mut wi = 0usize;
    for &(s, e, _) in spans {
        let mut cursor = s;
        // Skip waits that ended before this span.
        while wi < waits.len() && waits[wi].end <= s {
            wi += 1;
        }
        let mut wj = wi;
        while wj < waits.len() && waits[wj].start < e {
            let w = waits[wj];
            let ws = w.start.max(s);
            let we = w.end.min(e);
            if ws > cursor {
                atoms.push((cursor, ws, WaitCause::LibraryOverhead, None));
            }
            if we > ws {
                atoms.push((ws, we, w.cause, w.xfer));
            }
            cursor = cursor.max(we);
            wj += 1;
        }
        if e > cursor {
            atoms.push((cursor, e, WaitCause::LibraryOverhead, None));
        }
    }
    atoms
}

/// Fold a rank's wait intervals and bound records into per-transfer
/// [`CauseRecord`]s. See the module docs for the algorithm and the exact
/// reconciliation invariant.
pub fn attribute(trace: &RankTrace) -> RankAttribution {
    attribute_parts(
        trace.rank,
        &call_spans_of(&trace.events),
        &trace.waits,
        &trace.bounds,
    )
}

/// [`attribute`] on pre-extracted parts: the rank's top-level call spans
/// (see [`call_spans_of`]), its recorded wait intervals, and its bound
/// records. The streaming server calls this with incrementally-maintained
/// parts; byte-identical output to the batch path is by construction — both
/// run this exact fold.
pub fn attribute_parts(
    rank: usize,
    spans: &[(u64, u64, &'static str)],
    waits: &[WaitInterval],
    bounds: &[BoundRecord],
) -> RankAttribution {
    let atoms = call_atoms(spans, waits);
    let mut records = Vec::with_capacity(bounds.len());
    let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
    for b in bounds {
        let nonoverlap = b.xfer_time.saturating_sub(b.max);
        let mut by_cause = [0u64; WaitCause::ALL.len()];
        if nonoverlap > 0 {
            let win_s = b.begin_t.unwrap_or(b.end_t);
            let win_e = b.end_t;
            let mut remaining = nonoverlap;
            // Waits pinned on *this* transfer are its proximate cause, so
            // they are charged first; any rest is consumed latest-first:
            // the bound formula lets computation hide the transfer from its
            // start, so the *unhidden* tail is what the in-call time at the
            // end of the window failed to cover. The second pass skips the
            // pinned atoms — after pass one they are either fully consumed
            // or `remaining` is already zero.
            for pinned in [true, false] {
                for &(s, e, cause, xfer) in atoms.iter().rev() {
                    if remaining == 0 {
                        break;
                    }
                    if (xfer.is_some() && xfer == b.id) != pinned {
                        continue;
                    }
                    let cs = s.max(win_s);
                    let ce = e.min(win_e);
                    if ce <= cs {
                        continue;
                    }
                    let take = (ce - cs).min(remaining);
                    by_cause[cause.idx()] += take;
                    remaining -= take;
                }
            }
            // The observed window cannot host the rest: table overestimate
            // (clamped min) or a window opened by an end-only stamp.
            by_cause[WaitCause::TableExcess.idx()] += remaining;
        }
        let breakdown: Vec<CauseSlice> = WaitCause::ALL
            .iter()
            .zip(by_cause)
            .filter(|&(_, ns)| ns > 0)
            .map(|(&cause, ns)| CauseSlice { cause, ns })
            .collect();
        for s in &breakdown {
            *totals.entry(s.cause.label()).or_insert(0) += s.ns;
        }
        records.push(CauseRecord {
            id: b.id,
            bytes: b.bytes,
            xfer_time: b.xfer_time,
            max_overlap: b.max,
            nonoverlap,
            flagged: b.flagged,
            breakdown,
        });
    }
    RankAttribution {
        rank,
        records,
        totals,
        wait_intervals: waits.len(),
    }
}

/// Fold a rank's attribution into metric counters and histograms, by cause ×
/// message-size bin:
///
/// * counter `attr_ns/<cause>/<bin>` — Σ attributed ns,
/// * counter `attr_xfers/<cause>` — transfers with a nonzero slice,
/// * histogram `attr_ns_hist/<cause>` — per-transfer slice sizes on the
///   default latency ladder.
pub fn fold_metrics(attr: &RankAttribution, bins: &SizeBins, reg: &mut MetricsRegistry) {
    for r in &attr.records {
        let bin = bins.label(bins.index(r.bytes));
        for s in &r.breakdown {
            reg.inc(&format!("attr_ns/{}/{}", s.cause.label(), bin), s.ns);
            reg.inc(&format!("attr_xfers/{}", s.cause.label()), 1);
            reg.observe(
                &format!("attr_ns_hist/{}", s.cause.label()),
                s.ns,
                Histogram::latency_default,
            );
        }
    }
}

/// Render one bundle's dominant wait chains in flamegraph-collapsed format:
/// one `frame;frame;... weight` line per chain, weight in nanoseconds,
/// lines sorted lexically. Frames are `scope;rank N;<call>;<cause>` — each
/// blocked nanosecond counted once (the critical-path view; see the module
/// docs for how this differs from the per-transfer records).
pub fn collapsed_stack(bundle: &TraceBundle) -> String {
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    for tr in &bundle.ranks {
        collapsed_weights(
            &bundle.scope,
            tr.rank,
            &call_spans_of(&tr.events),
            &tr.waits,
            &mut weights,
        );
    }
    render_collapsed(&weights)
}

/// Accumulate one rank's collapsed-stack weights (see [`collapsed_stack`])
/// into `weights`, keyed `scope;rank N;<call>;<cause>`. The streaming server
/// calls this per rank with incrementally-maintained spans/waits and renders
/// the scope's map with [`render_collapsed`].
pub fn collapsed_weights(
    scope: &str,
    rank: usize,
    spans: &[(u64, u64, &'static str)],
    waits: &[WaitInterval],
    weights: &mut BTreeMap<String, u64>,
) {
    for w in waits {
        if w.end <= w.start {
            continue;
        }
        let call = spans
            .iter()
            .find(|&&(s, e, _)| s <= w.start && w.start < e)
            .map(|&(_, _, name)| name)
            .unwrap_or("(outside-call)");
        let key = format!("{};rank {};{};{}", scope, rank, call, w.cause.label());
        *weights.entry(key).or_insert(0) += w.end - w.start;
    }
}

/// Render accumulated collapsed-stack weights as `key weight\n` lines in map
/// (lexical) order — the flamegraph-collapsed text format.
pub fn render_collapsed(weights: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in weights {
        out.push_str(k);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::XferCase;
    use crate::event::Event;
    use crate::trace::BoundRecord;

    fn ev(t: u64, kind: EventKind) -> Event {
        Event::new(t, kind)
    }

    fn record(
        id: u64,
        begin_t: Option<u64>,
        end_t: u64,
        xfer_time: u64,
        max: u64,
        case: XferCase,
    ) -> BoundRecord {
        BoundRecord {
            id: Some(id),
            bytes: 1024,
            begin_t,
            end_t,
            xfer_time,
            min: 0,
            max,
            case,
            flagged: false,
            clamped: false,
        }
    }

    /// isend at 0..10, compute 10..1000, wait 1000..1600 blocked 1100..1600
    /// on a late receiver. xfer_time 800, comp 990 ⇒ max = 800, nonoverlap 0.
    #[test]
    fn fully_overlappable_transfer_attributes_nothing() {
        let trace = RankTrace {
            rank: 0,
            events: vec![
                ev(0, EventKind::CallEnter { name: "MPI_Isend" }),
                ev(0, EventKind::XferBegin { id: 1, bytes: 1024 }),
                ev(10, EventKind::CallExit),
                ev(1000, EventKind::CallEnter { name: "MPI_Wait" }),
                ev(1600, EventKind::XferEnd { id: 1, bytes: 1024 }),
                ev(1600, EventKind::CallExit),
            ],
            bounds: vec![record(1, Some(0), 1600, 800, 800, XferCase::SplitCalls)],
            waits: vec![WaitInterval {
                start: 1100,
                end: 1600,
                cause: WaitCause::LateReceiver,
                xfer: Some(1),
            }],
        };
        let attr = attribute(&trace);
        assert_eq!(attr.records.len(), 1);
        assert_eq!(attr.records[0].nonoverlap, 0);
        assert!(attr.records[0].breakdown.is_empty());
        assert!(attr.totals.is_empty());
    }

    /// Short compute window: comp = 100, xfer_time = 800 ⇒ max = 100,
    /// nonoverlap = 700. The wait (600 ns of late-sender blocking) plus
    /// library overhead must cover it exactly.
    #[test]
    fn split_calls_reconciles_waits_plus_overhead() {
        let trace = RankTrace {
            rank: 0,
            events: vec![
                ev(0, EventKind::CallEnter { name: "MPI_Irecv" }),
                ev(0, EventKind::XferBegin { id: 7, bytes: 1024 }),
                ev(10, EventKind::CallExit),
                ev(110, EventKind::CallEnter { name: "MPI_Wait" }),
                ev(810, EventKind::XferEnd { id: 7, bytes: 1024 }),
                ev(810, EventKind::CallExit),
            ],
            bounds: vec![record(7, Some(0), 810, 800, 100, XferCase::SplitCalls)],
            waits: vec![WaitInterval {
                start: 150,
                end: 750,
                cause: WaitCause::LateSender,
                xfer: Some(7),
            }],
        };
        let attr = attribute(&trace);
        let r = &attr.records[0];
        assert_eq!(r.nonoverlap, 700);
        let sum: u64 = r.breakdown.iter().map(|s| s.ns).sum();
        assert_eq!(sum, r.nonoverlap, "breakdown must reconcile exactly");
        let by = |c: WaitCause| {
            r.breakdown
                .iter()
                .find(|s| s.cause == c)
                .map(|s| s.ns)
                .unwrap_or(0)
        };
        // Latest-first consumption: 810..750 overhead (60), 750..150 wait
        // (600), then 40 more overhead from 150..110.
        assert_eq!(by(WaitCause::LateSender), 600);
        assert_eq!(by(WaitCause::LibraryOverhead), 100);
        assert_eq!(by(WaitCause::TableExcess), 0);
    }

    /// SameCall (blocking send): max = 0, everything attributes; a table
    /// time beyond the window spills into TableExcess.
    #[test]
    fn same_call_overflow_goes_to_table_excess() {
        let trace = RankTrace {
            rank: 1,
            events: vec![
                ev(0, EventKind::CallEnter { name: "MPI_Send" }),
                ev(5, EventKind::XferBegin { id: 3, bytes: 1024 }),
                ev(105, EventKind::XferEnd { id: 3, bytes: 1024 }),
                ev(110, EventKind::CallExit),
            ],
            bounds: vec![record(3, Some(5), 105, 150, 0, XferCase::SameCall)],
            waits: vec![WaitInterval {
                start: 20,
                end: 90,
                cause: WaitCause::EagerCopy,
                xfer: Some(3),
            }],
        };
        let attr = attribute(&trace);
        let r = &attr.records[0];
        assert_eq!(r.nonoverlap, 150);
        let sum: u64 = r.breakdown.iter().map(|s| s.ns).sum();
        assert_eq!(sum, 150);
        let excess = r
            .breakdown
            .iter()
            .find(|s| s.cause == WaitCause::TableExcess)
            .unwrap()
            .ns;
        // Window holds 100 ns of in-call time; 50 ns cannot be hosted.
        assert_eq!(excess, 50);
        assert_eq!(attr.totals["eager_copy"], 70);
    }

    /// Single-stamp transfers have max = xfer_time ⇒ zero nonoverlap.
    #[test]
    fn single_stamp_attributes_nothing() {
        let trace = RankTrace {
            rank: 0,
            events: vec![
                ev(0, EventKind::CallEnter { name: "MPI_Recv" }),
                ev(400, EventKind::XferEnd { id: 9, bytes: 64 }),
                ev(400, EventKind::CallExit),
            ],
            bounds: vec![record(9, None, 400, 300, 300, XferCase::SingleStamp)],
            waits: vec![WaitInterval {
                start: 10,
                end: 390,
                cause: WaitCause::LateSender,
                xfer: None,
            }],
        };
        let attr = attribute(&trace);
        assert_eq!(attr.records[0].nonoverlap, 0);
        assert!(attr.records[0].breakdown.is_empty());
    }

    #[test]
    fn collapsed_stack_counts_each_blocked_ns_once_sorted() {
        let bundle = TraceBundle {
            scope: "t/x".into(),
            ranks: vec![RankTrace {
                rank: 0,
                events: vec![
                    ev(0, EventKind::CallEnter { name: "MPI_Wait" }),
                    ev(100, EventKind::CallExit),
                    ev(200, EventKind::CallEnter { name: "MPI_Recv" }),
                    ev(300, EventKind::CallExit),
                ],
                bounds: vec![],
                waits: vec![
                    WaitInterval {
                        start: 10,
                        end: 60,
                        cause: WaitCause::LateReceiver,
                        xfer: None,
                    },
                    WaitInterval {
                        start: 210,
                        end: 290,
                        cause: WaitCause::LateSender,
                        xfer: None,
                    },
                ],
            }],
            extras: vec![],
        };
        let s = collapsed_stack(&bundle);
        assert_eq!(
            s,
            "t/x;rank 0;MPI_Recv;late_sender 80\nt/x;rank 0;MPI_Wait;late_receiver 50\n"
        );
    }

    #[test]
    fn fold_metrics_by_cause_and_bin() {
        let attr = RankAttribution {
            rank: 0,
            records: vec![CauseRecord {
                id: Some(1),
                bytes: 2048,
                xfer_time: 500,
                max_overlap: 100,
                nonoverlap: 400,
                flagged: false,
                breakdown: vec![
                    CauseSlice {
                        cause: WaitCause::LateSender,
                        ns: 300,
                    },
                    CauseSlice {
                        cause: WaitCause::LibraryOverhead,
                        ns: 100,
                    },
                ],
            }],
            totals: BTreeMap::new(),
            wait_intervals: 1,
        };
        let mut reg = MetricsRegistry::new();
        fold_metrics(&attr, &SizeBins::default(), &mut reg);
        assert_eq!(reg.counter("attr_ns/late_sender/1K-8K"), 300);
        assert_eq!(reg.counter("attr_ns/library_overhead/1K-8K"), 100);
        assert_eq!(reg.counter("attr_xfers/late_sender"), 1);
        assert_eq!(
            reg.histogram("attr_ns_hist/late_sender").unwrap().count(),
            1
        );
    }
}
