//! The data processing module (paper Figure 2).
//!
//! Consumes time-ordered instrumentation events and maintains *running*
//! overlap aggregates plus a small table of currently active transfers — no
//! trace is ever stored. The sweep works as follows: between consecutive
//! events, the process was either in user computation (call depth 0) or
//! inside the library (depth > 0); that interval is credited to the global
//! compute/call aggregates, to the innermost monitored section, and to the
//! `computation_time` / `noncomputation_time` accumulators of every transfer
//! whose `XFER_BEGIN` has been seen but whose `XFER_END` has not.

use std::collections::{BTreeMap, HashMap};

use crate::bins::SizeBins;
use crate::bounds::OverlapBounds;
use crate::event::{Event, EventKind};
use crate::metrics::{Histogram, MetricsRegistry};
use crate::report::{Anomalies, CallStats, OverlapReport, OverlapStats, SectionReport};
use crate::trace::{BoundRecord, RankTrace};
use crate::xfer_table::XferTimeTable;

#[derive(Debug)]
struct ActiveXfer {
    bytes: u64,
    /// Top-level call sequence number at `XFER_BEGIN`, if it was stamped
    /// inside a call (used for case-1 detection).
    begin_call: Option<u64>,
    /// Timestamp of the `XFER_BEGIN` stamp (for clamping bounds to the
    /// observed window when the a-priori table diverges from reality).
    begin_t: u64,
    computation_time: u64,
    noncomputation_time: u64,
    /// The library reported this transfer fault-disturbed (`XFER_FLAG`).
    flagged: bool,
    section: Option<&'static str>,
}

#[derive(Debug, Default)]
struct SectionAccum {
    total: OverlapStats,
    by_bin: Vec<OverlapStats>,
    compute_time: u64,
    call_time: u64,
}

/// Online overlap-bound processor.
pub struct Processor {
    table: XferTimeTable,
    bins: SizeBins,
    depth: u32,
    call_seq: u64,
    cursor: u64,
    first_event: Option<u64>,
    active: HashMap<u64, ActiveXfer>,
    user_compute: u64,
    comm_call: u64,
    total: OverlapStats,
    by_bin: Vec<OverlapStats>,
    section_stack: Vec<&'static str>,
    sections: BTreeMap<&'static str, SectionAccum>,
    call_stack: Vec<(&'static str, u64)>,
    calls: BTreeMap<&'static str, CallStats>,
    anomalies: Anomalies,
    metrics: MetricsRegistry,
    /// Built-in hot-path metrics as plain fields; folded into the
    /// string-keyed `metrics` registry once, at finish. Keeping them out of
    /// the `BTreeMap` means closing a transfer does no key allocation and no
    /// map lookups.
    builtin: BuiltinMetrics,
    /// Precomputed per-bin histogram names (`overlap_min_ns/<label>`,
    /// `overlap_max_ns/<label>`), so the fold path never formats strings.
    bin_metric_names: Vec<(String, String)>,
    /// Time-resolved capture; `None` keeps the paper's no-tracing default.
    trace: Option<RankTrace>,
}

/// The registry entries the processor maintains itself, held as direct
/// fields while events stream through. [`Processor::finish_traced`] folds
/// them into the [`MetricsRegistry`] under the same names (and only when
/// they fired), so the serialized report is identical to one produced by
/// per-event registry calls.
struct BuiltinMetrics {
    xfers_closed: u64,
    xfers_flagged: u64,
    xfers_clamped: u64,
    calls_completed: u64,
    xfer_apriori_ns: Histogram,
    xfer_wall_ns: Histogram,
    call_latency_ns: Histogram,
    /// `(overlap_min_ns, overlap_max_ns)` histograms per size bin.
    by_bin: Vec<(Histogram, Histogram)>,
}

impl BuiltinMetrics {
    fn new(nbins: usize) -> Self {
        BuiltinMetrics {
            xfers_closed: 0,
            xfers_flagged: 0,
            xfers_clamped: 0,
            calls_completed: 0,
            xfer_apriori_ns: Histogram::latency_default(),
            xfer_wall_ns: Histogram::latency_default(),
            call_latency_ns: Histogram::latency_default(),
            by_bin: (0..nbins)
                .map(|_| (Histogram::latency_default(), Histogram::latency_default()))
                .collect(),
        }
    }
}

impl Processor {
    /// Create a processor using the a-priori transfer-time `table` and
    /// message-size `bins`.
    pub fn new(table: XferTimeTable, bins: SizeBins) -> Self {
        let nbins = bins.count();
        let bin_metric_names = bins
            .labels()
            .into_iter()
            .map(|l| (format!("overlap_min_ns/{l}"), format!("overlap_max_ns/{l}")))
            .collect();
        Processor {
            table,
            bins,
            depth: 0,
            call_seq: 0,
            cursor: 0,
            first_event: None,
            active: HashMap::new(),
            user_compute: 0,
            comm_call: 0,
            total: OverlapStats::default(),
            by_bin: vec![OverlapStats::default(); nbins],
            section_stack: Vec::new(),
            sections: BTreeMap::new(),
            call_stack: Vec::new(),
            calls: BTreeMap::new(),
            anomalies: Anomalies::default(),
            metrics: MetricsRegistry::new(),
            builtin: BuiltinMetrics::new(nbins),
            bin_metric_names,
            trace: None,
        }
    }

    /// Capture a time-resolved [`RankTrace`] alongside the aggregates: raw
    /// events on every fold, one [`BoundRecord`] per closed transfer.
    /// Retrieve it via [`Processor::finish_traced`].
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(RankTrace::default());
        }
    }

    /// Number of transfers currently active (begun, not ended).
    pub fn active_transfers(&self) -> usize {
        self.active.len()
    }

    fn advance_to(&mut self, t: u64) {
        if self.first_event.is_none() {
            self.first_event = Some(t);
            self.cursor = t;
            return;
        }
        if t < self.cursor {
            // Clock skew: the stamp runs behind the processing cursor. Real
            // hardware clocks (and multi-source event streams) can do this;
            // count it and drop the negative interval instead of panicking.
            self.anomalies.clock_skew += 1;
            return;
        }
        let dt = t.saturating_sub(self.cursor);
        if dt == 0 {
            return;
        }
        let computing = self.depth == 0;
        if computing {
            self.user_compute += dt;
        } else {
            self.comm_call += dt;
        }
        for ax in self.active.values_mut() {
            if computing {
                ax.computation_time += dt;
            } else {
                ax.noncomputation_time += dt;
            }
        }
        if let Some(&name) = self.section_stack.last() {
            let acc = self.sections.entry(name).or_default();
            if computing {
                acc.compute_time += dt;
            } else {
                acc.call_time += dt;
            }
        }
        self.cursor = t;
    }

    #[allow(clippy::too_many_arguments)]
    fn close_transfer(
        &mut self,
        id: u64,
        bytes: u64,
        begin_t: Option<u64>,
        end_t: u64,
        bounds: OverlapBounds,
        section: Option<&'static str>,
        flagged: bool,
        clamped: bool,
    ) {
        let xfer_time = self.table.lookup(bytes);
        let note = |s: &mut OverlapStats| {
            s.add_bounds(bytes, xfer_time, bounds);
            if flagged {
                s.note_flagged();
            }
            if clamped {
                s.note_clamped();
            }
        };
        note(&mut self.total);
        let bin = self.bins.index(bytes);
        note(&mut self.by_bin[bin]);
        if let Some(name) = section {
            let nbins = self.bins.count();
            let acc = self.sections.entry(name).or_default();
            if acc.by_bin.is_empty() {
                acc.by_bin = vec![OverlapStats::default(); nbins];
            }
            note(&mut acc.total);
            note(&mut acc.by_bin[bin]);
        }
        self.builtin.xfers_closed += 1;
        if flagged {
            self.builtin.xfers_flagged += 1;
        }
        if clamped {
            self.builtin.xfers_clamped += 1;
        }
        self.builtin.xfer_apriori_ns.observe(xfer_time);
        if let Some(t0) = begin_t {
            self.builtin.xfer_wall_ns.observe(end_t.saturating_sub(t0));
        }
        let (min_hist, max_hist) = &mut self.builtin.by_bin[bin];
        min_hist.observe(bounds.min);
        max_hist.observe(bounds.max);
        if let Some(tr) = &mut self.trace {
            tr.bounds.push(BoundRecord {
                id: Some(id),
                bytes,
                begin_t,
                end_t,
                xfer_time,
                min: bounds.min,
                max: bounds.max,
                case: bounds.case,
                flagged,
                clamped,
            });
        }
    }

    /// Consume one event. Events must arrive in time order.
    pub fn process(&mut self, e: Event) {
        if let Some(tr) = &mut self.trace {
            tr.events.push(e);
        }
        self.advance_to(e.t);
        match e.kind {
            EventKind::CallEnter { name } => {
                if self.depth == 0 {
                    self.call_seq += 1;
                }
                self.depth += 1;
                self.call_stack.push((name, e.t));
            }
            EventKind::CallExit => {
                if self.depth == 0 {
                    self.anomalies.unbalanced_calls += 1;
                } else {
                    self.depth -= 1;
                    if let Some((name, t0)) = self.call_stack.pop() {
                        let c = self.calls.entry(name).or_default();
                        c.count += 1;
                        let dt = e.t.saturating_sub(t0);
                        c.total_time += dt;
                        self.builtin.calls_completed += 1;
                        self.builtin.call_latency_ns.observe(dt);
                    }
                }
            }
            EventKind::XferBegin { id, bytes } => {
                let begin_call = (self.depth > 0).then_some(self.call_seq);
                let section = self.section_stack.last().copied();
                let prev = self.active.insert(
                    id,
                    ActiveXfer {
                        bytes,
                        begin_call,
                        begin_t: e.t,
                        computation_time: 0,
                        noncomputation_time: 0,
                        flagged: false,
                        section,
                    },
                );
                if let Some(prev) = prev {
                    // Duplicate XFER_BEGIN (id reuse without an end stamp):
                    // close the orphaned earlier transfer as single-stamp so
                    // its bounds stay sound, and count the irregularity.
                    self.anomalies.duplicate_begin += 1;
                    let bounds = OverlapBounds::single_stamp(self.table.lookup(prev.bytes));
                    self.close_transfer(
                        id,
                        prev.bytes,
                        Some(prev.begin_t),
                        e.t,
                        bounds,
                        prev.section,
                        prev.flagged,
                        false,
                    );
                }
            }
            EventKind::XferEnd { id, bytes } => {
                if let Some(ax) = self.active.remove(&id) {
                    let same_call = self.depth > 0 && ax.begin_call == Some(self.call_seq);
                    let xfer_time = self.table.lookup(ax.bytes);
                    let mut bounds = if same_call {
                        OverlapBounds::same_call()
                    } else {
                        OverlapBounds::split_calls(
                            xfer_time,
                            ax.computation_time,
                            ax.noncomputation_time,
                        )
                    };
                    // Degrade gracefully when the observed window contradicts
                    // the a-priori model instead of reporting unsound overlap.
                    let wall = e.t.saturating_sub(ax.begin_t);
                    let mut clamped = false;
                    if bounds.min > wall {
                        // The table's xfer_time exceeds the whole observed
                        // begin→end window (possible under clock skew or a
                        // stale table): no more than `wall` can have been
                        // overlapped.
                        bounds.min = wall.min(bounds.max);
                        clamped = true;
                    }
                    let mut flagged = ax.flagged;
                    if flagged {
                        // The library told us the wire had to retransmit: the
                        // a-priori time no longer describes the transfer, so
                        // no overlap can be *guaranteed*.
                        bounds.min = 0;
                    } else if !same_call && ax.noncomputation_time > 2 * xfer_time.max(1) {
                        // Heuristic: the process sat inside the library for
                        // far longer than the wire needs — retransmission (or
                        // severe contention) suspected even without an
                        // explicit flag. Counted for the confidence measure;
                        // the bounds themselves are already sound.
                        flagged = true;
                    }
                    self.close_transfer(
                        id,
                        ax.bytes,
                        Some(ax.begin_t),
                        e.t,
                        bounds,
                        ax.section,
                        flagged,
                        clamped,
                    );
                } else {
                    // End-only stamp (case 3): e.g. the receive side of an
                    // eager transfer, whose initiation this process never saw.
                    let bounds = OverlapBounds::single_stamp(self.table.lookup(bytes));
                    let section = self.section_stack.last().copied();
                    self.close_transfer(id, bytes, None, e.t, bounds, section, false, false);
                }
            }
            EventKind::XferFlag { id } => {
                if let Some(ax) = self.active.get_mut(&id) {
                    ax.flagged = true;
                } else {
                    // The transfer already closed (or never began) before the
                    // library learned of the disturbance.
                    self.anomalies.orphan_flags += 1;
                }
            }
            EventKind::SectionBegin { name } => {
                self.section_stack.push(name);
                self.sections.entry(name).or_default();
            }
            EventKind::SectionEnd => {
                if self.section_stack.pop().is_none() {
                    self.anomalies.unbalanced_sections += 1;
                }
            }
        }
    }

    /// Finish processing at `end_time`: sweeps the final interval, closes
    /// still-active transfers as single-stamp (case 3), and produces the
    /// per-process report.
    pub fn finish(
        self,
        end_time: u64,
        rank: usize,
        events_recorded: u64,
        queue_flushes: u64,
    ) -> OverlapReport {
        self.finish_traced(end_time, rank, events_recorded, queue_flushes)
            .0
    }

    /// [`Processor::finish`], additionally returning the captured
    /// [`RankTrace`] when [`Processor::enable_trace`] was called (`None`
    /// otherwise). The trace includes the bound records of transfers closed
    /// by the finish sweep itself.
    pub fn finish_traced(
        mut self,
        end_time: u64,
        rank: usize,
        events_recorded: u64,
        queue_flushes: u64,
    ) -> (OverlapReport, Option<RankTrace>) {
        self.advance_to(end_time);
        let mut leftovers: Vec<(u64, u64, u64, Option<&'static str>, bool)> = self
            .active
            .drain()
            .map(|(id, ax)| (id, ax.bytes, ax.begin_t, ax.section, ax.flagged))
            .collect();
        // Drain order of the HashMap is arbitrary; sort so reports, metrics
        // and traces are deterministic.
        leftovers.sort_unstable_by_key(|&(id, ..)| id);
        for (id, bytes, begin_t, section, flagged) in leftovers {
            let bounds = OverlapBounds::single_stamp(self.table.lookup(bytes));
            self.close_transfer(
                id,
                bytes,
                Some(begin_t),
                end_time,
                bounds,
                section,
                flagged,
                false,
            );
        }
        let elapsed = end_time.saturating_sub(self.first_event.unwrap_or(end_time));
        // Fold the built-in hot-path metrics into the registry, creating
        // entries only for names that actually fired — exactly the set the
        // old per-event registry calls would have created.
        let b = self.builtin;
        for (name, v) in [
            ("xfers_closed", b.xfers_closed),
            ("xfers_flagged", b.xfers_flagged),
            ("xfers_clamped", b.xfers_clamped),
            ("calls_completed", b.calls_completed),
        ] {
            if v > 0 {
                self.metrics.inc(name, v);
            }
        }
        let named = [
            ("xfer_apriori_ns", b.xfer_apriori_ns),
            ("xfer_wall_ns", b.xfer_wall_ns),
            ("call_latency_ns", b.call_latency_ns),
        ];
        let bins = b.by_bin.into_iter().zip(&self.bin_metric_names).flat_map(
            |((min_h, max_h), (min_name, max_name))| {
                [(min_name.as_str(), min_h), (max_name.as_str(), max_h)]
            },
        );
        for (name, h) in named.into_iter().chain(bins) {
            if h.count() > 0 {
                self.metrics.histograms.insert(name.to_string(), h);
            }
        }
        let trace = self.trace.take().map(|mut tr| {
            tr.rank = rank;
            tr
        });
        let report = OverlapReport {
            rank,
            elapsed,
            user_compute_time: self.user_compute,
            comm_call_time: self.comm_call,
            total: self.total,
            bin_labels: self.bins.labels(),
            by_bin: self.by_bin,
            sections: self
                .sections
                .into_iter()
                .map(|(name, acc)| {
                    (
                        name.to_string(),
                        SectionReport {
                            total: acc.total,
                            by_bin: acc.by_bin,
                            compute_time: acc.compute_time,
                            call_time: acc.call_time,
                        },
                    )
                })
                .collect(),
            calls: self
                .calls
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            events_recorded,
            queue_flushes,
            anomalies: self.anomalies,
            metrics: self.metrics,
        };
        (report, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_table(ns: u64) -> XferTimeTable {
        XferTimeTable::from_points(vec![(1, ns)])
    }

    fn run(events: Vec<Event>, end: u64, table: XferTimeTable) -> OverlapReport {
        let mut p = Processor::new(table, SizeBins::log_default());
        for e in events {
            p.process(e);
        }
        p.finish(end, 0, 0, 0)
    }

    fn ev(t: u64, kind: EventKind) -> Event {
        Event::new(t, kind)
    }

    #[test]
    fn case1_same_call_zero_bounds() {
        // A blocking call containing both stamps.
        let r = run(
            vec![
                ev(0, EventKind::CallEnter { name: "Send" }),
                ev(10, EventKind::XferBegin { id: 1, bytes: 100 }),
                ev(500, EventKind::XferEnd { id: 1, bytes: 100 }),
                ev(510, EventKind::CallExit),
            ],
            510,
            flat_table(400),
        );
        assert_eq!(r.total.transfers, 1);
        assert_eq!(r.total.min_overlap, 0);
        assert_eq!(r.total.max_overlap, 0);
        assert_eq!(r.total.case_same_call, 1);
        assert_eq!(r.comm_call_time, 510);
        assert_eq!(r.user_compute_time, 0);
    }

    #[test]
    fn case2_ample_computation_full_overlap_possible() {
        // Isend ... compute 1000 ... Wait; xfer_time 400, library time 20.
        let r = run(
            vec![
                ev(0, EventKind::CallEnter { name: "Isend" }),
                ev(5, EventKind::XferBegin { id: 1, bytes: 100 }),
                ev(10, EventKind::CallExit),
                ev(1010, EventKind::CallEnter { name: "Wait" }),
                ev(1025, EventKind::XferEnd { id: 1, bytes: 100 }),
                ev(1030, EventKind::CallExit),
            ],
            1030,
            flat_table(400),
        );
        // computation between stamps: 1000; noncomputation: 5 + 15 = 20.
        assert_eq!(r.total.max_overlap, 400);
        assert_eq!(r.total.min_overlap, 380);
        assert_eq!(r.total.case_split_calls, 1);
        assert_eq!(r.user_compute_time, 1000);
        assert_eq!(r.comm_call_time, 30);
    }

    #[test]
    fn case2_scarce_computation_caps_max() {
        // Only 50 ns of computation between stamps; xfer_time 400.
        let r = run(
            vec![
                ev(0, EventKind::CallEnter { name: "Isend" }),
                ev(0, EventKind::XferBegin { id: 1, bytes: 100 }),
                ev(0, EventKind::CallExit),
                ev(50, EventKind::CallEnter { name: "Wait" }),
                ev(450, EventKind::XferEnd { id: 1, bytes: 100 }),
                ev(450, EventKind::CallExit),
            ],
            450,
            flat_table(400),
        );
        assert_eq!(r.total.max_overlap, 50);
        // noncomputation = 400 (the wait) => min = max(0, 400-400) = 0.
        assert_eq!(r.total.min_overlap, 0);
    }

    #[test]
    fn case3_end_only_single_stamp() {
        // Receive side of an eager message: only XFER_END observed.
        let r = run(
            vec![
                ev(0, EventKind::CallEnter { name: "Recv" }),
                ev(100, EventKind::XferEnd { id: 9, bytes: 2048 }),
                ev(110, EventKind::CallExit),
            ],
            110,
            flat_table(400),
        );
        assert_eq!(r.total.case_single_stamp, 1);
        assert_eq!(r.total.min_overlap, 0);
        assert_eq!(r.total.max_overlap, 400);
    }

    #[test]
    fn case3_begin_without_end_at_finish() {
        let r = run(
            vec![
                ev(0, EventKind::CallEnter { name: "Isend" }),
                ev(0, EventKind::XferBegin { id: 1, bytes: 100 }),
                ev(10, EventKind::CallExit),
            ],
            1000,
            flat_table(400),
        );
        assert_eq!(r.total.case_single_stamp, 1);
        assert_eq!(r.total.max_overlap, 400);
        assert_eq!(r.total.min_overlap, 0);
    }

    #[test]
    fn reentering_same_call_name_is_still_split_calls() {
        // Begin in one call, end in a *different* call with zero computation
        // between: case 2 with comp=0 → both bounds characterise correctly.
        let r = run(
            vec![
                ev(0, EventKind::CallEnter { name: "Isend" }),
                ev(0, EventKind::XferBegin { id: 1, bytes: 100 }),
                ev(10, EventKind::CallExit),
                ev(10, EventKind::CallEnter { name: "Wait" }),
                ev(500, EventKind::XferEnd { id: 1, bytes: 100 }),
                ev(500, EventKind::CallExit),
            ],
            500,
            flat_table(400),
        );
        assert_eq!(r.total.case_split_calls, 1);
        assert_eq!(r.total.max_overlap, 0); // no computation existed
        assert_eq!(r.total.min_overlap, 0);
    }

    #[test]
    fn compute_and_call_time_partition_elapsed() {
        let r = run(
            vec![
                ev(0, EventKind::CallEnter { name: "Init" }),
                ev(10, EventKind::CallExit),
                ev(110, EventKind::CallEnter { name: "Barrier" }),
                ev(150, EventKind::CallExit),
            ],
            250,
            flat_table(1),
        );
        assert_eq!(r.comm_call_time, 50);
        assert_eq!(r.user_compute_time, 200); // 10..110 and 150..250
        assert_eq!(r.elapsed, 250);
        assert_eq!(r.user_compute_time + r.comm_call_time, r.elapsed);
    }

    #[test]
    fn sections_attribute_transfers_and_time() {
        let r = run(
            vec![
                ev(0, EventKind::SectionBegin { name: "solve" }),
                ev(0, EventKind::CallEnter { name: "Isend" }),
                ev(0, EventKind::XferBegin { id: 1, bytes: 100 }),
                ev(10, EventKind::CallExit),
                ev(1000, EventKind::CallEnter { name: "Wait" }),
                ev(1010, EventKind::XferEnd { id: 1, bytes: 100 }),
                ev(1010, EventKind::CallExit),
                ev(1010, EventKind::SectionEnd),
                // outside the section
                ev(1010, EventKind::CallEnter { name: "Recv" }),
                ev(1200, EventKind::XferEnd { id: 2, bytes: 50 }),
                ev(1200, EventKind::CallExit),
            ],
            1200,
            flat_table(400),
        );
        assert_eq!(r.total.transfers, 2);
        let sec = &r.sections["solve"];
        assert_eq!(sec.total.transfers, 1);
        assert_eq!(sec.compute_time, 990);
        assert_eq!(sec.call_time, 20);
        assert_eq!(sec.total.max_overlap, 400);
    }

    #[test]
    fn per_call_stats_track_wait_times() {
        let r = run(
            vec![
                ev(0, EventKind::CallEnter { name: "Wait" }),
                ev(100, EventKind::CallExit),
                ev(200, EventKind::CallEnter { name: "Wait" }),
                ev(500, EventKind::CallExit),
            ],
            500,
            flat_table(1),
        );
        let w = &r.calls["Wait"];
        assert_eq!(w.count, 2);
        assert_eq!(w.total_time, 400);
        assert_eq!(w.avg(), 200.0);
    }

    #[test]
    fn nested_calls_count_inner_portion_as_library_time() {
        // A collective implemented over point-to-point: nested enters.
        let r = run(
            vec![
                ev(0, EventKind::CallEnter { name: "Bcast" }),
                ev(10, EventKind::CallEnter { name: "Send" }),
                ev(30, EventKind::CallExit),
                ev(40, EventKind::CallExit),
            ],
            100,
            flat_table(1),
        );
        assert_eq!(r.comm_call_time, 40);
        assert_eq!(r.user_compute_time, 60);
        assert_eq!(r.calls["Bcast"].total_time, 40);
        assert_eq!(r.calls["Send"].total_time, 20);
    }

    #[test]
    fn figure1_rdma_read_receiver_timeline() {
        // Paper Figure 1, receiver side: Irecv posts nothing observable;
        // the RDMA Read begins inside Irecv (library saw the RTS there in
        // this variant), computation happens, Wait observes the end.
        let xfer_time = 10_000;
        let r = run(
            vec![
                ev(0, EventKind::CallEnter { name: "MPI_Irecv" }),
                ev(
                    200,
                    EventKind::XferBegin {
                        id: 1,
                        bytes: 1 << 20,
                    },
                ),
                ev(300, EventKind::CallExit),
                ev(8_300, EventKind::CallEnter { name: "MPI_Wait" }),
                ev(
                    10_500,
                    EventKind::XferEnd {
                        id: 1,
                        bytes: 1 << 20,
                    },
                ),
                ev(10_500, EventKind::CallExit),
            ],
            10_500,
            flat_table(xfer_time),
        );
        // computation between stamps = 8000; noncomputation = 100 + 2200.
        assert_eq!(r.total.max_overlap, 8_000);
        assert_eq!(r.total.min_overlap, xfer_time - 2_300);
        assert_eq!(r.total.case_split_calls, 1);
        assert!(r.total.min_overlap <= r.total.max_overlap);
    }

    #[test]
    fn flagged_transfer_degrades_min_bound_to_zero() {
        // Same timeline as the ample-computation case, but the library flags
        // the transfer as retransmitted before the end stamp: min degrades to
        // 0 while max stays (overlap may still have happened, just unproven).
        let r = run(
            vec![
                ev(0, EventKind::CallEnter { name: "Isend" }),
                ev(5, EventKind::XferBegin { id: 1, bytes: 100 }),
                ev(10, EventKind::CallExit),
                ev(1010, EventKind::CallEnter { name: "Wait" }),
                ev(1020, EventKind::XferFlag { id: 1 }),
                ev(1025, EventKind::XferEnd { id: 1, bytes: 100 }),
                ev(1030, EventKind::CallExit),
            ],
            1030,
            flat_table(400),
        );
        assert_eq!(r.total.transfers, 1);
        assert_eq!(r.total.min_overlap, 0);
        assert_eq!(r.total.max_overlap, 400);
        assert_eq!(r.total.flagged, 1);
        assert!(r.total.confidence() < 1.0);
        assert!(!r.anomalies.any());
    }

    #[test]
    fn orphan_flag_counts_anomaly_not_panic() {
        let r = run(
            vec![
                ev(0, EventKind::CallEnter { name: "Recv" }),
                ev(100, EventKind::XferEnd { id: 9, bytes: 2048 }),
                ev(110, EventKind::XferFlag { id: 9 }), // already closed
                ev(120, EventKind::XferFlag { id: 77 }), // never existed
                ev(130, EventKind::CallExit),
            ],
            130,
            flat_table(400),
        );
        assert_eq!(r.anomalies.orphan_flags, 2);
        assert_eq!(r.total.flagged, 0);
        assert_eq!(r.total.transfers, 1);
    }

    #[test]
    fn duplicate_begin_closes_prior_as_single_stamp() {
        let r = run(
            vec![
                ev(0, EventKind::CallEnter { name: "Isend" }),
                ev(0, EventKind::XferBegin { id: 1, bytes: 100 }),
                ev(10, EventKind::XferBegin { id: 1, bytes: 100 }),
                ev(500, EventKind::XferEnd { id: 1, bytes: 100 }),
                ev(510, EventKind::CallExit),
            ],
            510,
            flat_table(400),
        );
        assert_eq!(r.anomalies.duplicate_begin, 1);
        // Both the orphaned first begin and the re-begun transfer count.
        assert_eq!(r.total.transfers, 2);
        assert_eq!(r.total.case_single_stamp, 1);
        assert_eq!(r.total.case_same_call, 1);
    }

    #[test]
    fn out_of_order_stamp_counts_clock_skew() {
        let r = run(
            vec![
                ev(100, EventKind::CallEnter { name: "Send" }),
                ev(50, EventKind::CallExit), // clock ran backwards
                ev(200, EventKind::CallEnter { name: "Send" }),
                ev(300, EventKind::CallExit),
            ],
            300,
            flat_table(1),
        );
        assert_eq!(r.anomalies.clock_skew, 1);
        assert_eq!(r.calls["Send"].count, 2);
    }

    #[test]
    fn unbalanced_exits_count_anomalies() {
        let r = run(
            vec![
                ev(0, EventKind::CallExit),
                ev(10, EventKind::SectionEnd),
                ev(20, EventKind::CallEnter { name: "Send" }),
                ev(30, EventKind::CallExit),
            ],
            30,
            flat_table(1),
        );
        assert_eq!(r.anomalies.unbalanced_calls, 1);
        assert_eq!(r.anomalies.unbalanced_sections, 1);
        assert_eq!(r.calls["Send"].count, 1);
    }

    #[test]
    fn suspiciously_long_window_flags_without_changing_bounds() {
        // noncomputation (2000) far exceeds 2 * xfer_time (800): the transfer
        // is counted as suspect but keeps its (already sound) bounds.
        let r = run(
            vec![
                ev(0, EventKind::CallEnter { name: "Isend" }),
                ev(0, EventKind::XferBegin { id: 1, bytes: 100 }),
                ev(0, EventKind::CallExit),
                ev(100, EventKind::CallEnter { name: "Wait" }),
                ev(2100, EventKind::XferEnd { id: 1, bytes: 100 }),
                ev(2100, EventKind::CallExit),
            ],
            2100,
            flat_table(400),
        );
        assert_eq!(r.total.flagged, 1);
        // Bounds identical to the unflagged computation: max = min(400, 100),
        // min = sat_sub(400, 2000) = 0.
        assert_eq!(r.total.max_overlap, 100);
        assert_eq!(r.total.min_overlap, 0);
    }

    #[test]
    fn flagged_leftover_at_finish_stays_flagged() {
        let r = run(
            vec![
                ev(0, EventKind::CallEnter { name: "Isend" }),
                ev(0, EventKind::XferBegin { id: 1, bytes: 100 }),
                ev(5, EventKind::XferFlag { id: 1 }),
                ev(10, EventKind::CallExit),
            ],
            1000,
            flat_table(400),
        );
        assert_eq!(r.total.case_single_stamp, 1);
        assert_eq!(r.total.flagged, 1);
        assert_eq!(r.total.min_overlap, 0);
    }

    #[test]
    fn bin_breakdown_separates_sizes() {
        let table = XferTimeTable::from_points(vec![(1, 100), (1 << 20, 1_000_000)]);
        let r = run(
            vec![
                ev(0, EventKind::CallEnter { name: "Recv" }),
                ev(10, EventKind::XferEnd { id: 1, bytes: 512 }),
                ev(
                    20,
                    EventKind::XferEnd {
                        id: 2,
                        bytes: 2 << 20,
                    },
                ),
                ev(30, EventKind::CallExit),
            ],
            30,
            table,
        );
        let small_bin = SizeBins::log_default().index(512);
        let large_bin = SizeBins::log_default().index(2 << 20);
        assert_eq!(r.by_bin[small_bin].transfers, 1);
        assert_eq!(r.by_bin[large_bin].transfers, 1);
        assert_ne!(small_bin, large_bin);
    }
}
