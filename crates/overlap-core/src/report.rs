//! Per-process overlap reports — the contents of the "output file with
//! overlap numbers" the framework writes when the application terminates.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::bounds::{OverlapBounds, XferCase};
use crate::metrics::MetricsRegistry;

/// Aggregated overlap measures for a set of transfers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverlapStats {
    /// Number of data transfers.
    pub transfers: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Σ a-priori transfer time — the paper's *data transfer time*, ns.
    pub data_transfer_time: u64,
    /// Σ lower bounds — *minimum overlapped transfer time*, ns.
    pub min_overlap: u64,
    /// Σ upper bounds — *maximum overlapped transfer time*, ns.
    pub max_overlap: u64,
    /// Transfers that fell into case 1 (both stamps in one call).
    pub case_same_call: u64,
    /// Transfers that fell into case 2 (stamps in different calls).
    pub case_split_calls: u64,
    /// Transfers that fell into case 3 (single stamp).
    pub case_single_stamp: u64,
    /// Transfers whose observed window diverged from the a-priori model:
    /// explicitly flagged by the library (retransmission) or with an
    /// in-library window far beyond `xfer_time`. Their min bound is degraded
    /// to zero — the a-priori time no longer describes what the wire did.
    pub flagged: u64,
    /// Transfers whose min bound had to be clamped to the observed window
    /// (a-priori table overestimate).
    pub clamped: u64,
}

impl OverlapStats {
    /// Fold one transfer's bounds into the aggregate.
    pub fn add_bounds(&mut self, bytes: u64, xfer_time: u64, b: OverlapBounds) {
        self.transfers += 1;
        self.bytes += bytes;
        self.data_transfer_time += xfer_time;
        self.min_overlap += b.min;
        self.max_overlap += b.max;
        match b.case {
            XferCase::SameCall => self.case_same_call += 1,
            XferCase::SplitCalls => self.case_split_calls += 1,
            XferCase::SingleStamp => self.case_single_stamp += 1,
        }
    }

    /// Merge another aggregate into this one.
    pub fn merge(&mut self, o: &OverlapStats) {
        self.transfers += o.transfers;
        self.bytes += o.bytes;
        self.data_transfer_time += o.data_transfer_time;
        self.min_overlap += o.min_overlap;
        self.max_overlap += o.max_overlap;
        self.case_same_call += o.case_same_call;
        self.case_split_calls += o.case_split_calls;
        self.case_single_stamp += o.case_single_stamp;
        self.flagged += o.flagged;
        self.clamped += o.clamped;
    }

    /// Note that one of the folded transfers was flagged as fault-disturbed.
    pub fn note_flagged(&mut self) {
        self.flagged += 1;
    }

    /// Note that one of the folded transfers had its min bound clamped.
    pub fn note_clamped(&mut self) {
        self.clamped += 1;
    }

    /// Confidence in the bounds, in `[0, 1]`: the fraction of transfers whose
    /// bounds rest on clean two-stamp observations. Single-stamp transfers
    /// contribute half weight (their bounds are valid but vacuously wide);
    /// flagged transfers contribute none (the a-priori model demonstrably
    /// failed to describe them). `1.0` when nothing was observed.
    pub fn confidence(&self) -> f64 {
        if self.transfers == 0 {
            return 1.0;
        }
        let flagged = self.flagged.min(self.transfers);
        // Flagged transfers may themselves be single-stamp; avoid counting
        // the discount twice.
        let single = self.case_single_stamp.min(self.transfers - flagged);
        let weight = (self.transfers - flagged) as f64 - 0.5 * single as f64;
        weight / self.transfers as f64
    }

    /// Minimum overlap as a percentage of data transfer time.
    pub fn min_pct(&self) -> f64 {
        pct(self.min_overlap, self.data_transfer_time)
    }

    /// Maximum overlap as a percentage of data transfer time.
    pub fn max_pct(&self) -> f64 {
        pct(self.max_overlap, self.data_transfer_time)
    }

    /// Communication time that was *provably not* overlapped:
    /// `data_transfer_time − max_overlap` (paper Sec. 2.3, measure 1).
    pub fn nonoverlapped_min(&self) -> u64 {
        self.data_transfer_time - self.max_overlap
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Counters for instrumentation-stream irregularities the processor absorbed
/// instead of panicking. Nonzero values mean reality diverged from the
/// library's stamp discipline — bounds stay sound but confidence drops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Anomalies {
    /// `XFER_BEGIN` for an id that was already active (the prior open
    /// transfer is closed as single-stamp).
    pub duplicate_begin: u64,
    /// `XFER_FLAG` for an id not currently active (transfer completed before
    /// the library learned of the disturbance, or never began).
    pub orphan_flags: u64,
    /// Events whose timestamp ran behind the processing cursor (clock skew);
    /// their interval contribution is dropped.
    pub clock_skew: u64,
    /// `CALL_EXIT` without a matching `CALL_ENTER`.
    pub unbalanced_calls: u64,
    /// `SECTION_END` without a matching `SECTION_BEGIN`.
    pub unbalanced_sections: u64,
}

impl Anomalies {
    /// True if any irregularity was observed.
    pub fn any(&self) -> bool {
        self.duplicate_begin != 0
            || self.orphan_flags != 0
            || self.clock_skew != 0
            || self.unbalanced_calls != 0
            || self.unbalanced_sections != 0
    }

    /// Sum of all counters.
    pub fn total(&self) -> u64 {
        self.duplicate_begin
            + self.orphan_flags
            + self.clock_skew
            + self.unbalanced_calls
            + self.unbalanced_sections
    }
}

/// Count / total-time statistics for one library call name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallStats {
    /// Number of completed calls.
    pub count: u64,
    /// Total time spent inside the call, ns.
    pub total_time: u64,
}

impl CallStats {
    /// Average time per call, ns.
    pub fn avg(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_time as f64 / self.count as f64
        }
    }
}

/// Overlap measures limited to one monitored application section.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SectionReport {
    /// Aggregate over all transfers attributed to the section.
    pub total: OverlapStats,
    /// Per-size-bin breakdown (same bin layout as the report).
    pub by_bin: Vec<OverlapStats>,
    /// User computation time while the section was active, ns.
    pub compute_time: u64,
    /// Communication call time while the section was active, ns.
    pub call_time: u64,
}

/// The per-process output of the framework.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverlapReport {
    /// Rank (process) this report describes.
    pub rank: usize,
    /// Time between the first and last observed event, ns.
    pub elapsed: u64,
    /// Aggregate user computation time (CALL_EXIT → CALL_ENTER gaps), ns.
    pub user_compute_time: u64,
    /// Aggregate communication call time (CALL_ENTER → CALL_EXIT spans), ns.
    pub comm_call_time: u64,
    /// Overall overlap measures.
    pub total: OverlapStats,
    /// Labels of the size bins, in order.
    pub bin_labels: Vec<String>,
    /// Per-size-bin overlap measures.
    pub by_bin: Vec<OverlapStats>,
    /// Per-monitored-section measures.
    pub sections: BTreeMap<String, SectionReport>,
    /// Per-call-name statistics (e.g. average `MPI_Wait` time).
    pub calls: BTreeMap<String, CallStats>,
    /// Events pushed through the queue.
    pub events_recorded: u64,
    /// Times the fixed-size queue filled and was folded into aggregates.
    pub queue_flushes: u64,
    /// Instrumentation-stream irregularities absorbed during processing.
    pub anomalies: Anomalies,
    /// Named counters and fixed-bucket histograms (call latency, transfer
    /// times, per-size-bin overlap bounds) populated at fold time. Absent in
    /// reports written by older versions; deserializes as empty then.
    pub metrics: MetricsRegistry,
}

impl OverlapReport {
    /// Render a human-readable summary (the text form of the output file).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "== overlap report: rank {} ==", self.rank);
        let _ = writeln!(
            s,
            "elapsed {:.3} ms | user compute {:.3} ms | comm calls {:.3} ms",
            self.elapsed as f64 / 1e6,
            self.user_compute_time as f64 / 1e6,
            self.comm_call_time as f64 / 1e6,
        );
        let t = &self.total;
        let _ = writeln!(
            s,
            "transfers {} ({} bytes) | data transfer time {:.3} ms",
            t.transfers,
            t.bytes,
            t.data_transfer_time as f64 / 1e6
        );
        let _ = writeln!(
            s,
            "overlap: min {:.1}% max {:.1}% | non-overlapped >= {:.3} ms | confidence {:.2}",
            t.min_pct(),
            t.max_pct(),
            t.nonoverlapped_min() as f64 / 1e6,
            t.confidence(),
        );
        if t.flagged != 0 || t.clamped != 0 {
            let _ = writeln!(
                s,
                "degraded bounds: {} transfers flagged (fault-disturbed), {} min bounds clamped",
                t.flagged, t.clamped,
            );
        }
        if self.anomalies.any() {
            let a = &self.anomalies;
            let _ = writeln!(
                s,
                "stream anomalies: {} dup-begin, {} orphan-flag, {} clock-skew, {} unbalanced-call, {} unbalanced-section",
                a.duplicate_begin, a.orphan_flags, a.clock_skew, a.unbalanced_calls, a.unbalanced_sections,
            );
        }
        let _ = writeln!(s, "-- by message size --");
        for (label, b) in self.bin_labels.iter().zip(&self.by_bin) {
            if b.transfers == 0 {
                continue;
            }
            let _ = writeln!(
                s,
                "  {:>10}: n={:<7} min {:>5.1}% max {:>5.1}% conf {:>4.2}",
                label,
                b.transfers,
                b.min_pct(),
                b.max_pct(),
                b.confidence()
            );
        }
        if !self.sections.is_empty() {
            let _ = writeln!(s, "-- monitored sections --");
            for (name, sec) in &self.sections {
                let _ = writeln!(
                    s,
                    "  {:>12}: n={:<7} min {:>5.1}% max {:>5.1}% compute {:.3} ms calls {:.3} ms",
                    name,
                    sec.total.transfers,
                    sec.total.min_pct(),
                    sec.total.max_pct(),
                    sec.compute_time as f64 / 1e6,
                    sec.call_time as f64 / 1e6,
                );
            }
        }
        if !self.calls.is_empty() {
            let _ = writeln!(s, "-- calls --");
            for (name, c) in &self.calls {
                let _ = writeln!(
                    s,
                    "  {:>12}: n={:<8} avg {:>9.2} us",
                    name,
                    c.count,
                    c.avg() / 1e3
                );
            }
        }
        s
    }

    /// Write the report as JSON (the machine-readable output file).
    pub fn save_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self).expect("report serializes");
        std::fs::write(path, json)
    }

    /// Load a report written by [`OverlapReport::save_json`].
    pub fn load_json(path: &std::path::Path) -> std::io::Result<Self> {
        let data = std::fs::read_to_string(path)?;
        serde_json::from_str(&data)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Cluster-wide aggregate of per-process reports (what a job-level summary
/// tool prints after collecting each rank's output file).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSummary {
    /// Number of per-process reports merged.
    pub ranks: usize,
    /// Sum of all processes' overlap measures.
    pub total: OverlapStats,
    /// Bin labels (taken from the first report; all must agree).
    pub bin_labels: Vec<String>,
    /// Per-bin sums across processes.
    pub by_bin: Vec<OverlapStats>,
    /// Smallest per-rank maximum-overlap percentage (the laggard).
    pub worst_max_pct: f64,
    /// Largest per-rank maximum-overlap percentage.
    pub best_max_pct: f64,
    /// Sum of user computation time across ranks, ns.
    pub user_compute_time: u64,
    /// Sum of communication call time across ranks, ns.
    pub comm_call_time: u64,
}

impl ClusterSummary {
    /// Merge per-process reports into a job-level summary. Panics if the
    /// reports use different bin layouts or the slice is empty.
    pub fn merge(reports: &[OverlapReport]) -> Self {
        assert!(!reports.is_empty(), "nothing to merge");
        let bin_labels = reports[0].bin_labels.clone();
        let mut total = OverlapStats::default();
        let mut by_bin = vec![OverlapStats::default(); bin_labels.len()];
        let mut user_compute_time = 0;
        let mut comm_call_time = 0;
        let mut worst = f64::INFINITY;
        let mut best = f64::NEG_INFINITY;
        for r in reports {
            assert_eq!(r.bin_labels, bin_labels, "bin layouts differ");
            total.merge(&r.total);
            for (acc, b) in by_bin.iter_mut().zip(&r.by_bin) {
                acc.merge(b);
            }
            user_compute_time += r.user_compute_time;
            comm_call_time += r.comm_call_time;
            worst = worst.min(r.total.max_pct());
            best = best.max(r.total.max_pct());
        }
        ClusterSummary {
            ranks: reports.len(),
            total,
            bin_labels,
            by_bin,
            worst_max_pct: worst,
            best_max_pct: best,
            user_compute_time,
            comm_call_time,
        }
    }

    /// Render a human-readable job summary.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "== cluster overlap summary ({} ranks) ==", self.ranks);
        let _ = writeln!(
            s,
            "overlap: min {:.1}% max {:.1}% | per-rank max range [{:.1}%, {:.1}%]",
            self.total.min_pct(),
            self.total.max_pct(),
            self.worst_max_pct,
            self.best_max_pct,
        );
        let _ = writeln!(
            s,
            "transfers {} | data transfer {:.3} ms | compute {:.3} ms | comm {:.3} ms",
            self.total.transfers,
            self.total.data_transfer_time as f64 / 1e6,
            self.user_compute_time as f64 / 1e6,
            self.comm_call_time as f64 / 1e6,
        );
        for (label, b) in self.bin_labels.iter().zip(&self.by_bin) {
            if b.transfers > 0 {
                let _ = writeln!(
                    s,
                    "  {:>10}: n={:<8} min {:>5.1}% max {:>5.1}%",
                    label,
                    b.transfers,
                    b.min_pct(),
                    b.max_pct()
                );
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_fold_and_percentages() {
        let mut s = OverlapStats::default();
        s.add_bounds(100, 1000, OverlapBounds::split_calls(1000, 800, 100));
        s.add_bounds(100, 1000, OverlapBounds::single_stamp(1000));
        assert_eq!(s.transfers, 2);
        assert_eq!(s.data_transfer_time, 2000);
        // split_calls: max = min(1000, 800) = 800; min = min(900, 800) = 800.
        assert_eq!(s.min_overlap, 800);
        assert_eq!(s.max_overlap, 1800);
        assert!((s.min_pct() - 40.0).abs() < 1e-9);
        assert!((s.max_pct() - 90.0).abs() < 1e-9);
        assert_eq!(s.nonoverlapped_min(), 200);
        assert_eq!(s.case_split_calls, 1);
        assert_eq!(s.case_single_stamp, 1);
    }

    #[test]
    fn empty_stats_have_zero_pct() {
        let s = OverlapStats::default();
        assert_eq!(s.min_pct(), 0.0);
        assert_eq!(s.max_pct(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = OverlapStats::default();
        a.add_bounds(10, 100, OverlapBounds::same_call());
        let mut b = OverlapStats::default();
        b.add_bounds(20, 200, OverlapBounds::single_stamp(200));
        a.merge(&b);
        assert_eq!(a.transfers, 2);
        assert_eq!(a.bytes, 30);
        assert_eq!(a.data_transfer_time, 300);
        assert_eq!(a.case_same_call, 1);
        assert_eq!(a.case_single_stamp, 1);
    }

    #[test]
    fn call_stats_average() {
        let c = CallStats {
            count: 4,
            total_time: 1000,
        };
        assert_eq!(c.avg(), 250.0);
        assert_eq!(CallStats::default().avg(), 0.0);
    }
}
