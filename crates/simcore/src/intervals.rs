//! Half-open time-interval sets with union / intersection / measure.
//!
//! Used for ground-truth overlap computation: the true overlap of a data
//! transfer with user computation is the measure of the intersection between
//! the transfer's physical `[start, end)` interval and the rank's set of
//! compute intervals.

use crate::time::Time;

/// A set of disjoint, sorted, half-open intervals `[start, end)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    ivs: Vec<(Time, Time)>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from arbitrary (possibly overlapping, unsorted) intervals.
    /// Empty intervals (`start >= end`) are dropped.
    pub fn from_unsorted(mut raw: Vec<(Time, Time)>) -> Self {
        raw.retain(|&(s, e)| s < e);
        raw.sort_unstable();
        let mut out: Vec<(Time, Time)> = Vec::with_capacity(raw.len());
        for (s, e) in raw {
            match out.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => out.push((s, e)),
            }
        }
        Self { ivs: out }
    }

    /// Append an interval that must start at or after the end of the last one
    /// (amortized O(1); panics in debug builds if out of order). Adjacent
    /// intervals are coalesced.
    pub fn push(&mut self, start: Time, end: Time) {
        if start >= end {
            return;
        }
        if let Some(last) = self.ivs.last_mut() {
            debug_assert!(start >= last.1, "IntervalSet::push out of order");
            if start <= last.1 {
                last.1 = last.1.max(end);
                return;
            }
        }
        self.ivs.push((start, end));
    }

    /// Number of disjoint intervals.
    pub fn len(&self) -> usize {
        self.ivs.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Total measure (sum of lengths) in nanoseconds.
    pub fn total(&self) -> u64 {
        self.ivs.iter().map(|&(s, e)| e - s).sum()
    }

    /// Iterate over the disjoint intervals in order.
    pub fn iter(&self) -> impl Iterator<Item = (Time, Time)> + '_ {
        self.ivs.iter().copied()
    }

    /// Measure of the intersection of this set with a single interval.
    pub fn overlap_with(&self, start: Time, end: Time) -> u64 {
        if start >= end {
            return 0;
        }
        // Binary search for the first interval whose end exceeds `start`.
        let idx = self.ivs.partition_point(|&(_, e)| e <= start);
        let mut acc = 0;
        for &(s, e) in &self.ivs[idx..] {
            if s >= end {
                break;
            }
            acc += e.min(end) - s.max(start);
        }
        acc
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let (mut i, mut j) = (0, 0);
        let mut out = IntervalSet::new();
        while i < self.ivs.len() && j < other.ivs.len() {
            let (a_s, a_e) = self.ivs[i];
            let (b_s, b_e) = other.ivs[j];
            let s = a_s.max(b_s);
            let e = a_e.min(b_e);
            if s < e {
                out.push(s, e);
            }
            if a_e <= b_e {
                i += 1;
            } else {
                j += 1;
            }
        }
        out
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut raw: Vec<(Time, Time)> = Vec::with_capacity(self.ivs.len() + other.ivs.len());
        raw.extend_from_slice(&self.ivs);
        raw.extend_from_slice(&other.ivs);
        IntervalSet::from_unsorted(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_unsorted_merges_overlaps() {
        let s = IntervalSet::from_unsorted(vec![(5, 10), (0, 3), (2, 6), (12, 12), (15, 20)]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(0, 10), (15, 20)]);
        assert_eq!(s.total(), 15);
    }

    #[test]
    fn push_coalesces_adjacent() {
        let mut s = IntervalSet::new();
        s.push(0, 5);
        s.push(5, 8);
        s.push(10, 12);
        assert_eq!(s.len(), 2);
        assert_eq!(s.total(), 10);
    }

    #[test]
    fn push_ignores_empty() {
        let mut s = IntervalSet::new();
        s.push(4, 4);
        assert!(s.is_empty());
    }

    #[test]
    fn overlap_with_single_interval() {
        let s = IntervalSet::from_unsorted(vec![(0, 10), (20, 30)]);
        assert_eq!(s.overlap_with(5, 25), 10); // 5..10 plus 20..25
        assert_eq!(s.overlap_with(10, 20), 0);
        assert_eq!(s.overlap_with(0, 40), 20);
        assert_eq!(s.overlap_with(7, 7), 0);
    }

    #[test]
    fn intersect_basic() {
        let a = IntervalSet::from_unsorted(vec![(0, 10), (20, 30)]);
        let b = IntervalSet::from_unsorted(vec![(5, 25)]);
        let c = a.intersect(&b);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![(5, 10), (20, 25)]);
    }

    #[test]
    fn union_basic() {
        let a = IntervalSet::from_unsorted(vec![(0, 5)]);
        let b = IntervalSet::from_unsorted(vec![(3, 8), (10, 12)]);
        let u = a.union(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![(0, 8), (10, 12)]);
    }

    #[test]
    fn intersect_commutes_and_bounds() {
        let a = IntervalSet::from_unsorted(vec![(0, 4), (6, 9), (11, 15)]);
        let b = IntervalSet::from_unsorted(vec![(2, 7), (8, 12)]);
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        assert_eq!(ab, ba);
        assert!(ab.total() <= a.total().min(b.total()));
    }
}
