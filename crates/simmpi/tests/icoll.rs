//! Non-blocking collectives: correctness, overlap, and interaction with the
//! progress engine.

use overlap_core::RecorderOpts;
use simmpi::{run_mpi, MpiConfig, MpiRunOutcome, ReduceOp, Src, TagSel};
use simnet::NetConfig;

fn run(
    nranks: usize,
    cfg: MpiConfig,
    body: impl Fn(&mut simmpi::Mpi) + Send + Sync + 'static,
) -> MpiRunOutcome {
    run_mpi(
        nranks,
        NetConfig::default(),
        cfg,
        RecorderOpts::default(),
        body,
    )
    .expect("run failed")
}

#[test]
fn ibarrier_synchronizes() {
    run(5, MpiConfig::default(), |mpi| {
        mpi.compute(1_000 * (mpi.rank() as u64 + 1) * 50);
        let h = mpi.ibarrier();
        mpi.icoll_wait(h);
        assert!(mpi.now() >= 250_000, "rank {} left early", mpi.rank());
    });
}

#[test]
fn ibcast_delivers_from_every_root() {
    for nranks in [2usize, 4, 7] {
        run(nranks, MpiConfig::default(), move |mpi| {
            for root in 0..mpi.nranks() {
                let payload = (root == mpi.rank()).then(|| vec![root as u8; 2000]);
                let h = mpi.ibcast(root, payload);
                mpi.compute(10_000);
                let data = mpi.icoll_wait(h).into_data();
                assert_eq!(data, vec![root as u8; 2000]);
            }
        });
    }
}

#[test]
fn ialltoall_permutes_blocks() {
    for nranks in [2usize, 4, 5] {
        run(nranks, MpiConfig::default(), move |mpi| {
            let me = mpi.rank();
            let n = mpi.nranks();
            let blocks: Vec<Vec<u8>> = (0..n).map(|d| vec![(me * n + d) as u8; 512]).collect();
            let h = mpi.ialltoall(&blocks);
            mpi.compute(50_000);
            let got = mpi.icoll_wait(h).into_blocks();
            for (src, b) in got.iter().enumerate() {
                assert_eq!(b, &vec![(src * n + me) as u8; 512], "block from {src}");
            }
        });
    }
}

#[test]
fn iallreduce_matches_blocking() {
    for nranks in [2usize, 3, 4, 8] {
        run(nranks, MpiConfig::default(), move |mpi| {
            let mine: Vec<f64> = (0..10).map(|i| (mpi.rank() * 10 + i) as f64).collect();
            let h = mpi.iallreduce(&mine, ReduceOp::Sum);
            mpi.compute(20_000);
            let nb = mpi.icoll_wait(h).into_vals();
            let blocking = mpi.allreduce(&mine, ReduceOp::Sum);
            assert_eq!(nb, blocking, "nranks {nranks}");
        });
    }
}

#[test]
fn icoll_test_is_nonblocking() {
    run(2, MpiConfig::default(), |mpi| {
        // Eager-sized blocks: the wire moves them without any peer
        // handshake, so compute alone suffices for completion.
        let blocks = vec![vec![1u8; 4 << 10]; 2];
        let h = mpi.ialltoall(&blocks);
        // Immediately after initiation nothing has crossed the wire yet.
        assert!(!mpi.icoll_test(h));
        mpi.compute(5_000_000);
        assert!(mpi.icoll_test(h), "should complete under ample compute");
        let got = mpi.icoll_wait(h).into_blocks();
        assert_eq!(got[0].len(), 4 << 10);
    });
}

#[test]
fn ialltoall_overlaps_what_alltoall_cannot() {
    // The FT story: same transpose volume, blocking vs non-blocking, with
    // the same computation available for hiding.
    let volume = 512usize << 10;
    let blocking = run(4, MpiConfig::mvapich2(), move |mpi| {
        let blocks: Vec<Vec<u8>> = vec![vec![1u8; volume]; 4];
        for _ in 0..5 {
            mpi.alltoall(&blocks);
            mpi.compute(4_000_000);
        }
    });
    let nonblocking = run(4, MpiConfig::mvapich2(), move |mpi| {
        let blocks: Vec<Vec<u8>> = vec![vec![1u8; volume]; 4];
        for _ in 0..5 {
            let h = mpi.ialltoall(&blocks);
            // Probe-free: the waits inside icoll_wait plus the periodic
            // probes below drive progression.
            for _ in 0..4 {
                mpi.compute(1_000_000);
                mpi.iprobe(Src::Any, TagSel::Any);
            }
            mpi.icoll_wait(h);
        }
    });
    let b = blocking.reports[0].total.max_pct();
    let n = nonblocking.reports[0].total.max_pct();
    assert!(b < 10.0, "blocking alltoall should not overlap: {b}");
    assert!(n > 60.0, "ialltoall should overlap substantially: {n}");
    // And it is faster end to end.
    assert!(nonblocking.end_time < blocking.end_time);
}

#[test]
fn mixed_icolls_in_flight_concurrently() {
    run(4, MpiConfig::default(), |mpi| {
        let me = mpi.rank();
        let n = mpi.nranks();
        let hb = mpi.ibarrier();
        let payload = (me == 1).then(|| vec![9u8; 300]);
        let hbc = mpi.ibcast(1, payload);
        let har = mpi.iallreduce(&[me as f64], ReduceOp::Sum);
        let blocks: Vec<Vec<u8>> = (0..n).map(|d| vec![(me + d) as u8; 64]).collect();
        let ha = mpi.ialltoall(&blocks);
        mpi.compute(100_000);
        // Complete in arbitrary order.
        let a = mpi.icoll_wait(ha).into_blocks();
        let r = mpi.icoll_wait(har).into_vals();
        let d = mpi.icoll_wait(hbc).into_data();
        mpi.icoll_wait(hb);
        assert_eq!(d, vec![9u8; 300]);
        assert_eq!(r, vec![(0..n).map(|x| x as f64).sum::<f64>()]);
        for (src, b) in a.iter().enumerate() {
            assert_eq!(b, &vec![(src + me) as u8; 64]);
        }
    });
}

#[test]
fn icoll_bounds_respect_truth() {
    let net = NetConfig::default();
    let out = run(4, MpiConfig::mvapich2(), |mpi| {
        let blocks: Vec<Vec<u8>> = vec![vec![3u8; 128 << 10]; 4];
        for _ in 0..4 {
            let h = mpi.ialltoall(&blocks);
            mpi.compute(1_500_000);
            mpi.iprobe(Src::Any, TagSel::Any);
            mpi.compute(1_500_000);
            mpi.icoll_wait(h);
        }
    });
    let table = simmpi::default_xfer_table(&net);
    for rank in 0..4 {
        let r = &out.reports[rank].total;
        let truth = out.true_overlap(rank);
        let slack = out.congestion_excess(rank, &table);
        assert!(r.min_overlap <= truth, "rank {rank}");
        assert!(truth <= r.max_overlap + slack, "rank {rank}");
    }
}
