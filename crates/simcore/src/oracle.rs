//! Schedule oracles: pluggable control over the engine's nondeterminism
//! points.
//!
//! The simulator is byte-for-byte deterministic: every tie the timing wheel
//! could break arbitrarily — same-timestamp event order, sharded-inbox drain
//! order, token dispatch order — is resolved by a fixed `(time, seq)` policy.
//! That fixed policy is *one* schedule out of many a real system could
//! exhibit. A [`ScheduleOracle`] turns each such tie-break into an explicit
//! choice point: the engine (and the network/MPI layers built on it) ask the
//! oracle which of `n` legal alternatives to take, so an explorer can
//! systematically search the schedule space instead of sampling one
//! interleaving.
//!
//! Five kinds of choice point exist (see [`ChoicePoint`]):
//!
//! * **Event ties** — several queue entries are due at the same virtual
//!   time; the oracle picks which runs next. Choice `0` is the canonical
//!   `seq` order, so inbox-shard routing and token-vs-callback interleaving
//!   are all covered by this one point: any same-time permutation is
//!   reachable, whatever buffer an entry travelled through.
//! * **Progress polls** — a library progress engine has more than one event
//!   source ready (e.g. a NIC completion queue and an RX queue) and the
//!   oracle picks which to drain first.
//! * **Fault jitter** — a fault plan allows a bounded timing window for a
//!   perturbation and the oracle picks the step within the window.
//! * **Routing** — a hierarchical topology offers several equal-cost paths
//!   for a message (ECMP / adaptive routing) and the oracle picks which one
//!   it takes, so the explorer can search routing nondeterminism too.
//! * **Progress wakes** — an asynchronous progress fiber (the `async-rank`
//!   progress model) reaches a poll boundary with host events pending and
//!   the oracle picks whether it runs now or defers to the next boundary,
//!   so the explorer can search async-progress interleavings.
//!
//! Every decision is recorded by the [`OracleHandle`] wrapper as a
//! [`ChoiceRec`], so any explored schedule can be replayed exactly with
//! [`ReplayOracle`] and shrunk to a minimal divergent prefix. The
//! [`Canonical`] oracle always picks choice `0` and reproduces the default
//! schedule byte-identically.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::time::Time;

/// One nondeterminism point presented to a [`ScheduleOracle`].
///
/// Every variant carries `n`, the number of legal alternatives; the oracle
/// must answer in `0..n` (answers are clamped defensively). Choice `0` is
/// always the canonical alternative — the one the fixed policy would take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoicePoint {
    /// `n` queue entries are due at the same virtual `time`; pick which runs
    /// next. `0` is the lowest sequence number (canonical FIFO order).
    EventTie {
        /// The shared due time of the tied entries.
        time: Time,
        /// Number of tied entries.
        n: usize,
    },
    /// A progress engine on `rank` has `n` event sources ready; pick which
    /// to drain first. `0` is the canonical source (completion queue).
    ProgressPoll {
        /// The rank whose progress engine is polling.
        rank: usize,
        /// Number of ready sources.
        n: usize,
    },
    /// A fault plan allows a bounded timing window on the `src → dst` link;
    /// pick one of `n` discrete steps within it. `0` means no perturbation.
    FaultJitter {
        /// Sending rank of the affected packet.
        src: usize,
        /// Receiving rank of the affected packet.
        dst: usize,
        /// Number of discrete jitter steps (including the zero step).
        n: usize,
    },
    /// A topology offers `n` equal-cost paths from `src` to `dst` (ECMP /
    /// adaptive routing); pick which one this message takes. `0` is the
    /// canonical deterministic flow-hash pick.
    Route {
        /// Sending rank of the message.
        src: usize,
        /// Receiving rank of the message.
        dst: usize,
        /// Number of equal-cost candidate paths.
        n: usize,
    },
    /// An asynchronous progress fiber on `rank` hit a poll boundary with
    /// host events pending; pick whether it drains them now (`0`, the
    /// canonical alternative) or defers to the next boundary (`1`).
    ProgressWake {
        /// The rank whose progress fiber woke.
        rank: usize,
        /// Number of alternatives (run-now plus defer steps).
        n: usize,
    },
}

impl ChoicePoint {
    /// Number of legal alternatives at this point.
    pub fn arity(&self) -> usize {
        match *self {
            ChoicePoint::EventTie { n, .. }
            | ChoicePoint::ProgressPoll { n, .. }
            | ChoicePoint::FaultJitter { n, .. }
            | ChoicePoint::Route { n, .. }
            | ChoicePoint::ProgressWake { n, .. } => n,
        }
    }

    /// Stable small integer tag identifying the kind of point (used in
    /// recorded traces and replay tokens).
    pub fn kind(&self) -> u8 {
        match self {
            ChoicePoint::EventTie { .. } => 0,
            ChoicePoint::ProgressPoll { .. } => 1,
            ChoicePoint::FaultJitter { .. } => 2,
            ChoicePoint::Route { .. } => 3,
            ChoicePoint::ProgressWake { .. } => 4,
        }
    }
}

/// A recorded schedule decision: which alternative was taken at one
/// [`ChoicePoint`], along with the point's kind tag and arity so a replay
/// can detect divergence from the run that produced the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChoiceRec {
    /// [`ChoicePoint::kind`] tag of the point.
    pub kind: u8,
    /// Number of alternatives that were available.
    pub arity: u32,
    /// The alternative taken, `0..arity`.
    pub choice: u32,
}

/// A policy answering schedule choice points.
///
/// Implementations must be deterministic functions of their own state and
/// the sequence of points presented: the whole simulation is logically
/// single-threaded, so the point sequence is itself a deterministic function
/// of the answers, which is what makes recorded traces replayable.
pub trait ScheduleOracle: Send {
    /// Answer `point` with an index in `0..point.arity()`.
    fn choose(&mut self, point: ChoicePoint) -> usize;
}

/// The identity oracle: always picks choice `0`, reproducing the engine's
/// canonical fixed-policy schedule byte-identically.
#[derive(Debug, Default, Clone, Copy)]
pub struct Canonical;

impl ScheduleOracle for Canonical {
    fn choose(&mut self, _point: ChoicePoint) -> usize {
        0
    }
}

/// Seeded random-permutation oracle: answers every point uniformly at
/// random from a splitmix64 stream, so one seed identifies one schedule.
#[derive(Debug, Clone)]
pub struct RandomOracle {
    state: u64,
}

impl RandomOracle {
    /// Oracle producing the schedule identified by `seed`.
    pub fn new(seed: u64) -> Self {
        RandomOracle {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl ScheduleOracle for RandomOracle {
    fn choose(&mut self, point: ChoicePoint) -> usize {
        (self.next_u64() % point.arity().max(1) as u64) as usize
    }
}

/// Replays a recorded decision prefix, then falls back to canonical choice
/// `0` for every point past the end of the script.
///
/// If a presented point's kind or arity disagrees with the scripted record,
/// the replay has diverged (the script was produced by a different
/// configuration); the oracle answers canonically and counts the mismatch.
#[derive(Debug, Clone)]
pub struct ReplayOracle {
    script: Vec<ChoiceRec>,
    cursor: usize,
    mismatches: u64,
}

impl ReplayOracle {
    /// Oracle replaying `script` from the start.
    pub fn new(script: Vec<ChoiceRec>) -> Self {
        ReplayOracle {
            script,
            cursor: 0,
            mismatches: 0,
        }
    }

    /// Number of presented points whose kind/arity disagreed with the
    /// script.
    pub fn mismatches(&self) -> u64 {
        self.mismatches
    }
}

impl ScheduleOracle for ReplayOracle {
    fn choose(&mut self, point: ChoicePoint) -> usize {
        let Some(rec) = self.script.get(self.cursor).copied() else {
            return 0;
        };
        self.cursor += 1;
        if rec.kind != point.kind() || rec.arity as usize != point.arity() {
            self.mismatches += 1;
            return 0;
        }
        rec.choice as usize
    }
}

struct OracleCell {
    oracle: Box<dyn ScheduleOracle>,
    trace: Vec<ChoiceRec>,
}

/// Shared, recording wrapper around a [`ScheduleOracle`], installable into a
/// simulation via [`crate::EngineHandle::set_oracle`].
///
/// Every consulted point is appended to an internal trace of
/// [`ChoiceRec`]s, so after a run the exact schedule can be read back with
/// [`OracleHandle::trace`] and replayed or shrunk. Points with fewer than
/// two alternatives are answered `0` without consulting (or recording) the
/// oracle — they are not choices.
#[derive(Clone)]
pub struct OracleHandle {
    cell: Arc<Mutex<OracleCell>>,
}

impl OracleHandle {
    /// Wrap `oracle` for installation into a simulation.
    pub fn new(oracle: Box<dyn ScheduleOracle>) -> Self {
        OracleHandle {
            cell: Arc::new(Mutex::new(OracleCell {
                oracle,
                trace: Vec::new(),
            })),
        }
    }

    /// A recording handle around the [`Canonical`] oracle.
    pub fn canonical() -> Self {
        Self::new(Box::new(Canonical))
    }

    /// Present `point` to the wrapped oracle, record the decision, and
    /// return it (clamped to the point's arity).
    pub fn choose(&self, point: ChoicePoint) -> usize {
        let n = point.arity();
        if n <= 1 {
            return 0;
        }
        let mut cell = self.cell.lock();
        let c = cell.oracle.choose(point).min(n - 1);
        cell.trace.push(ChoiceRec {
            kind: point.kind(),
            arity: n as u32,
            choice: c as u32,
        });
        c
    }

    /// The decisions recorded so far, in consultation order.
    pub fn trace(&self) -> Vec<ChoiceRec> {
        self.cell.lock().trace.clone()
    }

    /// Number of decisions recorded so far.
    pub fn decisions(&self) -> usize {
        self.cell.lock().trace.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_always_picks_zero() {
        let h = OracleHandle::canonical();
        for n in 2..6 {
            assert_eq!(h.choose(ChoicePoint::EventTie { time: 7, n }), 0);
        }
        assert_eq!(h.decisions(), 4);
        assert!(h.trace().iter().all(|r| r.choice == 0));
    }

    #[test]
    fn unary_points_are_not_recorded() {
        let h = OracleHandle::canonical();
        assert_eq!(h.choose(ChoicePoint::EventTie { time: 0, n: 1 }), 0);
        assert_eq!(h.choose(ChoicePoint::EventTie { time: 0, n: 0 }), 0);
        assert_eq!(h.decisions(), 0);
    }

    #[test]
    fn random_oracle_is_seed_deterministic_and_in_range() {
        let run = |seed| {
            let h = OracleHandle::new(Box::new(RandomOracle::new(seed)));
            (0..50)
                .map(|i| {
                    h.choose(ChoicePoint::EventTie {
                        time: i,
                        n: 2 + (i as usize % 5),
                    })
                })
                .collect::<Vec<_>>()
        };
        let a = run(42);
        assert_eq!(a, run(42));
        assert_ne!(a, run(43));
        for (i, &c) in a.iter().enumerate() {
            assert!(c < 2 + (i % 5));
        }
    }

    #[test]
    fn replay_reproduces_and_pads_with_canonical() {
        let h = OracleHandle::new(Box::new(RandomOracle::new(9)));
        let points: Vec<ChoicePoint> = (0..10)
            .map(|i| ChoicePoint::EventTie { time: i, n: 3 })
            .collect();
        let original: Vec<usize> = points.iter().map(|&p| h.choose(p)).collect();
        let replay = OracleHandle::new(Box::new(ReplayOracle::new(h.trace())));
        let replayed: Vec<usize> = points.iter().map(|&p| replay.choose(p)).collect();
        assert_eq!(original, replayed);
        // Points past the script end fall back to canonical 0.
        assert_eq!(replay.choose(ChoicePoint::EventTie { time: 99, n: 4 }), 0);
    }

    #[test]
    fn replay_detects_arity_divergence() {
        let mut r = ReplayOracle::new(vec![ChoiceRec {
            kind: 0,
            arity: 3,
            choice: 2,
        }]);
        assert_eq!(r.choose(ChoicePoint::EventTie { time: 0, n: 5 }), 0);
        assert_eq!(r.mismatches(), 1);
    }
}
