//! Public point-to-point types.

use bytes::Bytes;

/// Source selector for receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Match any source (`MPI_ANY_SOURCE`).
    Any,
    /// Match only this rank.
    Rank(usize),
}

impl Src {
    /// Does this selector match rank `r`?
    pub fn matches(&self, r: usize) -> bool {
        match self {
            Src::Any => true,
            Src::Rank(x) => *x == r,
        }
    }
}

/// Tag selector for receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSel {
    /// Match any tag (`MPI_ANY_TAG`).
    Any,
    /// Match only this tag.
    Is(u64),
}

impl TagSel {
    /// Does this selector match tag `t`?
    pub fn matches(&self, t: u64) -> bool {
        match self {
            TagSel::Any => true,
            TagSel::Is(x) => *x == t,
        }
    }
}

/// Handle to an outstanding non-blocking operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request(pub(crate) u64);

/// Completion status of an operation.
#[derive(Debug, Clone)]
pub struct Status {
    /// Resolved source rank (receives) or destination (sends).
    pub source: usize,
    /// Resolved tag.
    pub tag: u64,
    /// Received payload, if this was a receive.
    pub data: Option<Bytes>,
}

impl Status {
    /// The received payload; panics if this was not a receive.
    pub fn into_data(self) -> Bytes {
        self.data.expect("status carries no data (send request?)")
    }
}

/// A reusable communication specification — the analogue of MPI's
/// persistent requests (`MPI_Send_init` / `MPI_Recv_init`). Build once with
/// [`crate::Mpi::send_init`] / [`crate::Mpi::recv_init`], then fire with
/// [`crate::Mpi::start`] each iteration.
#[derive(Debug, Clone)]
pub enum PersistentOp {
    /// A persistent send of a fixed payload.
    Send {
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: u64,
        /// Payload sent on every start.
        data: Vec<u8>,
    },
    /// A persistent receive.
    Recv {
        /// Source selector.
        src: Src,
        /// Tag selector.
        tag: TagSel,
    },
}

/// Reduction operators for `reduce` / `allreduce` over `f64` payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl ReduceOp {
    /// Apply the operator elementwise: `acc[i] = op(acc[i], other[i])`.
    pub fn apply(&self, acc: &mut [f64], other: &[f64]) {
        assert_eq!(acc.len(), other.len(), "reduce length mismatch");
        match self {
            ReduceOp::Sum => acc.iter_mut().zip(other).for_each(|(a, b)| *a += b),
            ReduceOp::Max => acc.iter_mut().zip(other).for_each(|(a, b)| *a = a.max(*b)),
            ReduceOp::Min => acc.iter_mut().zip(other).for_each(|(a, b)| *a = a.min(*b)),
        }
    }
}

/// Serialize a slice of `f64` to little-endian bytes.
pub fn f64s_to_bytes(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Deserialize little-endian bytes into `f64`s (length must be 8-aligned).
pub fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    assert!(b.len().is_multiple_of(8), "payload not f64-aligned");
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectors_match() {
        assert!(Src::Any.matches(5));
        assert!(Src::Rank(3).matches(3));
        assert!(!Src::Rank(3).matches(4));
        assert!(TagSel::Any.matches(7));
        assert!(TagSel::Is(7).matches(7));
        assert!(!TagSel::Is(7).matches(8));
    }

    #[test]
    fn f64_roundtrip() {
        let v = vec![1.5, -2.25, 0.0, f64::MAX];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&v)), v);
    }

    #[test]
    fn reduce_ops_apply() {
        let mut a = vec![1.0, 5.0];
        ReduceOp::Sum.apply(&mut a, &[2.0, 2.0]);
        assert_eq!(a, vec![3.0, 7.0]);
        ReduceOp::Max.apply(&mut a, &[10.0, 0.0]);
        assert_eq!(a, vec![10.0, 7.0]);
        ReduceOp::Min.apply(&mut a, &[0.5, 100.0]);
        assert_eq!(a, vec![0.5, 7.0]);
    }
}
