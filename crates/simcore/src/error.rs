//! Simulation error types.

use std::fmt;

/// Per-rank diagnostic snapshot taken when a deadlock is detected.
///
/// The notes are provided by the library running on the rank (via
/// [`crate::RankCtx::note_blocked_on`] / [`crate::RankCtx::note_call`]); a
/// rank that never set them reports `None`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RankDiag {
    /// The stuck rank.
    pub rank: usize,
    /// What the rank reported it was blocked on when it last parked.
    pub blocked_on: Option<String>,
    /// The last library call the rank entered.
    pub last_call: Option<String>,
    /// Structured wait-for edge: the peer rank this one is waiting on, if
    /// the library could name a single one (via
    /// [`crate::RankCtx::note_waiting_on`]).
    pub waits_on_rank: Option<usize>,
    /// The library-level request id the rank is blocked in, if any.
    pub waits_on_req: Option<u64>,
}

/// Walk the structured wait-for edges of a deadlock diagnostic and return
/// the first cycle found, as the list of stuck ranks in edge order (each
/// entry waits on the next; the last waits on the first), rotated so the
/// smallest rank leads. The walk order and the rotation make the result a
/// pure function of the diagnostics — counterexample tokens embedding the
/// rendered cycle stay byte-stable across runs.
///
/// Returns `None` when the diagnostics carry no cycle — e.g. the library
/// never reported structured edges, or a rank waits on a peer that is still
/// making progress.
pub fn deadlock_cycle(diags: &[RankDiag]) -> Option<Vec<usize>> {
    use std::collections::BTreeMap;
    let edges: BTreeMap<usize, usize> = diags
        .iter()
        .filter_map(|d| d.waits_on_rank.map(|p| (d.rank, p)))
        .collect();
    // The wait-for graph is functional (≤ 1 outgoing edge per rank), so a
    // simple colored walk finds a cycle in O(n).
    let mut color: BTreeMap<usize, u8> = BTreeMap::new(); // 1 = on path, 2 = done
    for &start in edges.keys() {
        if color.contains_key(&start) {
            continue;
        }
        let mut path = Vec::new();
        let mut cur = start;
        loop {
            match color.get(&cur) {
                Some(1) => {
                    // Found a cycle: slice the path from `cur`'s position
                    // and rotate its smallest rank to the front.
                    let pos = path.iter().position(|&r| r == cur).unwrap();
                    let mut cycle = path[pos..].to_vec();
                    let lo = (0..cycle.len()).min_by_key(|&i| cycle[i]).unwrap();
                    cycle.rotate_left(lo);
                    return Some(cycle);
                }
                Some(_) => break,
                None => {}
            }
            color.insert(cur, 1);
            path.push(cur);
            match edges.get(&cur) {
                Some(&next) => cur = next,
                None => break,
            }
        }
        for r in path {
            color.insert(r, 2);
        }
    }
    None
}

/// Terminal failures of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained while one or more ranks were still parked:
    /// no future event can ever wake them. This is the simulated analogue of
    /// an MPI deadlock (e.g. two blocking rendezvous sends to each other).
    Deadlock {
        /// Ranks that were parked when the queue drained.
        parked: Vec<usize>,
        /// Virtual time at which the deadlock was detected.
        at: crate::Time,
        /// One diagnostic snapshot per parked rank, in `parked` order.
        diags: Vec<RankDiag>,
    },
    /// The host OS refused to spawn a rank's worker thread.
    SpawnFailed {
        /// The rank whose thread could not be created.
        rank: usize,
        /// The OS error.
        message: String,
    },
    /// Engine invariant violation: a rank reported `Done` without handing
    /// over its activity log.
    MissingRankLog {
        /// The offending rank.
        rank: usize,
    },
    /// A rank's body panicked; the message is the stringified payload.
    RankPanic {
        /// The panicking rank.
        rank: usize,
        /// Stringified panic payload.
        message: String,
    },
    /// Virtual time exceeded [`crate::SimOpts::max_time`].
    TimeLimitExceeded {
        /// The configured limit, ns.
        limit: crate::Time,
    },
    /// More events were processed than [`crate::SimOpts::max_events`] allows
    /// (guards against livelock in buggy protocols).
    EventLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
}

/// Render a wait-for cycle as `rank A -> req X -> rank B -> ... -> rank A`,
/// interleaving the request id each rank is blocked in when known.
fn render_cycle(cycle: &[usize], diags: &[RankDiag]) -> String {
    use fmt::Write as _;
    let mut s = String::new();
    for &r in cycle {
        let _ = write!(s, "rank {r}");
        match diags
            .iter()
            .find(|d| d.rank == r)
            .and_then(|d| d.waits_on_req)
        {
            Some(req) => {
                let _ = write!(s, " -> req {req} -> ");
            }
            None => s.push_str(" -> "),
        }
    }
    let _ = write!(s, "rank {}", cycle[0]);
    s
}

impl SimError {
    /// Compact single-line rendering, suitable for a CLI diagnostic. For
    /// [`SimError::Deadlock`] this includes the wait-for cycle
    /// (`rank -> request -> rank`) when the structured diagnostics carry
    /// one; other variants render as their normal `Display`.
    pub fn one_line(&self) -> String {
        match self {
            SimError::Deadlock { parked, at, diags } => match deadlock_cycle(diags) {
                Some(cycle) => format!(
                    "simulated deadlock at t={}ns: wait-for cycle {}",
                    at,
                    render_cycle(&cycle, diags)
                ),
                None => format!(
                    "simulated deadlock at t={}ns: ranks {:?} are parked with no pending events",
                    at, parked
                ),
            },
            other => other.to_string(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { parked, at, diags } => {
                write!(
                    f,
                    "simulated deadlock at t={}ns: ranks {:?} are parked with no pending events",
                    at, parked
                )?;
                if let Some(cycle) = deadlock_cycle(diags) {
                    write!(f, "\n  wait-for cycle: {}", render_cycle(&cycle, diags))?;
                }
                for d in diags {
                    write!(
                        f,
                        "\n  rank {}: blocked on {}",
                        d.rank,
                        d.blocked_on.as_deref().unwrap_or("<no note>")
                    )?;
                    if let Some(call) = &d.last_call {
                        write!(f, " (last call {call})")?;
                    }
                }
                Ok(())
            }
            SimError::SpawnFailed { rank, message } => {
                write!(f, "failed to spawn thread for rank {}: {}", rank, message)
            }
            SimError::MissingRankLog { rank } => {
                write!(f, "rank {} finished without an activity log", rank)
            }
            SimError::RankPanic { rank, message } => {
                write!(f, "rank {} panicked: {}", rank, message)
            }
            SimError::TimeLimitExceeded { limit } => {
                write!(f, "virtual time limit exceeded ({}ns)", limit)
            }
            SimError::EventLimitExceeded { limit } => {
                write!(f, "event limit exceeded ({} events)", limit)
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rank: usize, waits_on: Option<usize>, req: Option<u64>) -> RankDiag {
        RankDiag {
            rank,
            waits_on_rank: waits_on,
            waits_on_req: req,
            ..Default::default()
        }
    }

    #[test]
    fn two_rank_cycle_detected_and_rendered() {
        let diags = vec![diag(0, Some(1), Some(5)), diag(1, Some(0), Some(9))];
        let cycle = deadlock_cycle(&diags).unwrap();
        assert_eq!(cycle, vec![0, 1], "smallest rank leads the cycle");
        let err = SimError::Deadlock {
            parked: vec![0, 1],
            at: 42,
            diags,
        };
        let line = err.one_line();
        assert!(line.contains("wait-for cycle"), "{line}");
        assert!(
            line.contains("rank 0 -> req 5 -> rank 1 -> req 9 -> rank 0"),
            "{line}"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn chain_without_cycle_reports_none() {
        // 0 -> 1 -> 2, and 2 waits on nobody: no cycle.
        let diags = vec![
            diag(0, Some(1), None),
            diag(1, Some(2), None),
            diag(2, None, None),
        ];
        assert_eq!(deadlock_cycle(&diags), None);
        let err = SimError::Deadlock {
            parked: vec![0, 1, 2],
            at: 7,
            diags,
        };
        assert!(err.one_line().contains("parked with no pending events"));
    }

    #[test]
    fn self_cycle_detected() {
        let diags = vec![diag(3, Some(3), Some(1))];
        assert_eq!(deadlock_cycle(&diags), Some(vec![3]));
    }

    #[test]
    fn partial_cycle_among_chain_found() {
        // 0 -> 1 -> 2 -> 1: cycle is [1, 2].
        let diags = vec![
            diag(0, Some(1), None),
            diag(1, Some(2), None),
            diag(2, Some(1), None),
        ];
        let cycle = deadlock_cycle(&diags).unwrap();
        assert!(cycle == vec![1, 2] || cycle == vec![2, 1]);
    }
}
