//! The paper's microbenchmark phenomenology (Sec. 3) and the bound-vs-truth
//! validation the original authors could not perform on real hardware.
//!
//! Bound/truth relationship in this simulator (see `DESIGN.md`):
//! * `min_overlap <= true_overlap` always — the a-priori table is the *idle*
//!   transfer time, a lower bound on the physical duration, and the physical
//!   interval always lies within the stamp window;
//! * `true_overlap <= max_overlap + congestion_excess` — the upper bound can
//!   only be exceeded by the amount the physical duration outran the table
//!   (DMA queueing under contention).

use overlap_core::RecorderOpts;
use simmpi::{default_xfer_table, run_mpi, MpiConfig, MpiRunOutcome, Src, TagSel};
use simnet::NetConfig;

fn run(
    nranks: usize,
    cfg: MpiConfig,
    body: impl Fn(&mut simmpi::Mpi) + Send + Sync + 'static,
) -> MpiRunOutcome {
    run_mpi(
        nranks,
        NetConfig::default(),
        cfg,
        RecorderOpts::default(),
        body,
    )
    .expect("run failed")
}

fn assert_bounds_valid(out: &MpiRunOutcome, net: &NetConfig) {
    let table = default_xfer_table(net);
    for rank in 0..out.reports.len() {
        let r = &out.reports[rank];
        let truth = out.true_overlap(rank);
        let slack = out.congestion_excess(rank, &table);
        assert!(
            r.total.min_overlap <= truth,
            "rank {rank}: min bound {} exceeds true overlap {}",
            r.total.min_overlap,
            truth
        );
        assert!(
            truth <= r.total.max_overlap + slack,
            "rank {rank}: true overlap {} exceeds max bound {} + slack {}",
            truth,
            r.total.max_overlap,
            slack
        );
        assert!(r.total.min_overlap <= r.total.max_overlap);
        assert!(r.total.max_overlap <= r.total.data_transfer_time);
    }
}

/// One microbenchmark iteration: sender Isend + compute + Wait; receiver
/// posts Irecv early, computes, Waits (paper Sec. 3.2 pattern).
fn overlap_iteration(mpi: &mut simmpi::Mpi, bytes: usize, compute_ns: u64, tag: u64) {
    let msg = vec![0xABu8; bytes];
    if mpi.rank() == 0 {
        let r = mpi.isend(1, tag, &msg);
        mpi.compute(compute_ns);
        mpi.wait(r);
    } else {
        let r = mpi.irecv(Src::Rank(0), TagSel::Is(tag));
        mpi.compute(compute_ns);
        mpi.wait(r);
    }
}

#[test]
fn eager_sender_overlap_grows_with_computation() {
    // Paper Fig. 3: short messages exhibit full overlap ability.
    let mut prev_max = 0.0;
    for compute_us in [0u64, 5, 10, 20, 30] {
        let out = run(2, MpiConfig::default(), move |mpi| {
            for i in 0..50 {
                overlap_iteration(mpi, 10 << 10, compute_us * 1_000, i);
            }
        });
        let sender = &out.reports[0];
        let max_pct = sender.total.max_pct();
        assert!(
            max_pct + 1e-6 >= prev_max,
            "sender max overlap should not drop with more compute: {max_pct} < {prev_max}"
        );
        prev_max = max_pct;
        assert_bounds_valid(&out, &NetConfig::default());
    }
    // With ample computation the sender overlaps (nearly) fully.
    assert!(
        prev_max > 90.0,
        "expected near-full overlap, got {prev_max}%"
    );
}

#[test]
fn eager_receiver_min_overlap_is_pinned_at_zero() {
    // Paper Sec. 3.4: "we always assert minimum overlap as zero ... for the
    // receiver" — arrival is invisible, so every receive is case 3.
    let out = run(2, MpiConfig::default(), |mpi| {
        for i in 0..20 {
            overlap_iteration(mpi, 10 << 10, 50_000, i);
        }
    });
    let recv = &out.reports[1];
    assert_eq!(recv.total.min_overlap, 0);
    assert!(recv.total.max_overlap > 0);
    assert_eq!(recv.total.case_single_stamp, recv.total.transfers);
}

#[test]
fn direct_read_isend_recv_sender_overlap_grows_and_wait_shrinks() {
    // Paper Fig. 5: sender in Isend–Recv under direct RDMA. More compute →
    // more overlap, less MPI_Wait.
    let run_one = |compute_ms: u64| {
        run(2, MpiConfig::open_mpi_leave_pinned(), move |mpi| {
            let msg = vec![1u8; 1 << 20];
            for i in 0..20 {
                if mpi.rank() == 0 {
                    let r = mpi.isend(1, i, &msg);
                    mpi.compute(compute_ms * 1_000_000);
                    mpi.wait(r);
                } else {
                    mpi.recv(Src::Rank(0), TagSel::Is(i));
                }
            }
        })
    };
    let small = run_one(0);
    let large = run_one(2);
    let (s_min, s_wait) = (
        small.reports[0].total.min_pct(),
        small.reports[0].calls["MPI_Wait"].avg(),
    );
    let (l_min, l_wait) = (
        large.reports[0].total.min_pct(),
        large.reports[0].calls["MPI_Wait"].avg(),
    );
    assert!(
        l_min > s_min + 30.0,
        "min overlap should grow: {s_min} -> {l_min}"
    );
    assert!(
        l_min > 80.0,
        "ample compute should overlap nearly fully: {l_min}"
    );
    assert!(
        l_wait < s_wait / 2.0,
        "wait should shrink: {s_wait} -> {l_wait}"
    );
    assert_bounds_valid(&small, &NetConfig::default());
    assert_bounds_valid(&large, &NetConfig::default());
}

#[test]
fn pipelined_isend_recv_overlap_is_flat_and_first_fragment_only() {
    // Paper Fig. 4: the pipelined scheme only overlaps the initial fragment,
    // so the curves stay flat as computation grows.
    let run_one = |compute_ms: u64| {
        run(2, MpiConfig::open_mpi_pipelined(), move |mpi| {
            let msg = vec![1u8; 1 << 20];
            for i in 0..20 {
                if mpi.rank() == 0 {
                    let r = mpi.isend(1, i, &msg);
                    mpi.compute(compute_ms * 1_000_000);
                    mpi.wait(r);
                } else {
                    mpi.recv(Src::Rank(0), TagSel::Is(i));
                }
            }
        })
    };
    let small = run_one(1);
    let large = run_one(2);
    let s_max = small.reports[0].total.max_pct();
    let l_max = large.reports[0].total.max_pct();
    // Flat: no meaningful growth despite doubling the inserted compute.
    assert!(
        (l_max - s_max).abs() < 5.0,
        "pipelined overlap should stay flat: {s_max} vs {l_max}"
    );
    // Pinned at the first-fragment share (128K/1M = 12.5%) — fragments 2..n
    // are posted and completed inside MPI_Wait.
    assert!(
        (10.0..20.0).contains(&l_max),
        "pipelined max overlap should be the first-fragment share: {l_max}"
    );
    assert_bounds_valid(&large, &NetConfig::default());
}

#[test]
fn direct_read_send_irecv_receiver_has_zero_overlap() {
    // Paper Fig. 7: the polling receiver detects the RTS only on entering
    // MPI_Wait; the read then starts and completes inside that call → zero.
    let out = run(2, MpiConfig::open_mpi_leave_pinned(), |mpi| {
        let msg = vec![1u8; 1 << 20];
        for i in 0..10 {
            if mpi.rank() == 0 {
                mpi.send(1, i, &msg);
            } else {
                let r = mpi.irecv(Src::Rank(0), TagSel::Is(i));
                mpi.compute(1_500_000);
                mpi.wait(r);
            }
        }
    });
    let recv = &out.reports[1];
    assert_eq!(
        recv.total.max_overlap, 0,
        "direct-read late receiver must be case 1"
    );
    assert_eq!(recv.total.case_same_call, recv.total.transfers);
    assert_bounds_valid(&out, &NetConfig::default());
}

#[test]
fn iprobe_during_compute_recovers_receiver_overlap() {
    // The paper's SP fix (Sec. 4.3): probing inside the computation region
    // invokes the progress engine, so the RDMA Read starts early and
    // overlaps the remaining computation.
    let body = |probes: usize| {
        move |mpi: &mut simmpi::Mpi| {
            let msg = vec![1u8; 1 << 20];
            for i in 0..10 {
                if mpi.rank() == 0 {
                    mpi.send(1, i, &msg);
                } else {
                    let r = mpi.irecv(Src::Rank(0), TagSel::Is(i));
                    let chunk = 1_500_000 / (probes as u64 + 1);
                    for _ in 0..probes {
                        mpi.compute(chunk);
                        mpi.iprobe(Src::Any, TagSel::Any);
                    }
                    mpi.compute(chunk);
                    mpi.wait(r);
                }
            }
        }
    };
    let without = run(2, MpiConfig::open_mpi_leave_pinned(), body(0));
    let with = run(2, MpiConfig::open_mpi_leave_pinned(), body(4));
    let w0 = without.reports[1].total.max_pct();
    let w4 = with.reports[1].total.max_pct();
    assert_eq!(w0, 0.0);
    assert!(
        w4 > 50.0,
        "iprobe should recover substantial overlap, got {w4}%"
    );
    // And the receiver actually finishes sooner.
    assert!(with.reports[1].comm_call_time < without.reports[1].comm_call_time);
    assert_bounds_valid(&with, &NetConfig::default());
}

#[test]
fn blocking_send_recv_has_zero_overlap_everywhere() {
    let out = run(2, MpiConfig::mvapich2(), |mpi| {
        let msg = vec![1u8; 1 << 20];
        for i in 0..5 {
            if mpi.rank() == 0 {
                mpi.send(1, i, &msg);
                mpi.recv(Src::Rank(1), TagSel::Is(1000 + i));
            } else {
                mpi.recv(Src::Rank(0), TagSel::Is(i));
                mpi.send(0, 1000 + i, &msg);
            }
        }
    });
    for r in &out.reports {
        assert_eq!(r.total.min_overlap, 0);
        // The sender's FIN arrives inside MPI_Send (case 1) and the
        // receiver's read completes inside MPI_Recv (case 1).
        assert_eq!(r.total.max_overlap, 0);
    }
    assert_bounds_valid(&out, &NetConfig::default());
}

#[test]
fn buffered_eager_send_overlaps_following_computation() {
    // LU-style pattern: blocking eager Send returns after buffering; the
    // wire transfer overlaps the next compute phase (paper Sec. 1).
    let out = run(2, MpiConfig::default(), |mpi| {
        for i in 0..20 {
            if mpi.rank() == 0 {
                mpi.send(1, i, &vec![3u8; 2048]);
                mpi.compute(100_000); // >> 7 us transfer time
            } else {
                mpi.recv(Src::Rank(0), TagSel::Is(i));
                mpi.compute(100_000);
            }
        }
    });
    let sender = &out.reports[0];
    assert!(
        sender.total.min_pct() > 70.0,
        "buffered eager sends should overlap: min {}%",
        sender.total.min_pct()
    );
    assert_bounds_valid(&out, &NetConfig::default());
}

#[test]
fn bounds_bracket_truth_across_random_mixed_workloads() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    for seed in 0..6u64 {
        for cfg in [MpiConfig::open_mpi_pipelined(), MpiConfig::mvapich2()] {
            let out = run(2, cfg, move |mpi| {
                let mut rng = StdRng::seed_from_u64(seed * 1000 + mpi.rank() as u64);
                // Symmetric exchange with randomized sizes/compute: both
                // ranks do the same sequence of paired sendrecvs.
                let mut shared = StdRng::seed_from_u64(seed);
                for i in 0..15 {
                    let bytes = *[256usize, 4 << 10, 10 << 10, 64 << 10, 512 << 10]
                        .get(shared.gen_range(0..5))
                        .unwrap();
                    let compute = shared.gen_range(0..1_500_000u64);
                    let me = mpi.rank();
                    let other = 1 - me;
                    let msg = vec![me as u8; bytes];
                    let s = mpi.isend(other, i, &msg);
                    let r = mpi.irecv(Src::Rank(other), TagSel::Is(i));
                    mpi.compute(compute + rng.gen_range(0..1000));
                    mpi.wait(s);
                    mpi.wait(r);
                }
            });
            assert_bounds_valid(&out, &NetConfig::default());
        }
    }
}

#[test]
fn compute_plus_call_time_equals_elapsed() {
    let out = run(2, MpiConfig::default(), |mpi| {
        for i in 0..10 {
            overlap_iteration(mpi, 4 << 10, 20_000, i);
        }
    });
    for r in &out.reports {
        assert_eq!(
            r.user_compute_time + r.comm_call_time,
            r.elapsed,
            "rank {} time accounting leak",
            r.rank
        );
    }
}

#[test]
fn wait_time_statistics_are_reported() {
    let out = run(2, MpiConfig::default(), |mpi| {
        for i in 0..8 {
            overlap_iteration(mpi, 10 << 10, 5_000, i);
        }
    });
    for r in &out.reports {
        let w = &r.calls["MPI_Wait"];
        assert_eq!(w.count, 8);
        assert!(w.avg() > 0.0);
        // Rank 0 only sends, rank 1 only receives in this pattern.
        let isends = r.calls.get("MPI_Isend").map_or(0, |c| c.count);
        let irecvs = r.calls.get("MPI_Irecv").map_or(0, |c| c.count);
        assert_eq!(isends + irecvs, 8);
    }
}
