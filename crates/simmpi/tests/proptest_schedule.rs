//! Property: the reliability layer's seq/ACK/NACK retransmission protocol
//! converges — no livelock, bounded retries — on *every*
//! random-permutation-oracle schedule of a small lossy 2-rank exchange.
//!
//! Each proptest case draws an oracle seed; the [`simcore::RandomOracle`]
//! then resolves every engine tie-break, progress-poll order, and
//! fault-jitter step for that schedule. With 30% uniform packet loss and a
//! generous retry budget the exchange must still complete under the event
//! cap (the livelock guard), with every packet delivered (nothing
//! abandoned) and the retransmission count bounded by the budget.

use overlap_core::RecorderOpts;
use proptest::prelude::*;
use simcore::{OracleHandle, RandomOracle, SimOpts};
use simmpi::{default_xfer_table, run_mpi_explored, MpiConfig, Src, TagSel};
use simnet::{FaultPlan, NetConfig};

const MAX_RETRIES: u32 = 32;
const REPS: u64 = 3;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lossy_exchange_converges_on_every_schedule(seed in any::<u64>()) {
        let net = NetConfig {
            faults: FaultPlan {
                seed: 11,
                drop_prob: 0.3,
                explore_jitter_ns: 300,
                explore_jitter_steps: 3,
                ..FaultPlan::none()
            },
            ..NetConfig::default()
        };
        let cfg = MpiConfig {
            max_retries: MAX_RETRIES,
            ..MpiConfig::open_mpi_pipelined()
        };
        let table = default_xfer_table(&net);
        let opts = SimOpts {
            max_events: Some(2_000_000),
            ..SimOpts::default()
        };
        let oracle = OracleHandle::new(Box::new(RandomOracle::new(seed)));
        let out = run_mpi_explored(
            2,
            net,
            cfg,
            RecorderOpts::default(),
            table,
            opts,
            Some(oracle),
            |mpi| {
                let msg = vec![0x42u8; 4 << 10];
                for i in 0..REPS {
                    if mpi.rank() == 0 {
                        let s = mpi.isend(1, i, &msg);
                        mpi.compute(2_000);
                        mpi.wait(s);
                    } else {
                        let r = mpi.irecv(Src::Rank(0), TagSel::Is(i));
                        mpi.compute(2_000);
                        mpi.wait(r);
                    }
                }
            },
        );
        // Convergence: the run finishes (no deadlock, no event-cap
        // livelock) on every explored schedule.
        let out = out.unwrap_or_else(|e| {
            panic!("schedule seed {seed} did not converge: {}", e.one_line())
        });
        // Every payload made it through: the retry budget was never
        // exhausted, so nothing was abandoned.
        let mut retransmissions = 0;
        for st in &out.rel_stats {
            prop_assert_eq!(st.abandoned, 0, "packet abandoned under seed {}", seed);
            retransmissions += st.retransmissions;
        }
        // Bounded retries: with a 0.3 drop rate the expected retransmission
        // count is a handful; the budget caps any single packet at
        // MAX_RETRIES re-posts, and the whole run stays far below the
        // theoretical ceiling.
        let packets = out.transfers.len() as u64 + 8; // payloads + control slack
        prop_assert!(
            retransmissions <= packets * u64::from(MAX_RETRIES),
            "unbounded retransmission under seed {}: {} re-posts",
            seed,
            retransmissions
        );
    }
}
