//! NAS EP (embarrassingly parallel).
//!
//! Pure computation — Gaussian-pair generation — followed by a handful of
//! tiny reductions. The paper excludes EP from its overlap discussion
//! because it "performs minimal communication"; it is included here for
//! suite completeness and as a negative control (its reports should show
//! almost no data transfer time).

use simmpi::{Mpi, ReduceOp};

use crate::class::Class;
use crate::model::{flops_ns, EP_PAIR_FLOPS};

/// EP workload parameters.
#[derive(Debug, Clone)]
pub struct EpParams {
    /// Problem class (2^m random pairs).
    pub class: Class,
    /// Scale divisor on the pair count (the full 2^28 would be minutes of
    /// virtual time to no benefit).
    pub scale: usize,
}

impl EpParams {
    /// EP at the given class.
    pub fn new(class: Class) -> Self {
        EpParams { class, scale: 64 }
    }

    /// log2 of the pair count (NPB 3.x).
    pub fn m(&self) -> u32 {
        match self.class {
            Class::S => 24,
            Class::W => 25,
            Class::A => 28,
            Class::B => 30,
        }
    }
}

/// Run EP on the given MPI endpoint.
pub fn run_ep(mpi: &mut Mpi, p: &EpParams) {
    let pairs = (1u64 << p.m()) / (p.scale as u64 * mpi.nranks() as u64);
    // Generate pairs in chunks (NPB batches by 2^16).
    let chunks = 16u64;
    for _ in 0..chunks {
        mpi.compute(flops_ns((pairs / chunks) as f64 * EP_PAIR_FLOPS));
    }
    // Gaussian-deviate counts per annulus plus the sums.
    let counts: Vec<f64> = (0..10).map(|i| i as f64).collect();
    let total = mpi.allreduce(&counts, ReduceOp::Sum);
    assert_eq!(total.len(), 10);
    mpi.allreduce(&[1.0, 2.0], ReduceOp::Sum);
}
