//! Schedule-independent invariants of the overlap framework.
//!
//! The schedule explorer (`bench repro explore`) perturbs event ordering,
//! progress-poll drain order and fault timing, then checks every explored
//! schedule against these invariants: properties that must hold for *any*
//! legal interleaving. A violation means the instrumentation produced an
//! unsound report on that schedule — the explorer shrinks the offending
//! choice sequence to a minimal counterexample.

use crate::report::{OverlapReport, OverlapStats};

/// One failed invariant check on an explored schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Short machine-readable name of the failed check
    /// (e.g. `"min_le_max"`, `"confidence_range"`).
    pub check: String,
    /// Human-readable detail: where the numbers disagreed and by how much.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.check, self.detail)
    }
}

fn check_stats(scope: &str, s: &OverlapStats, out: &mut Vec<Violation>) {
    if s.min_overlap > s.max_overlap {
        out.push(Violation {
            check: "min_le_max".into(),
            detail: format!(
                "{scope}: min_overlap {} > max_overlap {}",
                s.min_overlap, s.max_overlap
            ),
        });
    }
    if s.max_overlap > s.data_transfer_time {
        out.push(Violation {
            check: "max_le_xfer".into(),
            detail: format!(
                "{scope}: max_overlap {} > data_transfer_time {}",
                s.max_overlap, s.data_transfer_time
            ),
        });
    }
    let cases = s.case_same_call + s.case_split_calls + s.case_single_stamp;
    if cases != s.transfers {
        out.push(Violation {
            check: "case_partition".into(),
            detail: format!(
                "{scope}: case counts {cases} ({} + {} + {}) != transfers {}",
                s.case_same_call, s.case_split_calls, s.case_single_stamp, s.transfers
            ),
        });
    }
    if s.flagged > s.transfers {
        out.push(Violation {
            check: "flagged_le_transfers".into(),
            detail: format!("{scope}: flagged {} > transfers {}", s.flagged, s.transfers),
        });
    }
    let c = s.confidence();
    if !c.is_finite() || !(0.0..=1.0).contains(&c) {
        out.push(Violation {
            check: "confidence_range".into(),
            detail: format!("{scope}: confidence {c} outside [0, 1]"),
        });
    }
}

/// Check every schedule-independent invariant of one per-rank report.
///
/// Returns all violations found (empty = the report is sound):
///
/// * `min_overlap <= max_overlap <= data_transfer_time` — for the totals
///   and every size bin (the bounds must bracket the unknowable truth),
/// * the three transfer cases partition the transfer count,
/// * flagged transfers never exceed the transfer count,
/// * confidence is finite and in `[0, 1]`,
/// * per-bin aggregates sum to the totals (transfers, bytes, bounds),
/// * compute/call time never exceed elapsed virtual time.
pub fn check_report(r: &OverlapReport) -> Vec<Violation> {
    let mut out = Vec::new();
    check_stats(&format!("rank {} total", r.rank), &r.total, &mut out);
    let mut bin_sum = OverlapStats::default();
    for (i, b) in r.by_bin.iter().enumerate() {
        let label = r
            .bin_labels
            .get(i)
            .map(String::as_str)
            .unwrap_or("<unlabeled>");
        check_stats(&format!("rank {} bin {label}", r.rank), b, &mut out);
        bin_sum.merge(b);
    }
    if !r.by_bin.is_empty() {
        for (name, got, want) in [
            ("transfers", bin_sum.transfers, r.total.transfers),
            ("bytes", bin_sum.bytes, r.total.bytes),
            (
                "data_transfer_time",
                bin_sum.data_transfer_time,
                r.total.data_transfer_time,
            ),
            ("min_overlap", bin_sum.min_overlap, r.total.min_overlap),
            ("max_overlap", bin_sum.max_overlap, r.total.max_overlap),
        ] {
            if got != want {
                out.push(Violation {
                    check: "bin_sum".into(),
                    detail: format!(
                        "rank {}: Σ bins {name} = {got} but total {name} = {want}",
                        r.rank
                    ),
                });
            }
        }
    }
    if r.user_compute_time > r.elapsed {
        out.push(Violation {
            check: "compute_le_elapsed".into(),
            detail: format!(
                "rank {}: user_compute_time {} > elapsed {}",
                r.rank, r.user_compute_time, r.elapsed
            ),
        });
    }
    if r.comm_call_time > r.elapsed {
        out.push(Violation {
            check: "call_le_elapsed".into(),
            detail: format!(
                "rank {}: comm_call_time {} > elapsed {}",
                r.rank, r.comm_call_time, r.elapsed
            ),
        });
    }
    out
}

/// [`check_report`] over a whole run: every rank's report, violations
/// concatenated in rank order.
pub fn check_reports(reports: &[OverlapReport]) -> Vec<Violation> {
    reports.iter().flat_map(check_report).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_stats() -> OverlapStats {
        OverlapStats {
            transfers: 2,
            bytes: 2048,
            data_transfer_time: 800,
            min_overlap: 300,
            max_overlap: 700,
            case_same_call: 1,
            case_split_calls: 1,
            case_single_stamp: 0,
            flagged: 0,
            clamped: 0,
        }
    }

    fn clean_report() -> OverlapReport {
        OverlapReport {
            rank: 0,
            elapsed: 10_000,
            user_compute_time: 4_000,
            comm_call_time: 1_000,
            total: clean_stats(),
            bin_labels: vec!["0-4K".into()],
            by_bin: vec![clean_stats()],
            sections: Default::default(),
            calls: Default::default(),
            events_recorded: 0,
            queue_flushes: 0,
            anomalies: Default::default(),
            metrics: Default::default(),
        }
    }

    #[test]
    fn clean_report_has_no_violations() {
        assert_eq!(check_report(&clean_report()), Vec::new());
    }

    #[test]
    fn inverted_bounds_are_caught() {
        let mut r = clean_report();
        r.total.min_overlap = 900; // > max 700
        r.by_bin[0].min_overlap = 900;
        let v = check_report(&r);
        assert!(v.iter().any(|v| v.check == "min_le_max"), "{v:?}");
    }

    #[test]
    fn max_beyond_xfer_time_is_caught() {
        let mut r = clean_report();
        r.total.max_overlap = 900; // > data_transfer_time 800
        r.by_bin[0].max_overlap = 900;
        let v = check_report(&r);
        assert!(v.iter().any(|v| v.check == "max_le_xfer"), "{v:?}");
    }

    #[test]
    fn bin_sum_mismatch_is_caught() {
        let mut r = clean_report();
        r.by_bin[0].bytes += 1;
        let v = check_report(&r);
        assert!(v.iter().any(|v| v.check == "bin_sum"), "{v:?}");
    }

    #[test]
    fn case_partition_is_caught() {
        let mut r = clean_report();
        r.total.case_same_call = 0; // 1 + 0 + 0 != 2 transfers
        let v = check_report(&r);
        assert!(v.iter().any(|v| v.check == "case_partition"), "{v:?}");
    }

    #[test]
    fn compute_beyond_elapsed_is_caught() {
        let mut r = clean_report();
        r.user_compute_time = r.elapsed + 1;
        let v = check_report(&r);
        assert!(v.iter().any(|v| v.check == "compute_le_elapsed"), "{v:?}");
    }
}
