//! A counting global allocator for the perf trajectory.
//!
//! The `repro` binary installs [`CountingAlloc`] as its `#[global_allocator]`
//! so `--bench-json` can report how many heap allocations a run performed —
//! the hot-path pooling work (scheduler tokens, the pending-message arena,
//! cached diagnostics) shows up directly in this number. The counter is two
//! relaxed atomic adds per allocation on top of the system allocator, cheap
//! enough to leave on unconditionally.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that counts allocation calls and bytes.
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the counters are
// side-effect-only bookkeeping.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Cumulative `(allocation calls, allocated bytes)` since process start.
/// Only meaningful in binaries that install [`CountingAlloc`]; elsewhere it
/// reads `(0, 0)`.
pub fn snapshot() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// `(calls, bytes)` allocated between two [`snapshot`] readings — the
/// measured-region counters the perf trajectory records so one-time process
/// setup (harness registries, CLI parsing, report serialization) is not
/// attributed to the simulation being measured. The counters are process-wide:
/// a region is attributable to a single harness only when nothing else runs
/// concurrently (`--jobs 1`).
pub fn region(start: (u64, u64), end: (u64, u64)) -> (u64, u64) {
    (end.0.saturating_sub(start.0), end.1.saturating_sub(start.1))
}
