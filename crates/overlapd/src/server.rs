//! The TCP front end: framed ingest and HTTP read side on one port.
//!
//! A connection's first bytes select the protocol:
//!
//! * `OVLP1 ` — the length-framed ingest protocol (see `docs/SERVICE.md`):
//!   a greeting line `OVLP1 <session>\n`, then u32-big-endian-length-prefixed
//!   frames of JSONL text (frames may split lines; the server carries the
//!   partial line), a zero-length frame to finish, one reply line
//!   (`ok events=<n>\n` or `err <one-line reason>\n`).
//! * anything else — HTTP/1.1 ([`crate::http`]): `POST
//!   /v1/sessions/<name>` uploads (Content-Length or chunked), `GET`
//!   endpoints for live reports, windowed series, fleet view, and the
//!   on-demand artifacts.
//!
//! Frames and uploads are folded under the session lock before the next
//! read, so TCP flow control is the ingest backpressure — the server never
//! queues unbounded data behind a slow fold.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use overlap_core::stream::StreamError;

use crate::http;
use crate::service::Service;

/// Largest accepted ingest frame, bytes. Bounds per-connection buffering;
/// clients split at line boundaries well below this.
pub const MAX_FRAME: usize = 1 << 20;

/// The listening server. Construct with [`Server::bind`], then either call
/// [`Server::run`] on a dedicated thread or integrate
/// [`Server::handle`]-driven shutdown into your own lifecycle.
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    active: Arc<(Mutex<usize>, Condvar)>,
}

/// A cheap clonable handle for stopping a running server from another
/// thread (or from the `POST /v1/shutdown` endpoint).
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Request graceful shutdown: stop accepting, finish in-flight
    /// connections. Idempotent.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

impl Server {
    /// Bind to `addr` (e.g. `127.0.0.1:7077`, or port 0 for ephemeral) and
    /// serve `service`.
    pub fn bind<A: ToSocketAddrs>(addr: A, service: Arc<Service>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            service,
            shutdown: Arc::new(AtomicBool::new(false)),
            active: Arc::new((Mutex::new(0), Condvar::new())),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle for this server.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shutdown: self.shutdown.clone(),
        })
    }

    /// Accept and serve until [`ServerHandle::shutdown`] (or the shutdown
    /// endpoint) fires, then drain in-flight connections (bounded wait) and
    /// return.
    pub fn run(self) -> io::Result<()> {
        let handle = self.handle()?;
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(x) => x,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let service = self.service.clone();
            let conn_handle = handle.clone();
            let active = self.active.clone();
            {
                let (lock, _) = &*active;
                *lock.lock().unwrap_or_else(|e| e.into_inner()) += 1;
            }
            std::thread::spawn(move || {
                let _ = handle_conn(stream, &service, &conn_handle);
                let (lock, cv) = &*active;
                *lock.lock().unwrap_or_else(|e| e.into_inner()) -= 1;
                cv.notify_all();
            });
        }
        // Graceful drain: give in-flight connections a bounded window.
        let deadline = Instant::now() + Duration::from_secs(10);
        let (lock, cv) = &*self.active;
        let mut g = lock.lock().unwrap_or_else(|e| e.into_inner());
        while *g > 0 && Instant::now() < deadline {
            let (ng, _) = cv
                .wait_timeout(g, Duration::from_millis(100))
                .unwrap_or_else(|e| e.into_inner());
            g = ng;
        }
        Ok(())
    }
}

fn handle_conn(stream: TcpStream, service: &Service, handle: &ServerHandle) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let head = reader.fill_buf()?;
    if head.starts_with(b"OVLP1 ") || (head.len() < 6 && b"OVLP1 ".starts_with(head)) {
        serve_framed(&mut reader, &mut writer, service)
    } else {
        serve_http(&mut reader, &mut writer, service, handle)
    }
}

/// The framed ingest path. Replies exactly one line and returns.
fn serve_framed<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    service: &Service,
) -> io::Result<()> {
    let mut greeting = String::new();
    reader.read_line(&mut greeting)?;
    let session_name = match greeting.trim_end().strip_prefix("OVLP1 ") {
        Some(name) if !name.is_empty() => name.to_string(),
        _ => {
            writer.write_all(b"err malformed greeting (want `OVLP1 <session>`)\n")?;
            return writer.flush();
        }
    };
    let session = service.session(&session_name);
    let before = session
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .event_lines();
    let mut carry: Vec<u8> = Vec::new();
    loop {
        let mut len_buf = [0u8; 4];
        if let Err(e) = reader.read_exact(&mut len_buf) {
            writer.write_all(format!("err stream truncated mid-frame: {e}\n").as_bytes())?;
            return writer.flush();
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        if len == 0 {
            break;
        }
        if len > MAX_FRAME {
            writer.write_all(
                format!("err frame of {len} bytes exceeds the {MAX_FRAME} byte limit\n").as_bytes(),
            )?;
            return writer.flush();
        }
        let start = carry.len();
        carry.resize(start + len, 0);
        if let Err(e) = reader.read_exact(&mut carry[start..]) {
            writer.write_all(format!("err stream truncated mid-frame: {e}\n").as_bytes())?;
            return writer.flush();
        }
        // Fold every complete line; keep the partial tail for the next
        // frame. The fold runs under the session lock *before* the next
        // read — that synchronous apply is the backpressure.
        let cut = match carry.iter().rposition(|&b| b == b'\n') {
            Some(i) => i + 1,
            None => continue,
        };
        if let Err(e) = push_bytes(&session, &carry[..cut]) {
            writer.write_all(format!("err {e}\n").as_bytes())?;
            return writer.flush();
        }
        carry.drain(..cut);
    }
    if !carry.is_empty() {
        if let Err(e) = push_bytes(&session, &carry) {
            writer.write_all(format!("err {e}\n").as_bytes())?;
            return writer.flush();
        }
    }
    let after = session
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .event_lines();
    writer.write_all(format!("ok events={}\n", after - before).as_bytes())?;
    writer.flush()
}

/// Fold a block of complete lines into the session. Returns the one-line
/// reason on refusal.
fn push_bytes(
    session: &Mutex<overlap_core::stream::SessionFold>,
    bytes: &[u8],
) -> Result<(), String> {
    let text = std::str::from_utf8(bytes).map_err(|e| format!("stream is not UTF-8: {e}"))?;
    let mut s = session.lock().unwrap_or_else(|e| e.into_inner());
    s.push_text(text).map_err(|e: StreamError| e.to_string())
}

/// The HTTP path: one request, one response.
fn serve_http<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    service: &Service,
    handle: &ServerHandle,
) -> io::Result<()> {
    let req = match http::read_request(reader) {
        Ok(Some(req)) => req,
        Ok(None) => return Ok(()),
        Err(e) => {
            return http::respond(writer, 400, Some("text/plain"), format!("{e}\n").as_bytes())
        }
    };
    let segs: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segs.as_slice()) {
        ("GET", ["healthz"]) => http::respond(writer, 200, Some("text/plain"), b"ok\n"),
        ("GET", ["v1", "sessions"]) => json(writer, &service.list()),
        ("GET", ["v1", "fleet"]) => json(writer, &service.fleet()),
        ("POST", ["v1", "shutdown"]) => {
            let r = http::respond(writer, 200, Some("text/plain"), b"shutting down\n");
            handle.shutdown();
            r
        }
        ("POST", ["v1", "sessions", name]) => {
            let session = service.session(name);
            match push_bytes(&session, &req.body) {
                Ok(()) => {
                    let events = session
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .event_lines();
                    http::respond(
                        writer,
                        200,
                        Some("text/plain"),
                        format!("ok events={events}\n").as_bytes(),
                    )
                }
                Err(e) => {
                    http::respond(writer, 400, Some("text/plain"), format!("{e}\n").as_bytes())
                }
            }
        }
        ("GET", ["v1", "sessions", name, what]) => {
            let Some(session) = service.get(name) else {
                return http::respond(writer, 404, Some("text/plain"), b"no such session\n");
            };
            let mut s = session.lock().unwrap_or_else(|e| e.into_inner());
            match *what {
                "report" => json(writer, &s.report()),
                "series" => {
                    let width = match req.query.get("window_ns") {
                        Some(v) => match v.parse::<u64>() {
                            Ok(n) if n > 0 => Some(n),
                            _ => {
                                return http::respond(
                                    writer,
                                    400,
                                    Some("text/plain"),
                                    b"window_ns must be a positive integer\n",
                                )
                            }
                        },
                        None => None,
                    };
                    json(writer, &s.series(width))
                }
                "waits" => json(writer, &s.wait_states()),
                // The artifact endpoints serve the exact batch file bytes:
                // pretty JSON for the attribution artifact, plain text for
                // the collapsed stacks.
                "attribution.json" => {
                    let art = s.attribution(name);
                    let body = serde_json::to_string_pretty(&art).expect("artifact serializes");
                    http::respond(writer, 200, None, body.as_bytes())
                }
                "critpath.folded" => {
                    http::respond(writer, 200, Some("text/plain"), s.collapsed().as_bytes())
                }
                _ => http::respond(writer, 404, Some("text/plain"), b"unknown endpoint\n"),
            }
        }
        (_, ["healthz" | "v1", ..]) => {
            http::respond(writer, 405, Some("text/plain"), b"method not allowed\n")
        }
        _ => http::respond(writer, 404, Some("text/plain"), b"unknown endpoint\n"),
    }
}

fn json<W: Write, T: serde::Serialize>(writer: &mut W, value: &T) -> io::Result<()> {
    let body = serde_json::to_string(value).expect("endpoint value serializes");
    http::respond(writer, 200, None, body.as_bytes())
}
