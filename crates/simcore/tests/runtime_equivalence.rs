//! Scheduler-equivalence property tests: the coroutine (fiber) runtime and
//! the OS-thread runtime must produce byte-identical simulations.
//!
//! [`RankRuntime`] is documented as a performance-only knob — both drivers
//! observe the identical `(time, seq)` entry stream. These tests pin that
//! contract on random workloads: same-time event ties, park/wake traffic,
//! token dispatch order, and oracle-permuted schedules all have to agree
//! between the two runtimes, down to the recorded choice traces.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use simcore::{
    Activity, ChoiceRec, OracleHandle, RandomOracle, RankRuntime, SimOpts, Simulation, Time,
};

fn opts(runtime: RankRuntime) -> SimOpts {
    SimOpts {
        runtime,
        ..SimOpts::default()
    }
}

/// One run's full observable surface, Debug-rendered so any divergence
/// (activity boundaries, token order, choice trace) fails the comparison.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    end_time: Time,
    events_processed: u64,
    activity: String,
    tokens: Vec<u64>,
    choices: Vec<ChoiceRec>,
}

/// Run a workload of timed token events (ties included) against ranks that
/// mix compute, library busy-work, and park/wake traffic.
fn run_workload(
    runtime: RankRuntime,
    ranks: usize,
    events: &[(u64, u64)],
    segments: &[(u64, bool)],
    oracle_seed: Option<u64>,
) -> Fingerprint {
    let sim = Simulation::new(ranks);
    let handle = sim.handle();
    let tokens: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&tokens);
    handle.set_token_handler(move |_h, tok| {
        sink.lock().push(tok);
    });
    let oracle = oracle_seed.map(|seed| OracleHandle::new(Box::new(RandomOracle::new(seed))));
    if let Some(orc) = &oracle {
        handle.set_oracle(orc.clone());
    }
    for &(t, tok) in events {
        handle.schedule_token(t, tok);
        // Every event also wakes rank 0, the only rank that parks, so the
        // run can never wedge regardless of the random schedule.
        handle.schedule_at(t, |h| h.wake_rank(0));
    }
    let max_t = events.iter().map(|&(t, _)| t).max().unwrap_or(0);
    handle.schedule_at(max_t + 1, |h| h.wake_rank(0));
    let segs: Vec<(u64, bool)> = segments.to_vec();
    let out = sim
        .run(opts(runtime), move |ctx| {
            if ctx.rank() == 0 {
                ctx.park();
            }
            for &(d, compute) in &segs {
                if compute {
                    ctx.compute(d);
                } else {
                    ctx.busy(d, Activity::Library);
                }
            }
        })
        .unwrap();
    let tokens = tokens.lock().clone();
    Fingerprint {
        end_time: out.end_time,
        events_processed: out.events_processed,
        activity: format!("{:?}", out.activity),
        tokens,
        choices: oracle.map(|o| o.trace()).unwrap_or_default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Canonical (oracle-less) schedules: random timed tokens — duplicated
    /// times force same-time ties — and random rank programs agree between
    /// the fiber and thread runtimes.
    #[test]
    fn runtimes_agree_on_random_workloads(
        events in prop::collection::vec((0u64..2_000, 0u64..1_000), 1..40),
        segments in prop::collection::vec((1u64..3_000, any::<bool>()), 0..20),
        ranks in 1usize..5,
    ) {
        let a = run_workload(RankRuntime::Coroutine, ranks, &events, &segments, None);
        let b = run_workload(RankRuntime::OsThreads, ranks, &events, &segments, None);
        prop_assert_eq!(a, b);
    }

    /// Oracle-permuted schedules: a seeded [`RandomOracle`] resolves every
    /// same-time tie. Both runtimes must present the identical choice-point
    /// sequence (pinned via the recorded trace) and land on the identical
    /// outcome.
    #[test]
    fn runtimes_agree_under_random_oracle(
        // Few distinct times over many events maximizes tie arity.
        events in prop::collection::vec((0u64..8, 0u64..1_000), 2..40),
        segments in prop::collection::vec((1u64..500, any::<bool>()), 0..10),
        ranks in 1usize..4,
        seed in any::<u64>(),
    ) {
        let a = run_workload(RankRuntime::Coroutine, ranks, &events, &segments, Some(seed));
        let b = run_workload(RankRuntime::OsThreads, ranks, &events, &segments, Some(seed));
        prop_assert!(!a.choices.is_empty() || events.len() < 2,
            "expected the oracle to be consulted on tied events");
        prop_assert_eq!(a, b);
    }

    /// Synthetic `ProgressWake` consultations (the choice point the
    /// async-rank progress model raises between compute slices) interleaved
    /// with the event stream: both runtimes must present the identical
    /// consultation sequence and agree on the outcome.
    #[test]
    fn runtimes_agree_with_progress_wake_choice_points(
        events in prop::collection::vec((0u64..1_000, 0u64..1_000), 1..20),
        slices in prop::collection::vec(1u64..2_000, 1..12),
        ranks in 1usize..4,
        seed in any::<u64>(),
    ) {
        use simcore::ChoicePoint;
        let run = |runtime: RankRuntime| {
            let sim = Simulation::new(ranks);
            let handle = sim.handle();
            let tokens: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
            let sink = Arc::clone(&tokens);
            handle.set_token_handler(move |_h, tok| {
                sink.lock().push(tok);
            });
            let oracle = OracleHandle::new(Box::new(RandomOracle::new(seed)));
            handle.set_oracle(oracle.clone());
            for &(t, tok) in &events {
                handle.schedule_token(t, tok);
            }
            let slices = slices.clone();
            let orc = oracle.clone();
            let out = sim
                .run(opts(runtime), move |ctx| {
                    let rank = ctx.rank();
                    for (i, &d) in slices.iter().enumerate() {
                        ctx.compute(d);
                        // Mirror the async-rank fiber: consult the oracle at
                        // every poll boundary, skipping on pick == 1.
                        let pick = orc.choose(ChoicePoint::ProgressWake { rank, n: 2 });
                        if pick == 0 {
                            ctx.busy(1 + (i as u64 % 3), Activity::Library);
                        }
                    }
                })
                .unwrap();
            let toks = tokens.lock().clone();
            (out.end_time, out.events_processed, format!("{:?}", out.activity), toks, oracle.trace())
        };
        let a = run(RankRuntime::Coroutine);
        let b = run(RankRuntime::OsThreads);
        prop_assert!(a.4.iter().any(|c| c.kind == 4),
            "expected ProgressWake consultations in the trace");
        prop_assert_eq!(a, b);
    }
}
