//! `repro serve` / `repro push` — the CLI front of the `overlapd` service.
//!
//! ```text
//! repro serve --addr 127.0.0.1:7077       # run the analysis service
//! repro push out/fig03.events.jsonl --to 127.0.0.1:7077
//! repro push run.jsonl --to HOST:PORT --session my-run
//! ```
//!
//! `serve` blocks until `POST /v1/shutdown`. `push` streams one exported
//! `.events.jsonl` file over the framed protocol; the session name defaults
//! to the file stem (`fig03.events.jsonl` → `fig03`). A server refusal
//! (schema mismatch, malformed stream) exits 2 with the server's one-line
//! reason; transport failures exit 1.

use std::path::Path;
use std::sync::Arc;

use overlapd::{push_file, PushError, Server, Service};

/// `repro serve` entry point. Returns the process exit code.
pub fn serve_main(args: &[String]) -> i32 {
    let mut addr = "127.0.0.1:7077".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => {
                    eprintln!("repro serve: --addr requires a host:port value");
                    return 2;
                }
            },
            a if a.starts_with("--addr=") => addr = a["--addr=".len()..].to_string(),
            a => {
                eprintln!("repro serve: unknown argument {a:?}");
                return 2;
            }
        }
    }
    let service = Arc::new(Service::default());
    let server = match Server::bind(&addr, service) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("repro serve: cannot bind {addr}: {e}");
            return 2;
        }
    };
    match server.local_addr() {
        Ok(bound) => eprintln!("overlapd: listening on {bound}"),
        Err(_) => eprintln!("overlapd: listening on {addr}"),
    }
    match server.run() {
        Ok(()) => {
            eprintln!("overlapd: shut down");
            0
        }
        Err(e) => {
            eprintln!("repro serve: {e}");
            1
        }
    }
}

/// Default session name for a pushed file: the stem, with a trailing
/// `.events` (from `<id>.events.jsonl`) stripped.
pub fn session_for(path: &Path) -> String {
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("session");
    stem.strip_suffix(".events").unwrap_or(stem).to_string()
}

/// `repro push` entry point. Returns the process exit code (2 on server
/// refusal, e.g. schema mismatch).
pub fn push_main(args: &[String]) -> i32 {
    let mut file: Option<String> = None;
    let mut to: Option<String> = None;
    let mut session: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--to" => match it.next() {
                Some(v) => to = Some(v.clone()),
                None => {
                    eprintln!("repro push: --to requires a host:port value");
                    return 2;
                }
            },
            "--session" => match it.next() {
                Some(v) => session = Some(v.clone()),
                None => {
                    eprintln!("repro push: --session requires a name");
                    return 2;
                }
            },
            a if a.starts_with("--to=") => to = Some(a["--to=".len()..].to_string()),
            a if a.starts_with("--session=") => session = Some(a["--session=".len()..].to_string()),
            a if a.starts_with('-') => {
                eprintln!("repro push: unknown flag {a:?}");
                return 2;
            }
            a => {
                if file.replace(a.to_string()).is_some() {
                    eprintln!("repro push: exactly one <events.jsonl> file expected");
                    return 2;
                }
            }
        }
    }
    let Some(file) = file else {
        eprintln!(
            "repro push: usage: repro push <events.jsonl> --to <host:port> [--session <name>]"
        );
        return 2;
    };
    let Some(to) = to else {
        eprintln!("repro push: --to <host:port> is required");
        return 2;
    };
    let path = Path::new(&file);
    let session = session.unwrap_or_else(|| session_for(path));
    match push_file(&to, &session, path) {
        Ok(events) => {
            eprintln!("pushed {events} events to {to} as session {session:?}");
            0
        }
        Err(PushError::Refused(msg)) => {
            eprintln!("repro push: server refused stream: {msg}");
            2
        }
        Err(e) => {
            eprintln!("repro push: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_name_strips_events_suffix() {
        assert_eq!(session_for(Path::new("out/fig03.events.jsonl")), "fig03");
        assert_eq!(session_for(Path::new("run.jsonl")), "run");
        assert_eq!(session_for(Path::new("plain")), "plain");
    }

    #[test]
    fn push_requires_file_and_target() {
        assert_eq!(push_main(&[]), 2);
        assert_eq!(push_main(&["x.jsonl".to_string()]), 2);
        assert_eq!(
            push_main(&[
                "a".to_string(),
                "b".to_string(),
                "--to".to_string(),
                "x".to_string()
            ]),
            2
        );
    }
}
