//! Process-wide progress-model override for the harness registry.
//!
//! Harnesses are plain `fn() -> Series` entry points, so `repro --progress
//! <model>` can't thread a parameter through the registry. Instead the CLI
//! stores the parsed model here once, and every MPI harness routes its
//! [`MpiConfig`] through [`apply`] before running. With no override set,
//! [`apply`] is the identity — the default polling model stays
//! byte-identical to the pre-model simulator, which is what the golden
//! tests pin.

use std::sync::OnceLock;

use simmpi::{MpiConfig, ProgressModel};

static OVERRIDE: OnceLock<ProgressModel> = OnceLock::new();

/// Install the process-wide progress-model override. First caller wins;
/// later calls are ignored (the CLI parses at most one `--progress` flag).
pub fn set(model: ProgressModel) {
    let _ = OVERRIDE.set(model);
}

/// The installed override, if any.
pub fn get() -> Option<ProgressModel> {
    OVERRIDE.get().copied()
}

/// Route a harness's library config through the override: replaces the
/// progress model when one was installed, otherwise returns `cfg`
/// unchanged.
pub fn apply(mut cfg: MpiConfig) -> MpiConfig {
    if let Some(model) = get() {
        cfg.progress = model;
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_without_override_is_identity() {
        // NB: must not call `set` here — the override is process-global and
        // would leak into sibling tests.
        let cfg = apply(MpiConfig::default());
        assert_eq!(cfg.progress, ProgressModel::Polling);
    }
}
