//! Deterministic fault injection for the fabric.
//!
//! A [`FaultPlan`] describes, ahead of time, how the fabric misbehaves:
//! random packet drops / duplications / extra delays (seeded, so runs are
//! bit-reproducible), transient per-link degradation windows, and NIC stall
//! intervals. The plan lives in [`crate::NetConfig`] and is applied by
//! [`crate::World`] at the packet-delivery point of two-sided sends — the
//! operations a software reliability layer must protect. One-sided RDMA
//! operations model hardware-reliable channels and are not perturbed.
//!
//! An empty plan (the default) draws no random numbers and takes no branch
//! that alters delivery, so fault-free runs are byte-identical to a build
//! without this module.

use serde::{Deserialize, Serialize};
use simcore::Time;

/// A transient window during which one directed link is degraded: every
/// packet leaving `src` for `dst` with a DMA start inside `[from, until)`
/// arrives `extra_delay` ns later than the healthy cost model predicts.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkDegradation {
    /// Source node of the affected directed link.
    pub src: usize,
    /// Destination node of the affected directed link.
    pub dst: usize,
    /// Start of the degradation window (inclusive, virtual ns).
    pub from: Time,
    /// End of the degradation window (exclusive, virtual ns).
    pub until: Time,
    /// Extra one-way delay added while the window is active.
    pub extra_delay: u64,
}

/// A window during which one node's NIC stalls: packets that would arrive
/// inside `[from, until)` are held and delivered at `until` instead.
#[derive(Debug, Clone, PartialEq)]
pub struct NicStall {
    /// The stalled node.
    pub node: usize,
    /// Start of the stall (inclusive, virtual ns).
    pub from: Time,
    /// End of the stall (exclusive, virtual ns); held packets land here.
    pub until: Time,
}

/// A seeded, declarative description of fabric misbehavior for one run.
///
/// Probabilities are evaluated per two-sided packet in posting order with a
/// splitmix64 stream seeded from `seed`, so a fixed plan yields a
/// bit-identical fault sequence on every run. [`FaultPlan::none`] (the
/// `Default`) is recognized by [`FaultPlan::is_empty`] and short-circuits
/// all fault logic.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-packet random draws.
    pub seed: u64,
    /// Probability that a packet is silently dropped in the fabric.
    pub drop_prob: f64,
    /// Probability that a packet is delivered twice.
    pub duplicate_prob: f64,
    /// Probability that a packet is delayed by a random extra amount.
    pub delay_prob: f64,
    /// Upper bound (inclusive) on the random extra delay, in ns.
    pub max_extra_delay: u64,
    /// Transient per-link degradation windows.
    pub degraded_links: Vec<LinkDegradation>,
    /// NIC stall intervals.
    pub nic_stalls: Vec<NicStall>,
    /// Width of the schedule-exploration jitter window, in ns. When nonzero
    /// *and* a schedule oracle is installed, the oracle may delay each
    /// two-sided packet's arrival by one of [`FaultPlan::jitter_steps`]
    /// discrete offsets in `[0, explore_jitter_ns]` — choice 0 (and every
    /// run without an oracle, e.g. under the canonical engine) adds nothing.
    pub explore_jitter_ns: u64,
    /// Number of discrete jitter offsets, including the zero offset.
    /// Values below 2 fall back to 4.
    pub explore_jitter_steps: u32,
}

impl FaultPlan {
    /// The empty plan: a perfectly healthy fabric.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            delay_prob: 0.0,
            max_extra_delay: 0,
            degraded_links: Vec::new(),
            nic_stalls: Vec::new(),
            explore_jitter_ns: 0,
            explore_jitter_steps: 0,
        }
    }

    /// Uniform random loss at rate `p` on every two-sided packet.
    pub fn uniform_loss(seed: u64, p: f64) -> Self {
        FaultPlan {
            seed,
            drop_prob: p,
            ..FaultPlan::none()
        }
    }

    /// Does this plan inject any fault at all? Empty plans must take the
    /// exact fault-free code path in the world.
    pub fn is_empty(&self) -> bool {
        self.drop_prob == 0.0
            && self.duplicate_prob == 0.0
            && self.delay_prob == 0.0
            && self.degraded_links.is_empty()
            && self.nic_stalls.is_empty()
            && self.explore_jitter_ns == 0
    }

    /// Effective number of discrete jitter offsets the oracle chooses from
    /// (see [`FaultPlan::explore_jitter_ns`]).
    pub fn jitter_steps(&self) -> u32 {
        if self.explore_jitter_steps >= 2 {
            self.explore_jitter_steps
        } else {
            4
        }
    }

    /// The extra delay for jitter step `step` (step 0 is always 0 ns; the
    /// last step is the full window).
    pub fn jitter_delay(&self, step: u32) -> u64 {
        let steps = self.jitter_steps();
        (self.explore_jitter_ns * u64::from(step.min(steps - 1))) / u64::from(steps - 1)
    }

    /// Total extra delay the degradation windows add to a packet leaving
    /// `src` for `dst` at `when`.
    pub fn degradation_delay(&self, src: usize, dst: usize, when: Time) -> u64 {
        self.degraded_links
            .iter()
            .filter(|d| d.src == src && d.dst == dst && d.from <= when && when < d.until)
            .map(|d| d.extra_delay)
            .sum()
    }

    /// Earliest time a packet arriving at `node` at `when` can actually be
    /// delivered, given the NIC stall windows (`when` if no stall covers it).
    pub fn stall_release(&self, node: usize, when: Time) -> Time {
        self.nic_stalls
            .iter()
            .filter(|s| s.node == node && s.from <= when && when < s.until)
            .map(|s| s.until)
            .fold(when, Time::max)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// What the fault layer did to one packet. Recorded in the world's ground
/// truth so tests and harnesses can correlate observed anomalies (timeouts,
/// retransmissions, clamped bounds) with the injected cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The packet was silently dropped; the sender's completion still fires
    /// (the NIC saw the bytes leave).
    Dropped,
    /// A second copy of the packet was delivered after the first.
    Duplicated,
    /// Random extra delay added to the packet's arrival.
    Delayed {
        /// The extra delay, in ns.
        extra: u64,
    },
    /// A degradation window on the link added deterministic extra delay.
    LinkDegraded {
        /// The extra delay, in ns.
        extra: u64,
    },
    /// The destination NIC was stalled; delivery slipped to the window end.
    NicStalled {
        /// When the packet was actually delivered.
        released_at: Time,
    },
}

impl FaultKind {
    /// Stable lowercase tag for this fault kind (trace/export naming).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Dropped => "dropped",
            FaultKind::Duplicated => "duplicated",
            FaultKind::Delayed { .. } => "delayed",
            FaultKind::LinkDegraded { .. } => "link_degraded",
            FaultKind::NicStalled { .. } => "nic_stalled",
        }
    }
}

impl FaultEvent {
    /// One-line human-readable description of the affected packet and the
    /// fault parameters (used as the `detail` of trace fault markers).
    pub fn describe(&self) -> String {
        let extra = match self.kind {
            FaultKind::Delayed { extra } | FaultKind::LinkDegraded { extra } => {
                format!(" extra {extra} ns")
            }
            FaultKind::NicStalled { released_at } => format!(" released at {released_at} ns"),
            _ => String::new(),
        };
        format!("{} -> {} ty {}{extra}", self.src, self.dst, self.packet_ty)
    }
}

/// Ground-truth record of one fault-layer decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual time of the posting that triggered the decision.
    pub at: Time,
    /// Source node of the affected packet.
    pub src: usize,
    /// Destination node of the affected packet.
    pub dst: usize,
    /// Library packet-type discriminator of the affected packet.
    pub packet_ty: u16,
    /// What happened.
    pub kind: FaultKind,
}

/// Deterministic splitmix64 stream for per-packet fault draws.
#[derive(Debug, Clone)]
pub(crate) struct FaultRng {
    state: u64,
}

impl FaultRng {
    pub(crate) fn new(seed: u64) -> Self {
        FaultRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// `true` with probability `p` (53 uniform mantissa bits).
    pub(crate) fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Uniform draw from `0..=max`.
    pub(crate) fn below_inclusive(&mut self, max: u64) -> u64 {
        if max == 0 {
            return 0;
        }
        self.next_u64() % (max + 1)
    }
}

// Manual serde impls: the derive in the vendored `serde_derive` handles flat
// structs, but spelling these out keeps the on-disk shape explicit and stable
// for configs checked into experiment scripts.
impl Serialize for FaultPlan {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("seed".into(), self.seed.to_value()),
            ("drop_prob".into(), self.drop_prob.to_value()),
            ("duplicate_prob".into(), self.duplicate_prob.to_value()),
            ("delay_prob".into(), self.delay_prob.to_value()),
            ("max_extra_delay".into(), self.max_extra_delay.to_value()),
            ("degraded_links".into(), self.degraded_links.to_value()),
            ("nic_stalls".into(), self.nic_stalls.to_value()),
            (
                "explore_jitter_ns".into(),
                self.explore_jitter_ns.to_value(),
            ),
            (
                "explore_jitter_steps".into(),
                self.explore_jitter_steps.to_value(),
            ),
        ])
    }
}

impl Deserialize for FaultPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        // Configs written before fault injection existed have no `faults`
        // key; treat its absence as the empty plan.
        if v.is_null() {
            return Ok(FaultPlan::none());
        }
        Ok(FaultPlan {
            seed: Deserialize::from_value(v.field("seed"))?,
            drop_prob: Deserialize::from_value(v.field("drop_prob"))?,
            duplicate_prob: Deserialize::from_value(v.field("duplicate_prob"))?,
            delay_prob: Deserialize::from_value(v.field("delay_prob"))?,
            max_extra_delay: Deserialize::from_value(v.field("max_extra_delay"))?,
            degraded_links: Deserialize::from_value(v.field("degraded_links"))?,
            nic_stalls: Deserialize::from_value(v.field("nic_stalls"))?,
            // Absent in configs written before the schedule explorer: 0.
            explore_jitter_ns: Deserialize::from_value(v.field("explore_jitter_ns")).unwrap_or(0),
            explore_jitter_steps: Deserialize::from_value(v.field("explore_jitter_steps"))
                .unwrap_or(0),
        })
    }
}

impl Serialize for LinkDegradation {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("src".into(), self.src.to_value()),
            ("dst".into(), self.dst.to_value()),
            ("from".into(), self.from.to_value()),
            ("until".into(), self.until.to_value()),
            ("extra_delay".into(), self.extra_delay.to_value()),
        ])
    }
}

impl Deserialize for LinkDegradation {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(LinkDegradation {
            src: Deserialize::from_value(v.field("src"))?,
            dst: Deserialize::from_value(v.field("dst"))?,
            from: Deserialize::from_value(v.field("from"))?,
            until: Deserialize::from_value(v.field("until"))?,
            extra_delay: Deserialize::from_value(v.field("extra_delay"))?,
        })
    }
}

impl Serialize for NicStall {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("node".into(), self.node.to_value()),
            ("from".into(), self.from.to_value()),
            ("until".into(), self.until.to_value()),
        ])
    }
}

impl Deserialize for NicStall {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(NicStall {
            node: Deserialize::from_value(v.field("node"))?,
            from: Deserialize::from_value(v.field("from"))?,
            until: Deserialize::from_value(v.field("until"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::default().is_empty());
        assert!(!FaultPlan::uniform_loss(1, 0.01).is_empty());
        // A plan with only a stall window still counts as faulty.
        let plan = FaultPlan {
            nic_stalls: vec![NicStall {
                node: 0,
                from: 0,
                until: 10,
            }],
            ..FaultPlan::none()
        };
        assert!(!plan.is_empty());
    }

    #[test]
    fn degradation_windows_filter_by_link_and_time() {
        let plan = FaultPlan {
            degraded_links: vec![LinkDegradation {
                src: 0,
                dst: 1,
                from: 100,
                until: 200,
                extra_delay: 50,
            }],
            ..FaultPlan::none()
        };
        assert_eq!(plan.degradation_delay(0, 1, 150), 50);
        assert_eq!(plan.degradation_delay(0, 1, 200), 0); // exclusive end
        assert_eq!(plan.degradation_delay(0, 1, 99), 0);
        assert_eq!(plan.degradation_delay(1, 0, 150), 0); // directed
    }

    #[test]
    fn stall_release_pushes_past_window() {
        let plan = FaultPlan {
            nic_stalls: vec![NicStall {
                node: 2,
                from: 1_000,
                until: 5_000,
            }],
            ..FaultPlan::none()
        };
        assert_eq!(plan.stall_release(2, 3_000), 5_000);
        assert_eq!(plan.stall_release(2, 5_000), 5_000); // exclusive end
        assert_eq!(plan.stall_release(1, 3_000), 3_000);
    }

    #[test]
    fn fault_rng_is_deterministic() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = FaultRng::new(7);
        let mut hits = 0;
        for _ in 0..10_000 {
            if c.chance(0.1) {
                hits += 1;
            }
        }
        // Loose sanity band around the expected 1000.
        assert!((700..1300).contains(&hits), "hits = {hits}");
        assert!(!FaultRng::new(0).chance(0.0));
        assert_eq!(FaultRng::new(0).below_inclusive(0), 0);
        let d = FaultRng::new(3).below_inclusive(10);
        assert!(d <= 10);
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = FaultPlan {
            seed: 9,
            drop_prob: 0.05,
            duplicate_prob: 0.01,
            delay_prob: 0.1,
            max_extra_delay: 2_000,
            degraded_links: vec![LinkDegradation {
                src: 0,
                dst: 3,
                from: 10,
                until: 20,
                extra_delay: 7,
            }],
            nic_stalls: vec![NicStall {
                node: 1,
                from: 5,
                until: 6,
            }],
            explore_jitter_ns: 500,
            explore_jitter_steps: 3,
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn jitter_steps_and_delays() {
        let plan = FaultPlan {
            explore_jitter_ns: 900,
            explore_jitter_steps: 4,
            ..FaultPlan::none()
        };
        assert!(!plan.is_empty());
        assert_eq!(plan.jitter_steps(), 4);
        assert_eq!(plan.jitter_delay(0), 0);
        assert_eq!(plan.jitter_delay(1), 300);
        assert_eq!(plan.jitter_delay(3), 900);
        assert_eq!(plan.jitter_delay(99), 900); // clamped
                                                // steps < 2 falls back to 4
        let p2 = FaultPlan {
            explore_jitter_ns: 300,
            ..FaultPlan::none()
        };
        assert_eq!(p2.jitter_steps(), 4);
        assert_eq!(p2.jitter_delay(3), 300);
    }
}
