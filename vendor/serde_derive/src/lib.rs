//! Minimal offline stand-in for `serde_derive`.
//!
//! Generates impls of the simplified `serde::Serialize` / `serde::Deserialize`
//! traits (the Value-based data model of the local `serde` stub) without
//! depending on `syn`/`quote`. Supports exactly what this workspace derives:
//! non-generic structs with named fields and enums with unit variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named fields of a struct.
    Struct(Vec<String>),
    /// Unit variants of an enum.
    Enum(Vec<String>),
}

/// Derive `serde::Serialize` for a struct with named fields or a unit enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let code = match shape {
        Shape::Struct(fields) => {
            let mut pushes = String::new();
            for f in &fields {
                pushes.push_str(&format!(
                    "__o.push((::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __o: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(__o)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in &variants {
                arms.push_str(&format!("{name}::{v} => \"{v}\",\n"));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(::std::string::String::from(match self {{\n\
                             {arms}\
                         }}))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Derive `serde::Deserialize` for a struct with named fields or a unit enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let code = match shape {
        Shape::Struct(fields) => {
            let mut inits = String::new();
            for f in &fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(__v.field(\"{f}\"))?,\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in &variants {
                arms.push_str(&format!(
                    "::std::option::Option::Some(\"{v}\") => \
                     ::std::result::Result::Ok({name}::{v}),\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v.as_str() {{\n\
                             {arms}\
                             __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 format!(\"unknown {name} variant: {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Extract the type name and shape from the derive input.
fn parse_input(input: TokenStream) -> (String, Shape) {
    let mut it = input.into_iter().peekable();
    let (kind, name) = loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the bracketed group that follows.
                it.next();
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "pub" {
                    // Optional restriction like pub(crate).
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                } else if s == "struct" || s == "enum" {
                    match it.next() {
                        Some(TokenTree::Ident(n)) => break (s, n.to_string()),
                        t => panic!("serde_derive: expected a type name, found {t:?}"),
                    }
                }
            }
            t => panic!("serde_derive: unexpected token {t:?}"),
        }
    };
    let body = loop {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive: generic type `{name}` is not supported")
            }
            Some(_) => continue,
            None => panic!("serde_derive: `{name}` must have a braced body"),
        }
    };
    let names = top_level_names(body, kind == "enum");
    if kind == "struct" {
        (name, Shape::Struct(names))
    } else {
        (name, Shape::Enum(names))
    }
}

/// Split a struct/enum body on top-level commas (tracking `<...>` depth, since
/// angle brackets are plain puncts) and return the field or variant names.
fn top_level_names(body: TokenStream, is_enum: bool) -> Vec<String> {
    let mut chunks: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut depth = 0i64;
    for t in body {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().expect("chunks never empty").push(t);
    }
    let mut names = Vec::new();
    for chunk in chunks {
        let mut it = chunk.into_iter().peekable();
        let mut name = None;
        while let Some(t) = it.next() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    it.next();
                }
                TokenTree::Ident(id) => {
                    let s = id.to_string();
                    if s == "pub" {
                        if let Some(TokenTree::Group(g)) = it.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                it.next();
                            }
                        }
                        continue;
                    }
                    name = Some(s);
                    break;
                }
                t => panic!("serde_derive: unsupported token {t:?} in field list"),
            }
        }
        if let Some(n) = name {
            if is_enum {
                if let Some(TokenTree::Group(_)) = it.peek() {
                    panic!("serde_derive: only unit enum variants are supported");
                }
            }
            names.push(n);
        }
    }
    names
}
