//! Minimal HTTP/1.1 read side for the service endpoints.
//!
//! Deliberately tiny: request line + headers, bodies via `Content-Length`
//! or `Transfer-Encoding: chunked` (the two upload shapes `repro push
//! --http` and `curl -T` produce), one response per connection
//! (`Connection: close`). No dependency beyond the standard library.

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

/// Largest accepted request body (a full `.events.jsonl` upload), bytes.
pub const MAX_BODY: usize = 256 << 20;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, ...).
    pub method: String,
    /// Path component, query string stripped.
    pub path: String,
    /// Decoded query parameters (`k=v`, no percent-decoding — the API uses
    /// plain tokens only).
    pub query: BTreeMap<String, String>,
    /// Request body (empty unless `Content-Length`/chunked said otherwise).
    pub body: Vec<u8>,
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Read one request off the stream. `Ok(None)` means the peer closed before
/// sending a request line.
pub fn read_request<R: BufRead>(r: &mut R) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("empty request line"))?
        .to_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| bad("request line lacks target"))?;
    let (path, query_s) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.to_string(), ""),
    };
    let mut query = BTreeMap::new();
    for pair in query_s.split('&').filter(|s| !s.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(k.to_string(), v.to_string());
    }

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let mut h = String::new();
        if r.read_line(&mut h)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => {
                    content_length = Some(value.parse().map_err(|_| bad("bad Content-Length"))?);
                }
                "transfer-encoding" => {
                    chunked = value.to_ascii_lowercase().contains("chunked");
                }
                _ => {}
            }
        }
    }

    let body = if chunked {
        read_chunked(r)?
    } else if let Some(n) = content_length {
        if n > MAX_BODY {
            return Err(bad("request body exceeds limit"));
        }
        let mut body = vec![0u8; n];
        r.read_exact(&mut body)?;
        body
    } else {
        Vec::new()
    };

    Ok(Some(Request {
        method,
        path,
        query,
        body,
    }))
}

fn read_chunked<R: BufRead>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let mut size_line = String::new();
        if r.read_line(&mut size_line)? == 0 {
            return Err(bad("connection closed mid-chunk"));
        }
        let size_tok = size_line.trim().split(';').next().unwrap_or("").to_string();
        let size = usize::from_str_radix(&size_tok, 16).map_err(|_| bad("bad chunk size line"))?;
        if body.len() + size > MAX_BODY {
            return Err(bad("request body exceeds limit"));
        }
        if size == 0 {
            // Trailer section: read lines until the blank terminator.
            loop {
                let mut t = String::new();
                if r.read_line(&mut t)? == 0 || t.trim_end().is_empty() {
                    break;
                }
            }
            return Ok(body);
        }
        let start = body.len();
        body.resize(start + size, 0);
        r.read_exact(&mut body[start..])?;
        let mut crlf = [0u8; 2];
        r.read_exact(&mut crlf)?;
    }
}

/// Write one response and flush. `content_type` of `None` means
/// `application/json`.
pub fn respond<W: Write>(
    w: &mut W,
    status: u16,
    content_type: Option<&str>,
    body: &[u8],
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        content_type.unwrap_or("application/json"),
        body.len(),
    )?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_get_with_query() {
        let raw = b"GET /v1/sessions/s/series?window_ns=500 HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/sessions/s/series");
        assert_eq!(req.query.get("window_ns").map(String::as_str), Some("500"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_content_length_body() {
        let raw = b"POST /v1/sessions/s HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_chunked_body() {
        let raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn closed_before_request_is_none() {
        let raw = b"";
        assert!(read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .is_none());
    }
}
