//! Figure-reproduction CLI.
//!
//! ```text
//! repro                          # run every figure and ablation
//! repro fig05 fig18              # run selected harnesses
//! repro ablations                # run only the ablation studies
//! repro fig05 ablations          # a figure plus all ablations
//! repro --jobs 4                 # bound the worker pool (default: cores)
//! repro --json report.json       # also write a machine-readable report
//! repro list                     # list available harnesses
//! ```
//!
//! Harnesses run concurrently on `--jobs` workers but print in canonical
//! order, so stdout is byte-identical to a serial (`--jobs 1`) run.

use bench::runner;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let figures = bench::figures::all();
    let ablations = bench::ablations::all();

    let cli = match runner::parse_cli(&args, &figures, &ablations) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("repro: {msg}");
            std::process::exit(2);
        }
    };

    if cli.list {
        println!("figures:");
        for h in &figures {
            println!("  {}", h.id);
        }
        println!("ablations:");
        for h in &ablations {
            println!("  {}", h.id);
        }
        return;
    }

    runner::set_jobs(cli.jobs);
    let t0 = std::time::Instant::now();
    let runs = runner::run_harnesses(&cli.selection, |run| {
        print!("{}", run.series.render());
        println!();
    });

    if let Some(path) = &cli.json {
        let report = runner::RunReport {
            jobs: cli.jobs,
            total_wall_s: t0.elapsed().as_secs_f64(),
            harnesses: runs,
        };
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("repro: cannot write {path:?}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
}
