//! NAS BT (block tridiagonal).
//!
//! Same multipartition structure as SP, but each boundary plane carries 5×5
//! block-matrix data (≈3× SP's volume — "long messages constitute the
//! majority of communication for BT") and the sweeps make *no overlap
//! attempt*: each stage blocks on the incoming plane before computing
//! (receive → compute → send), the NPB BT pattern. The paper runs BT under
//! Open MPI's pipelined RDMA mode (Figure 10).

use simmpi::{Mpi, Src, TagSel};

use crate::class::Class;
use crate::grid::square_side;
use crate::model::{flops_ns, BT_WORK_SCALE, SP_LHS_FLOPS, SP_RHS_FLOPS, SP_SOLVE_FLOPS};

/// BT workload parameters.
#[derive(Debug, Clone)]
pub struct BtParams {
    /// Problem class (grid is `n³`).
    pub class: Class,
    /// Iterations (scaled from NPB's 200).
    pub iterations: usize,
}

impl BtParams {
    /// BT at the given class with scaled iterations.
    pub fn new(class: Class) -> Self {
        BtParams {
            class,
            iterations: 5,
        }
    }

    /// Grid points per side.
    pub fn n(&self) -> usize {
        match self.class {
            Class::S => 12,
            Class::W => 24,
            Class::A => 64,
            Class::B => 102,
        }
    }
}

/// Run BT on the given MPI endpoint. `mpi.nranks()` must be a square.
pub fn run_bt(mpi: &mut Mpi, p: &BtParams) {
    let n = p.n();
    let q = square_side(mpi.nranks());
    let me = mpi.rank();
    let (row, col) = (me / q, me % q);
    let cell = n.div_ceil(q);
    let cell_points = (cell * cell * cell) as f64;
    let local_points = cell_points * q as f64;

    // 5x5 blocks on the boundary: 25 f64 per point (≈3x SP's 5 f64).
    let plane_bytes = cell * cell * 25 * 8;
    let face_bytes = cell * cell * 5 * 8 * q * 3; // copy_faces: 3x SP volume

    let rhs_ns = flops_ns(local_points * SP_RHS_FLOPS * BT_WORK_SCALE);
    let lhs_ns = flops_ns(cell_points * SP_LHS_FLOPS * BT_WORK_SCALE);
    let solve_ns = flops_ns(cell_points * SP_SOLVE_FLOPS * BT_WORK_SCALE);

    let right = row * q + (col + 1) % q;
    let left = row * q + (col + q - 1) % q;
    let down = ((row + 1) % q) * q + col;
    let up = ((row + q - 1) % q) * q + col;

    let face = vec![me as u8; face_bytes];
    let plane = vec![(me as u8).wrapping_add(1); plane_bytes];

    for iter in 0..p.iterations {
        let tag_base = (iter as u64) << 32;

        // copy_faces (same structure as SP, larger volume).
        if q > 1 {
            let reqs = [
                mpi.irecv(Src::Rank(left), TagSel::Is(tag_base + 1)),
                mpi.irecv(Src::Rank(right), TagSel::Is(tag_base + 2)),
                mpi.irecv(Src::Rank(up), TagSel::Is(tag_base + 3)),
                mpi.irecv(Src::Rank(down), TagSel::Is(tag_base + 4)),
            ];
            let s1 = mpi.isend(right, tag_base + 1, &face);
            let s2 = mpi.isend(left, tag_base + 2, &face);
            let s3 = mpi.isend(down, tag_base + 3, &face);
            let s4 = mpi.isend(up, tag_base + 4, &face);
            mpi.waitall(&reqs);
            mpi.waitall(&[s1, s2, s3, s4]);
        }
        mpi.compute(rhs_ns);

        // Three sweeps, no overlap attempt: blocking receive, then compute.
        for (dir, (next, prev)) in [(right, left), (down, up), (right, left)]
            .into_iter()
            .enumerate()
        {
            let tag = tag_base + 10 + dir as u64;
            // Send completions are deferred to the end of the sweep (the
            // downstream receive is posted one stage later).
            let mut pending = Vec::new();
            for stage in 0..q {
                if q > 1 && stage > 0 {
                    mpi.recv(Src::Rank(prev), TagSel::Is(tag));
                }
                mpi.compute(lhs_ns);
                mpi.compute(solve_ns);
                if q > 1 && stage < q - 1 {
                    pending.push(mpi.isend(next, tag, &plane));
                }
            }
            mpi.waitall(&pending);
        }

        mpi.compute(flops_ns(local_points * 8.0 * BT_WORK_SCALE));
    }
}
