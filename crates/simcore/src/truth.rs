//! Ground-truth activity tracking.
//!
//! Every rank records what it spent virtual time on. The simulator — unlike
//! the real hardware the paper ran on — therefore knows the *exact* amount of
//! computation that physically overlapped each data transfer, which lets the
//! test suite validate the instrumentation's min/max bounds.

use crate::intervals::IntervalSet;
use crate::time::Time;

/// What a rank was doing during an interval of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activity {
    /// User computation (the only kind that counts as overlap-eligible work).
    Compute,
    /// Host CPU busy inside the communication library (copies, registration,
    /// protocol processing, polling).
    Library,
    /// Blocked inside the communication library waiting for an event.
    LibraryWait,
}

/// Per-rank log of `(start, end, kind)` activity intervals, in time order.
#[derive(Debug, Clone, Default)]
pub struct ActivityLog {
    entries: Vec<(Time, Time, Activity)>,
}

impl ActivityLog {
    /// Create an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an interval. Zero-length intervals are dropped. Intervals must
    /// be appended in non-decreasing start order (debug-asserted).
    pub fn record(&mut self, start: Time, end: Time, kind: Activity) {
        if start >= end {
            return;
        }
        if let Some(&(_, last_end, last_kind)) = self.entries.last() {
            debug_assert!(start >= last_end, "ActivityLog intervals must not overlap");
            if start == last_end && kind == last_kind {
                self.entries.last_mut().unwrap().1 = end;
                return;
            }
        }
        self.entries.push((start, end, kind));
    }

    /// All recorded entries.
    pub fn entries(&self) -> &[(Time, Time, Activity)] {
        &self.entries
    }

    /// Total time attributed to `kind`.
    pub fn total(&self, kind: Activity) -> u64 {
        self.entries
            .iter()
            .filter(|&&(_, _, k)| k == kind)
            .map(|&(s, e, _)| e - s)
            .sum()
    }

    /// The set of intervals attributed to `kind`.
    pub fn intervals(&self, kind: Activity) -> IntervalSet {
        let mut set = IntervalSet::new();
        for &(s, e, k) in &self.entries {
            if k == kind {
                set.push(s, e);
            }
        }
        set
    }

    /// Ground-truth overlap: how much of `[start, end)` coincided with user
    /// computation on this rank.
    pub fn compute_overlap_with(&self, start: Time, end: Time) -> u64 {
        self.intervals(Activity::Compute).overlap_with(start, end)
    }

    /// End of the last recorded interval (0 if empty).
    pub fn end_time(&self) -> Time {
        self.entries.last().map(|&(_, e, _)| e).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut log = ActivityLog::new();
        log.record(0, 10, Activity::Compute);
        log.record(10, 15, Activity::Library);
        log.record(15, 20, Activity::Compute);
        assert_eq!(log.total(Activity::Compute), 15);
        assert_eq!(log.total(Activity::Library), 5);
        assert_eq!(log.end_time(), 20);
    }

    #[test]
    fn adjacent_same_kind_coalesce() {
        let mut log = ActivityLog::new();
        log.record(0, 5, Activity::Compute);
        log.record(5, 9, Activity::Compute);
        assert_eq!(log.entries().len(), 1);
        assert_eq!(log.entries()[0], (0, 9, Activity::Compute));
    }

    #[test]
    fn zero_length_dropped() {
        let mut log = ActivityLog::new();
        log.record(3, 3, Activity::Library);
        assert!(log.entries().is_empty());
    }

    #[test]
    fn compute_overlap_with_window() {
        let mut log = ActivityLog::new();
        log.record(0, 10, Activity::Compute);
        log.record(10, 20, Activity::LibraryWait);
        log.record(20, 30, Activity::Compute);
        assert_eq!(log.compute_overlap_with(5, 25), 10);
        assert_eq!(log.compute_overlap_with(10, 20), 0);
    }
}
