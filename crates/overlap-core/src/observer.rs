//! PERUSE-style event observation.
//!
//! The paper's framework deliberately does **no tracing** — events fold into
//! running aggregates. But it also "fits well with other performance
//! monitoring approaches that operate outside the library" (Sec. 6), and the
//! PERUSE specification it builds on exists precisely to let external tools
//! see library-internal events. This module provides that interface: an
//! observer hook invoked on every recorded event, plus a ready-made
//! [`TraceSink`] that streams events to a file for offline analysis —
//! strictly optional, so the default path keeps the paper's constant-memory,
//! no-tracing property.

use std::io::Write;

use crate::event::{Event, EventKind};

/// Receives every event the recorder logs (PERUSE-style subscription).
pub trait EventObserver {
    /// Called synchronously for each event, in time order.
    fn on_event(&mut self, e: &Event);
}

impl<F: FnMut(&Event)> EventObserver for F {
    fn on_event(&mut self, e: &Event) {
        self(e)
    }
}

/// Streams events as JSON lines to a writer (a trace file). The contrast to
/// the aggregate-only default is intentional: traces grow with run length,
/// which is exactly the overhead the paper's design avoids.
pub struct TraceSink<W: Write> {
    out: W,
    events_written: u64,
}

impl<W: Write> TraceSink<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> Self {
        TraceSink {
            out,
            events_written: 0,
        }
    }

    /// Events written so far.
    pub fn events_written(&self) -> u64 {
        self.events_written
    }

    /// Unwrap the inner writer (flushes first).
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write> EventObserver for TraceSink<W> {
    fn on_event(&mut self, e: &Event) {
        let line = match e.kind {
            EventKind::CallEnter { name } => {
                format!(r#"{{"t":{},"ev":"call_enter","name":"{}"}}"#, e.t, name)
            }
            EventKind::CallExit => format!(r#"{{"t":{},"ev":"call_exit"}}"#, e.t),
            EventKind::XferBegin { id, bytes } => {
                format!(
                    r#"{{"t":{},"ev":"xfer_begin","id":{},"bytes":{}}}"#,
                    e.t, id, bytes
                )
            }
            EventKind::XferEnd { id, bytes } => {
                format!(
                    r#"{{"t":{},"ev":"xfer_end","id":{},"bytes":{}}}"#,
                    e.t, id, bytes
                )
            }
            EventKind::SectionBegin { name } => {
                format!(r#"{{"t":{},"ev":"section_begin","name":"{}"}}"#, e.t, name)
            }
            EventKind::SectionEnd => format!(r#"{{"t":{},"ev":"section_end"}}"#, e.t),
            EventKind::XferFlag { id } => {
                format!(r#"{{"t":{},"ev":"xfer_flag","id":{}}}"#, e.t, id)
            }
        };
        let _ = writeln!(self.out, "{line}");
        self.events_written += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_observe() {
        let mut count = 0;
        {
            let mut obs = |_: &Event| count += 1;
            obs.on_event(&Event::new(1, EventKind::CallExit));
            obs.on_event(&Event::new(2, EventKind::CallExit));
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn trace_sink_writes_json_lines() {
        let mut sink = TraceSink::new(Vec::new());
        sink.on_event(&Event::new(10, EventKind::CallEnter { name: "MPI_Isend" }));
        sink.on_event(&Event::new(20, EventKind::XferBegin { id: 7, bytes: 512 }));
        sink.on_event(&Event::new(30, EventKind::CallExit));
        assert_eq!(sink.events_written(), 3);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(r#""ev":"call_enter""#));
        assert!(lines[0].contains("MPI_Isend"));
        assert!(lines[1].contains(r#""bytes":512"#));
        // Each line parses as JSON.
        for l in lines {
            let v: serde_json::Value = serde_json::from_str(l).unwrap();
            assert!(v["t"].is_u64());
        }
    }
}
