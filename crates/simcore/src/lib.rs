#![warn(missing_docs)]

//! # simcore — deterministic discrete-event simulation engine
//!
//! `simcore` provides the execution substrate for the overlap-instrumentation
//! suite: a virtual clock, a time-ordered event queue, and a cooperative
//! scheduler that runs each simulated *rank* (process) as a run-to-completion
//! coroutine — a stackful fiber on x86_64 Linux, an OS thread elsewhere or on
//! request (see [`RankRuntime`]) — while guaranteeing **strictly sequential,
//! fully deterministic** execution either way.
//!
//! ## Execution model
//!
//! Application code is written in ordinary imperative style (like an MPI
//! program). A rank interacts with virtual time through its [`RankCtx`]:
//!
//! * [`RankCtx::compute`] / [`RankCtx::busy`] advance the rank's local view of
//!   time while attributing the interval to an [`Activity`] kind (user
//!   computation, in-library processing, ...),
//! * [`RankCtx::park`] blocks the rank until some event handler calls
//!   [`EngineHandle::wake_rank`] — this is how polling progress engines sleep
//!   until "the next event that touches my NIC",
//! * [`EngineHandle::schedule_in`] schedules a state-mutating callback at a
//!   future virtual time (used by the network model for packet deliveries and
//!   DMA completions).
//!
//! Exactly one rank or event callback executes at any moment; ties in the
//! event queue are broken by a monotonically increasing sequence number, so a
//! simulation is a deterministic function of its inputs.
//!
//! ## Ground truth
//!
//! Each rank records an [`ActivityLog`] of `(start, end, kind)` intervals.
//! Combined with the network layer's physical transfer intervals this yields
//! the *true* computation-communication overlap, which the instrumentation
//! framework's min/max bounds are validated against — something the original
//! paper could not do on real hardware.
//!
//! ## Schedule exploration
//!
//! The fixed tie-break policy is one schedule out of many a real system
//! could exhibit. Installing a [`ScheduleOracle`] (via
//! [`EngineHandle::set_oracle`]) turns every tie-break into an explicit,
//! recorded choice point, so a model checker can enumerate, randomize, or
//! replay schedules — see the [`oracle`] module.
//!
//! ## Example
//!
//! ```
//! use simcore::{SimOpts, Simulation};
//!
//! let sim = Simulation::new(2);
//! let handle = sim.handle();
//! // An event at t = 500 ns wakes rank 1 from its park.
//! handle.schedule_at(500, |h| h.wake_rank(1));
//! let out = sim
//!     .run(SimOpts::default(), |ctx| {
//!         if ctx.rank() == 0 {
//!             ctx.compute(300); // 300 ns of virtual computation
//!         } else {
//!             ctx.park(); // blocked until the event fires
//!         }
//!     })
//!     .unwrap();
//! assert_eq!(out.end_time, 500);
//! ```

pub mod engine;
pub mod error;
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub(crate) mod fiber;
pub mod intervals;
pub mod oracle;
pub mod rank;
pub mod sched;
pub mod time;
pub mod truth;

pub use engine::{EngineHandle, RankRuntime, SimOpts, SimOutcome, Simulation};
pub use error::{deadlock_cycle, RankDiag, SimError};
pub use intervals::IntervalSet;
pub use oracle::{
    Canonical, ChoicePoint, ChoiceRec, OracleHandle, RandomOracle, ReplayOracle, ScheduleOracle,
};
pub use rank::RankCtx;
pub use time::{ms, ns, us, Duration, Time};
pub use truth::{Activity, ActivityLog};
