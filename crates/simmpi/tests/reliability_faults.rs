//! Delivery correctness under injected fabric faults.
//!
//! The fabric drops/duplicates/delays two-sided packets per the seeded
//! [`FaultPlan`]; the reliability layer must still deliver every message
//! exactly once with an intact payload, and the overlap reports must keep
//! their `min <= max` invariant (degrading gracefully rather than
//! panicking).

use overlap_core::RecorderOpts;
use simmpi::{run_mpi, MpiConfig, Src, TagSel};
use simnet::{FaultPlan, NetConfig};

fn checksum(data: &[u8]) -> u64 {
    // FNV-1a, good enough to catch corrupted / truncated payloads.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn payload(rank: usize, round: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (rank.wrapping_mul(31) ^ round.wrapping_mul(17) ^ i) as u8)
        .collect()
}

fn lossy_net(seed: u64, drop: f64, dup: f64) -> NetConfig {
    NetConfig {
        faults: FaultPlan {
            seed,
            drop_prob: drop,
            duplicate_prob: dup,
            delay_prob: 0.05,
            max_extra_delay: 20_000,
            ..FaultPlan::none()
        },
        ..NetConfig::default()
    }
}

/// Ring exchange: every rank sends checksummed payloads to its neighbor at
/// several message sizes (eager and rendezvous) and validates what arrives.
fn ring_exchange(net: NetConfig, sizes: &'static [usize]) -> simmpi::MpiRunOutcome {
    run_mpi(
        4,
        net,
        MpiConfig::default(),
        RecorderOpts::default(),
        move |mpi| {
            let me = mpi.rank();
            let n = mpi.nranks();
            let dst = (me + 1) % n;
            let src = (me + n - 1) % n;
            for (round, &len) in sizes.iter().enumerate() {
                let data = payload(me, round, len);
                let want = checksum(&payload(src, round, len));
                let sr = mpi.isend(dst, round as u64, &data);
                let st = mpi.recv(Src::Rank(src), TagSel::Is(round as u64));
                let got = st.into_data();
                assert_eq!(got.len(), len, "length corrupted under faults");
                assert_eq!(checksum(&got), want, "payload corrupted under faults");
                mpi.wait(sr);
            }
        },
    )
    .expect("run completes under faults")
}

const SIZES: &[usize] = &[1, 512, 4 << 10, 12 << 10, 64 << 10, 256 << 10];

#[test]
fn messages_survive_ten_percent_loss() {
    let out = ring_exchange(lossy_net(7, 0.10, 0.02), SIZES);
    // The plan really fired (otherwise this test is vacuous).
    assert!(!out.faults.is_empty(), "no faults injected at 10% loss");
    for r in &out.reports {
        assert!(r.total.min_overlap <= r.total.max_overlap);
    }
}

#[test]
fn duplication_only_fabric_delivers_exactly_once() {
    // Pure duplication (no loss): exactly-once delivery relies entirely on
    // the receive-side dedup.
    let out = ring_exchange(lossy_net(11, 0.0, 0.25), SIZES);
    assert!(
        out.faults
            .iter()
            .any(|f| matches!(f.kind, simnet::FaultKind::Duplicated)),
        "no duplications injected"
    );
}

#[test]
fn fault_runs_are_bit_reproducible() {
    let a = ring_exchange(lossy_net(42, 0.08, 0.05), SIZES);
    let b = ring_exchange(lossy_net(42, 0.08, 0.05), SIZES);
    assert_eq!(a.end_time, b.end_time, "virtual end time diverged");
    assert_eq!(a.faults.len(), b.faults.len());
    for (x, y) in a.faults.iter().zip(&b.faults) {
        assert_eq!(x, y, "fault streams diverged for equal seeds");
    }
    for (x, y) in a.reports.iter().zip(&b.reports) {
        assert_eq!(x.total, y.total, "overlap stats diverged for equal seeds");
    }
}

#[test]
fn different_seeds_draw_different_fault_streams() {
    let a = ring_exchange(lossy_net(1, 0.08, 0.05), SIZES);
    let b = ring_exchange(lossy_net(2, 0.08, 0.05), SIZES);
    assert_ne!(
        (a.faults.len(), a.end_time),
        (b.faults.len(), b.end_time),
        "distinct seeds produced identical runs (suspicious)"
    );
}

#[test]
fn empty_plan_matches_no_plan_exactly() {
    // FaultPlan::none() must be byte-identical to the pre-reliability
    // behavior: same end time, same transfer count, zero fault events.
    let base = ring_exchange(NetConfig::default(), SIZES);
    let none = ring_exchange(
        NetConfig {
            faults: FaultPlan::none(),
            ..NetConfig::default()
        },
        SIZES,
    );
    assert_eq!(base.end_time, none.end_time);
    assert_eq!(base.transfers.len(), none.transfers.len());
    assert!(none.faults.is_empty());
    for (x, y) in base.reports.iter().zip(&none.reports) {
        assert_eq!(x.total, y.total);
    }
}

#[test]
fn collectives_complete_under_loss() {
    let net = lossy_net(19, 0.05, 0.02);
    let out = run_mpi(
        4,
        net,
        MpiConfig::default(),
        RecorderOpts::default(),
        |mpi| {
            for round in 0..4u64 {
                mpi.barrier();
                let root = (round % 4) as usize;
                let mut buf = if mpi.rank() == root {
                    payload(root, round as usize, 2048)
                } else {
                    vec![0u8; 2048]
                };
                mpi.bcast(root, &mut buf);
                assert_eq!(
                    checksum(&buf),
                    checksum(&payload(root, round as usize, 2048)),
                    "bcast payload corrupted under faults"
                );
            }
        },
    )
    .expect("collectives complete under faults");
    assert!(!out.faults.is_empty());
}
