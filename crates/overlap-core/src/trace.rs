//! Time-resolved trace export: Chrome-trace JSON, JSON-lines, and windowed
//! series.
//!
//! The paper's framework deliberately keeps only running aggregates, but the
//! *explanation* of an overlap number usually needs the time axis back:
//! which calls blocked, which transfers were flagged, when the retransmits
//! clustered. This module provides that view without touching the hot path:
//!
//! * [`RankTrace`] — the per-process capture: the raw four-event stream plus
//!   one derived [`BoundRecord`] per closed transfer. It is filled by the
//!   processor *at fold time* (when the event ring drains), so the
//!   instrumented library still only pushes into the fixed-size ring.
//! * [`TraceBundle`] — one scope's worth of rank traces plus fabric-side
//!   [`ExtraEvent`]s (e.g. injected faults), labelled for grouping.
//! * [`chrome_json`] — serializes bundles into the Chrome trace event format
//!   (load in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)).
//! * [`jsonl`] — one self-describing JSON object per line, for `jq`-style
//!   offline analysis.
//! * [`windowed`] — folds a bundle into per-virtual-time-window rows
//!   (transfers, overlap bounds, in-call time, flags, faults): the
//!   time-resolved series merged into machine-readable run reports.
//!
//! All output is a pure function of the captured traces: byte-identical
//! across runs and across worker counts.
//!
//! Both exports are stamped with [`SCHEMA_VERSION`]: the JSONL stream opens
//! with a `{"ev":"header","schema_version":N}` line and the Chrome-trace
//! object carries a top-level `schemaVersion` member, so stream consumers
//! (notably the `overlapd` ingest reader, [`crate::stream`]) can refuse
//! files written by an incompatible exporter instead of misfolding them.

use std::fmt::Write as _;

use serde::Serialize;

use crate::bounds::XferCase;
use crate::event::{Event, EventKind};

/// Version of the pinned trace-export schemas (JSONL lines and Chrome-trace
/// metadata). Bumped whenever a line shape changes incompatibly; the
/// streaming reader ([`crate::stream`]) rejects mismatches with a one-line
/// error.
pub const SCHEMA_VERSION: u32 = 1;

/// One derived record per closed transfer: the inputs and outputs of the
/// bound computation, time-stamped so offline tools can re-derive or audit
/// the aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BoundRecord {
    /// Transfer id (`None` for synthetic closes without an id, e.g. a
    /// duplicate-begin orphan).
    pub id: Option<u64>,
    /// Payload bytes.
    pub bytes: u64,
    /// `XFER_BEGIN` stamp, if one was observed.
    pub begin_t: Option<u64>,
    /// Close time: the `XFER_END` stamp, or the finish sweep time for
    /// transfers still open at shutdown.
    pub end_t: u64,
    /// A-priori transfer time from the table, ns.
    pub xfer_time: u64,
    /// Lower overlap bound, ns (post-degradation).
    pub min: u64,
    /// Upper overlap bound, ns.
    pub max: u64,
    /// Which of the three bound cases applied.
    pub case: XferCase,
    /// Fault-disturbed (explicit `XFER_FLAG` or the long-window heuristic).
    pub flagged: bool,
    /// Min bound clamped to the observed window (table overestimate).
    pub clamped: bool,
}

/// The per-process trace: raw events in time order plus derived bound
/// records in close order.
#[derive(Debug, Clone, Default)]
pub struct RankTrace {
    /// Rank this trace belongs to.
    pub rank: usize,
    /// The raw instrumentation event stream.
    pub events: Vec<Event>,
    /// One record per closed transfer.
    pub bounds: Vec<BoundRecord>,
    /// Classified blocking intervals recorded by the instrumented library
    /// (see [`crate::attribution`]). Serialized by [`jsonl`] as `"wait"`
    /// lines (so streaming consumers can reproduce the attribution exactly);
    /// the Chrome-trace export does not render them.
    pub waits: Vec<crate::attribution::WaitInterval>,
}

/// A fabric- or library-level instant event carried alongside the rank
/// traces (injected faults, NIC stalls, ...). `overlap-core` knows nothing
/// about the fabric; producers render their own `name`/`detail`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ExtraEvent {
    /// Virtual time, ns.
    pub t: u64,
    /// Short machine-friendly name (e.g. `"fault.dropped"`).
    pub name: String,
    /// Free-form human-readable detail (e.g. `"src 0 -> dst 1"`).
    pub detail: String,
}

/// One traced scope: a label (e.g. `"fig03/c10us"`), its per-rank traces,
/// and fabric-side extras.
#[derive(Debug, Clone, Default)]
pub struct TraceBundle {
    /// Scope label; used as the Chrome-trace process name and the JSONL
    /// `scope` field.
    pub scope: String,
    /// Per-rank traces.
    pub ranks: Vec<RankTrace>,
    /// Fabric-side instant events (ground-truth faults etc.).
    pub extras: Vec<ExtraEvent>,
}

impl TraceBundle {
    /// Total events across all ranks (raw + bounds + extras).
    pub fn len(&self) -> usize {
        self.ranks
            .iter()
            .map(|r| r.events.len() + r.bounds.len())
            .sum::<usize>()
            + self.extras.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `[first, last]` virtual-time span covered by any record, or
    /// `None` when empty.
    pub fn span(&self) -> Option<(u64, u64)> {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut any = false;
        let mut see = |t: u64| {
            lo = lo.min(t);
            hi = hi.max(t);
            any = true;
        };
        for r in &self.ranks {
            for e in &r.events {
                see(e.t);
            }
            for b in &r.bounds {
                see(b.end_t);
                if let Some(t) = b.begin_t {
                    see(t);
                }
            }
        }
        for x in &self.extras {
            see(x.t);
        }
        any.then_some((lo, hi))
    }
}

/// Stable short label for a bound case.
pub fn case_label(c: XferCase) -> &'static str {
    match c {
        XferCase::SameCall => "same_call",
        XferCase::SplitCalls => "split_calls",
        XferCase::SingleStamp => "single_stamp",
    }
}

/// Inverse of [`case_label`] (used by the streaming JSONL reader).
pub fn case_from_label(s: &str) -> Option<XferCase> {
    match s {
        "same_call" => Some(XferCase::SameCall),
        "split_calls" => Some(XferCase::SplitCalls),
        "single_stamp" => Some(XferCase::SingleStamp),
        _ => None,
    }
}

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds → Chrome's microsecond `ts`, exact to the nanosecond.
fn ts_us(t: u64) -> String {
    format!("{}.{:03}", t / 1_000, t % 1_000)
}

/// Serialize bundles as a Chrome trace event file (the JSON object form,
/// with `displayTimeUnit` set to nanoseconds).
///
/// Layout: each bundle becomes one *process* (`pid` = bundle index, named
/// after the scope); each rank contributes two *threads* — `tid = 2*rank`
/// carries the call/section stack as `B`/`E` duration events, `tid =
/// 2*rank + 1` carries per-transfer `X` spans (begin→end, with the computed
/// bounds in `args`) plus instant events for end-only transfers and
/// `XFER_FLAG`s. Fabric extras land on one additional `fabric` thread per
/// process.
pub fn chrome_json(bundles: &[TraceBundle]) -> String {
    let mut out = format!(
        "{{\"displayTimeUnit\":\"ns\",\"schemaVersion\":{SCHEMA_VERSION},\"traceEvents\":[\n"
    );
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if !std::mem::replace(&mut first, false) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };
    for (pid, b) in bundles.iter().enumerate() {
        push(
            &mut out,
            format!(
                r#"{{"ph":"M","pid":{pid},"tid":0,"name":"process_name","args":{{"name":"{}"}}}}"#,
                esc(&b.scope)
            ),
        );
        let fabric_tid = 2 * b.ranks.len();
        for r in &b.ranks {
            let (calls_tid, xfers_tid) = (2 * r.rank, 2 * r.rank + 1);
            push(
                &mut out,
                format!(
                    r#"{{"ph":"M","pid":{pid},"tid":{calls_tid},"name":"thread_name","args":{{"name":"rank {} calls"}}}}"#,
                    r.rank
                ),
            );
            push(
                &mut out,
                format!(
                    r#"{{"ph":"M","pid":{pid},"tid":{xfers_tid},"name":"thread_name","args":{{"name":"rank {} transfers"}}}}"#,
                    r.rank
                ),
            );
            // Call/section stack as B/E pairs; a stack keeps E names matched
            // and drops unbalanced exits rather than corrupting the file.
            let mut stack: Vec<(&'static str, &'static str)> = Vec::new();
            for e in &r.events {
                match e.kind {
                    EventKind::CallEnter { name } => {
                        stack.push((name, "call"));
                        push(
                            &mut out,
                            format!(
                                r#"{{"ph":"B","pid":{pid},"tid":{calls_tid},"ts":{},"cat":"call","name":"{}"}}"#,
                                ts_us(e.t),
                                esc(name)
                            ),
                        );
                    }
                    EventKind::SectionBegin { name } => {
                        stack.push((name, "section"));
                        push(
                            &mut out,
                            format!(
                                r#"{{"ph":"B","pid":{pid},"tid":{calls_tid},"ts":{},"cat":"section","name":"{}"}}"#,
                                ts_us(e.t),
                                esc(name)
                            ),
                        );
                    }
                    EventKind::CallExit | EventKind::SectionEnd => {
                        if let Some((name, cat)) = stack.pop() {
                            push(
                                &mut out,
                                format!(
                                    r#"{{"ph":"E","pid":{pid},"tid":{calls_tid},"ts":{},"cat":"{cat}","name":"{}"}}"#,
                                    ts_us(e.t),
                                    esc(name)
                                ),
                            );
                        }
                    }
                    EventKind::XferFlag { id } => {
                        push(
                            &mut out,
                            format!(
                                r#"{{"ph":"i","s":"t","pid":{pid},"tid":{xfers_tid},"ts":{},"cat":"flag","name":"xfer_flag #{id}"}}"#,
                                ts_us(e.t)
                            ),
                        );
                    }
                    // Raw transfer stamps are represented by the bound spans
                    // below; the JSONL stream keeps the raw form.
                    EventKind::XferBegin { .. } | EventKind::XferEnd { .. } => {}
                }
            }
            for bd in &r.bounds {
                let id = bd
                    .id
                    .map(|i| format!("#{i}"))
                    .unwrap_or_else(|| "#?".to_string());
                let args = format!(
                    r#"{{"bytes":{},"xfer_time_ns":{},"min_ns":{},"max_ns":{},"case":"{}","flagged":{},"clamped":{}}}"#,
                    bd.bytes,
                    bd.xfer_time,
                    bd.min,
                    bd.max,
                    case_label(bd.case),
                    bd.flagged,
                    bd.clamped
                );
                match bd.begin_t {
                    Some(t0) => push(
                        &mut out,
                        format!(
                            r#"{{"ph":"X","pid":{pid},"tid":{xfers_tid},"ts":{},"dur":{},"cat":"xfer","name":"xfer {id} {}B","args":{args}}}"#,
                            ts_us(t0),
                            ts_us(bd.end_t.saturating_sub(t0)),
                            bd.bytes
                        ),
                    ),
                    None => push(
                        &mut out,
                        format!(
                            r#"{{"ph":"i","s":"t","pid":{pid},"tid":{xfers_tid},"ts":{},"cat":"xfer","name":"xfer {id} {}B (end-only)","args":{args}}}"#,
                            ts_us(bd.end_t),
                            bd.bytes
                        ),
                    ),
                }
            }
        }
        if !b.extras.is_empty() {
            push(
                &mut out,
                format!(
                    r#"{{"ph":"M","pid":{pid},"tid":{fabric_tid},"name":"thread_name","args":{{"name":"fabric"}}}}"#
                ),
            );
            for x in &b.extras {
                push(
                    &mut out,
                    format!(
                        r#"{{"ph":"i","s":"p","pid":{pid},"tid":{fabric_tid},"ts":{},"cat":"fault","name":"{}","args":{{"detail":"{}"}}}}"#,
                        ts_us(x.t),
                        esc(&x.name),
                        esc(&x.detail)
                    ),
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Serialize bundles as JSON lines: one self-describing object per record.
///
/// The first line is always `{"ev":"header","schema_version":N}` (see
/// [`SCHEMA_VERSION`]). After it, lines are grouped (per scope: each rank's
/// raw events in time order, then its bound records, then its wait
/// intervals, then the fabric extras), not globally time-sorted; every
/// record line carries `scope`, and rank lines carry `rank`, so offline
/// tools can regroup freely.
pub fn jsonl(bundles: &[TraceBundle]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"{{"ev":"header","schema_version":{SCHEMA_VERSION}}}"#
    );
    for b in bundles {
        let scope = esc(&b.scope);
        for r in &b.ranks {
            for e in &r.events {
                let body = match e.kind {
                    EventKind::CallEnter { name } => {
                        format!(r#""ev":"call_enter","name":"{}""#, esc(name))
                    }
                    EventKind::CallExit => r#""ev":"call_exit""#.to_string(),
                    EventKind::XferBegin { id, bytes } => {
                        format!(r#""ev":"xfer_begin","id":{id},"bytes":{bytes}"#)
                    }
                    EventKind::XferEnd { id, bytes } => {
                        format!(r#""ev":"xfer_end","id":{id},"bytes":{bytes}"#)
                    }
                    EventKind::SectionBegin { name } => {
                        format!(r#""ev":"section_begin","name":"{}""#, esc(name))
                    }
                    EventKind::SectionEnd => r#""ev":"section_end""#.to_string(),
                    EventKind::XferFlag { id } => format!(r#""ev":"xfer_flag","id":{id}"#),
                };
                let _ = writeln!(
                    out,
                    r#"{{"scope":"{scope}","rank":{},"t":{},{body}}}"#,
                    r.rank, e.t
                );
            }
            for bd in &r.bounds {
                let id = bd
                    .id
                    .map(|i| i.to_string())
                    .unwrap_or_else(|| "null".to_string());
                let begin = bd
                    .begin_t
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "null".to_string());
                let _ = writeln!(
                    out,
                    r#"{{"scope":"{scope}","rank":{},"t":{},"ev":"xfer_bounds","id":{id},"bytes":{},"begin_t":{begin},"xfer_time":{},"min":{},"max":{},"case":"{}","flagged":{},"clamped":{}}}"#,
                    r.rank,
                    bd.end_t,
                    bd.bytes,
                    bd.xfer_time,
                    bd.min,
                    bd.max,
                    case_label(bd.case),
                    bd.flagged,
                    bd.clamped
                );
            }
            for w in &r.waits {
                let xfer = w
                    .xfer
                    .map(|i| i.to_string())
                    .unwrap_or_else(|| "null".to_string());
                let _ = writeln!(
                    out,
                    r#"{{"scope":"{scope}","rank":{},"t":{},"ev":"wait","end":{},"cause":"{}","xfer":{xfer}}}"#,
                    r.rank,
                    w.start,
                    w.end,
                    w.cause.label()
                );
            }
        }
        for x in &b.extras {
            let _ = writeln!(
                out,
                r#"{{"scope":"{scope}","t":{},"ev":"fault","name":"{}","detail":"{}"}}"#,
                x.t,
                esc(&x.name),
                esc(&x.detail)
            );
        }
    }
    out
}

/// One virtual-time window of the time-resolved series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct WindowRow {
    /// Window start, ns (inclusive).
    pub start: u64,
    /// Window end, ns (exclusive; the final window is extended to cover the
    /// trace's last timestamp).
    pub end: u64,
    /// Transfers whose bounds were closed inside the window.
    pub transfers: u64,
    /// Σ lower overlap bounds of those transfers, ns.
    pub min_overlap_ns: u64,
    /// Σ upper overlap bounds of those transfers, ns.
    pub max_overlap_ns: u64,
    /// Time any rank spent inside library calls during the window, ns
    /// (summed across ranks — the time-resolved analogue of
    /// `comm_call_time`).
    pub wait_ns: u64,
    /// `XFER_FLAG` events (library-observed disturbances, e.g. reliability
    /// retransmits) stamped inside the window.
    pub flags: u64,
    /// Fabric extras (ground-truth fault injections) inside the window.
    pub faults: u64,
}

/// One rank's inputs to [`windowed_parts`]: bound records, top-level in-call
/// spans (a trailing open call already closed at the bundle span's end), and
/// `XFER_FLAG` timestamps. The streaming server derives these incrementally;
/// [`windowed`] derives them from a captured [`RankTrace`] — both feed the
/// same fold, which is what makes the two series byte-identical.
pub struct RankWindowParts<'a> {
    /// Bound records of the rank's closed transfers.
    pub bounds: &'a [BoundRecord],
    /// Top-level call spans `[start, end)`.
    pub call_spans: &'a [(u64, u64)],
    /// Timestamps of `XFER_FLAG` events.
    pub flags: &'a [u64],
}

/// Owned form of one rank's window inputs: `(call_spans, flag_stamps)`.
pub(crate) type SpansAndFlags = (Vec<(u64, u64)>, Vec<u64>);

/// Extract one rank's [`RankWindowParts`] span/flag vectors from its raw
/// event stream; `t1` closes a trailing open call (the bundle span's end).
pub(crate) fn rank_window_spans(events: &[Event], t1: u64) -> SpansAndFlags {
    let mut spans = Vec::new();
    let mut flags = Vec::new();
    let mut depth = 0u32;
    let mut span_start = 0u64;
    for e in events {
        match e.kind {
            EventKind::CallEnter { .. } => {
                if depth == 0 {
                    span_start = e.t;
                }
                depth += 1;
            }
            EventKind::CallExit if depth > 0 => {
                depth -= 1;
                if depth == 0 {
                    spans.push((span_start, e.t));
                }
            }
            EventKind::XferFlag { .. } => flags.push(e.t),
            _ => {}
        }
    }
    if depth > 0 {
        spans.push((span_start, t1));
    }
    (spans, flags)
}

/// Fold pre-extracted per-rank parts into fixed-width virtual-time windows
/// covering `[t0, t1]`. `width` is clamped to at least 1 ns; `extras` are
/// fabric-extra timestamps. This is the shared core of [`windowed`] and the
/// streaming server's live series.
pub fn windowed_parts(
    (t0, t1): (u64, u64),
    ranks: &[RankWindowParts<'_>],
    extras: &[u64],
    width: u64,
) -> Vec<WindowRow> {
    let width = width.max(1);
    let span = t1.saturating_sub(t0);
    let n = (span / width + 1) as usize;
    let mut rows: Vec<WindowRow> = (0..n)
        .map(|i| WindowRow {
            start: t0 + i as u64 * width,
            end: t0 + (i as u64 + 1) * width,
            ..WindowRow::default()
        })
        .collect();
    rows[n - 1].end = rows[n - 1].end.max(t1 + 1);
    let idx = |t: u64| (((t.saturating_sub(t0)) / width) as usize).min(n - 1);
    let credit = |from: u64, to: u64, rows: &mut Vec<WindowRow>| {
        let mut cur = from;
        while cur < to {
            let i = idx(cur);
            let stop = rows[i].end.min(to);
            rows[i].wait_ns += stop - cur;
            cur = stop;
        }
    };
    for r in ranks {
        for b in r.bounds {
            let w = &mut rows[idx(b.end_t)];
            w.transfers += 1;
            w.min_overlap_ns += b.min;
            w.max_overlap_ns += b.max;
        }
        // In-call time: split each top-level call span across windows.
        for &(s, e) in r.call_spans {
            credit(s, e, &mut rows);
        }
        for &t in r.flags {
            rows[idx(t)].flags += 1;
        }
    }
    for &t in extras {
        rows[idx(t)].faults += 1;
    }
    rows
}

/// Fold a bundle into fixed-width virtual-time windows. Returns an empty
/// vector for an empty bundle; `width` is clamped to at least 1 ns.
///
/// Transfers are attributed to the window containing their close time;
/// in-call (`wait`) time is split exactly across window boundaries.
pub fn windowed(bundle: &TraceBundle, width: u64) -> Vec<WindowRow> {
    let Some((t0, t1)) = bundle.span() else {
        return Vec::new();
    };
    let parts: Vec<SpansAndFlags> = bundle
        .ranks
        .iter()
        .map(|r| rank_window_spans(&r.events, t1))
        .collect();
    let ranks: Vec<RankWindowParts<'_>> = bundle
        .ranks
        .iter()
        .zip(&parts)
        .map(|(r, (spans, flags))| RankWindowParts {
            bounds: &r.bounds,
            call_spans: spans,
            flags,
        })
        .collect();
    let extras: Vec<u64> = bundle.extras.iter().map(|x| x.t).collect();
    windowed_parts((t0, t1), &ranks, &extras, width)
}

/// A reasonable default window width for a bundle: 1/16th of the covered
/// span (at least 1 ns).
pub fn default_window_width(bundle: &TraceBundle) -> u64 {
    match bundle.span() {
        Some((t0, t1)) => (t1.saturating_sub(t0) / 16).max(1),
        None => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: EventKind) -> Event {
        Event::new(t, kind)
    }

    fn sample_bundle() -> TraceBundle {
        TraceBundle {
            scope: "test/one".to_string(),
            ranks: vec![RankTrace {
                rank: 0,
                events: vec![
                    ev(0, EventKind::CallEnter { name: "MPI_Isend" }),
                    ev(5, EventKind::XferBegin { id: 1, bytes: 1024 }),
                    ev(10, EventKind::CallExit),
                    ev(1_000, EventKind::CallEnter { name: "MPI_Wait" }),
                    ev(1_200, EventKind::XferFlag { id: 1 }),
                    ev(1_500, EventKind::XferEnd { id: 1, bytes: 1024 }),
                    ev(1_510, EventKind::CallExit),
                ],
                bounds: vec![BoundRecord {
                    id: Some(1),
                    bytes: 1024,
                    begin_t: Some(5),
                    end_t: 1_500,
                    xfer_time: 400,
                    min: 0,
                    max: 400,
                    case: XferCase::SplitCalls,
                    flagged: true,
                    clamped: false,
                }],
                waits: vec![crate::attribution::WaitInterval {
                    start: 1_000,
                    end: 1_500,
                    cause: crate::attribution::WaitCause::LateSender,
                    xfer: Some(1),
                }],
            }],
            extras: vec![ExtraEvent {
                t: 1_100,
                name: "fault.dropped".to_string(),
                detail: "src 0 -> dst 1 ty 3".to_string(),
            }],
        }
    }

    #[test]
    fn chrome_json_parses_and_is_structured() {
        let text = chrome_json(&[sample_bundle()]);
        let v: serde_json::Value = serde_json::from_str(&text).expect("chrome trace parses");
        assert_eq!(v["displayTimeUnit"], "ns");
        assert_eq!(v["schemaVersion"].as_u64(), Some(SCHEMA_VERSION as u64));
        let evs = v["traceEvents"].as_array().unwrap();
        // Metadata (process + 2 threads + fabric), 2 B + 2 E, 1 flag instant,
        // 1 X span, 1 fault instant.
        let phs: Vec<&str> = evs.iter().map(|e| e["ph"].as_str().unwrap()).collect();
        assert_eq!(phs.iter().filter(|p| **p == "M").count(), 4);
        assert_eq!(phs.iter().filter(|p| **p == "B").count(), 2);
        assert_eq!(phs.iter().filter(|p| **p == "E").count(), 2);
        assert_eq!(phs.iter().filter(|p| **p == "X").count(), 1);
        assert_eq!(phs.iter().filter(|p| **p == "i").count(), 2);
        // The X span carries the bounds and exact ns-resolution timestamps.
        let x = evs.iter().find(|e| e["ph"] == "X").unwrap();
        assert_eq!(x["args"]["min_ns"].as_u64(), Some(0));
        assert_eq!(x["args"]["max_ns"].as_u64(), Some(400));
        assert_eq!(x["args"]["case"], "split_calls");
        assert_eq!(x["ts"].as_f64(), Some(0.005)); // 5 ns in us
        assert_eq!(x["dur"].as_f64(), Some(1.495));
        // B/E names match through the stack.
        let b0 = evs.iter().find(|e| e["ph"] == "B").unwrap();
        assert_eq!(b0["name"], "MPI_Isend");
    }

    #[test]
    fn chrome_end_only_transfer_is_instant() {
        let mut b = sample_bundle();
        b.ranks[0].bounds[0].begin_t = None;
        let text = chrome_json(&[b]);
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        let evs = v["traceEvents"].as_array().unwrap();
        assert!(evs.iter().all(|e| e["ph"] != "X"));
        assert!(evs
            .iter()
            .any(|e| e["ph"] == "i" && e["name"].as_str().unwrap().contains("end-only")));
    }

    #[test]
    fn jsonl_every_line_parses() {
        let text = jsonl(&[sample_bundle()]);
        let lines: Vec<&str> = text.lines().collect();
        // Header + 7 raw events + 1 bound record + 1 wait + 1 extra.
        assert_eq!(lines.len(), 11);
        let header: serde_json::Value = serde_json::from_str(lines[0]).expect("header parses");
        assert_eq!(header["ev"], "header");
        assert_eq!(
            header["schema_version"].as_u64(),
            Some(SCHEMA_VERSION as u64)
        );
        for l in &lines[1..] {
            let v: serde_json::Value = serde_json::from_str(l).expect("jsonl line parses");
            assert_eq!(v["scope"], "test/one");
            assert!(v["t"].is_u64());
        }
        let bound: serde_json::Value = serde_json::from_str(
            lines
                .iter()
                .find(|l| l.contains("xfer_bounds"))
                .expect("bound line present"),
        )
        .unwrap();
        assert_eq!(bound["begin_t"].as_u64(), Some(5));
        assert_eq!(bound["flagged"].as_bool(), Some(true));
        let wait: serde_json::Value = serde_json::from_str(
            lines
                .iter()
                .find(|l| l.contains(r#""ev":"wait""#))
                .expect("wait line present"),
        )
        .unwrap();
        assert_eq!(wait["t"].as_u64(), Some(1_000));
        assert_eq!(wait["end"].as_u64(), Some(1_500));
        assert_eq!(wait["cause"], "late_sender");
        assert_eq!(wait["xfer"].as_u64(), Some(1));
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut b = sample_bundle();
        b.scope = "we\"ird\\scope\n".to_string();
        for text in [chrome_json(&[b.clone()]), jsonl(&[b])] {
            for l in text.lines().filter(|l| l.contains("ird")) {
                let _: serde_json::Value =
                    serde_json::from_str(l.trim_end_matches(',')).expect("escaped line parses");
            }
        }
    }

    #[test]
    fn windows_partition_the_span() {
        let b = sample_bundle();
        let rows = windowed(&b, 500);
        // Span 0..=1510 → windows starting at 0, 500, 1000, 1500.
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].start, 0);
        assert_eq!(rows[3].start, 1500);
        assert!(rows[3].end > 1510 - 1);
        // Transfer closed at t=1500 → last window.
        assert_eq!(rows[3].transfers, 1);
        assert_eq!(rows[3].max_overlap_ns, 400);
        // Flag at 1200 and fault at 1100 → third window.
        assert_eq!(rows[2].flags, 1);
        assert_eq!(rows[2].faults, 1);
        // In-call time splits exactly: calls cover [0,10) and [1000,1510).
        let total_wait: u64 = rows.iter().map(|r| r.wait_ns).sum();
        assert_eq!(total_wait, 10 + 510);
        assert_eq!(rows[0].wait_ns, 10);
        assert_eq!(rows[2].wait_ns, 500);
        assert_eq!(rows[3].wait_ns, 10);
    }

    #[test]
    fn empty_bundle_has_no_windows() {
        let b = TraceBundle::default();
        assert!(b.is_empty());
        assert!(windowed(&b, 100).is_empty());
        assert_eq!(default_window_width(&b), 1);
    }

    #[test]
    fn window_width_clamps_to_one() {
        let b = sample_bundle();
        let rows = windowed(&b, 0);
        assert_eq!(rows.len(), 1511);
        assert_eq!(rows.iter().map(|r| r.transfers).sum::<u64>(), 1);
    }
}
