//! Fabric property tests: byte conservation, FIFO per-path ordering, and
//! timing-model sanity over randomized operation sequences.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use proptest::prelude::*;
use simcore::SimOpts;
use simnet::{Cluster, NetConfig, Packet};

#[derive(Debug, Clone, Copy)]
struct SendSpec {
    bytes: usize,
    gap_ns: u64,
}

fn arb_sends() -> impl Strategy<Value = Vec<SendSpec>> {
    prop::collection::vec(
        (1usize..100_000, 0u64..100_000).prop_map(|(bytes, gap_ns)| SendSpec { bytes, gap_ns }),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every posted send is delivered exactly once, in order, with intact
    /// sizes and sequence-stamped contents.
    #[test]
    fn sends_conserve_bytes_and_order(sends in arb_sends()) {
        let received: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let received_in = Arc::clone(&received);
        let sends_in = sends.clone();
        let cluster = Cluster::new(2, NetConfig::default());
        let out = cluster.run(SimOpts::default(), move |ctx, world| {
            if ctx.rank() == 0 {
                for (i, s) in sends_in.iter().enumerate() {
                    if s.gap_ns > 0 {
                        ctx.compute(s.gap_ns);
                    }
                    let mut w = world.lock();
                    let x = w.alloc_xfer_id();
                    let pkt = Packet::with_data(
                        0,
                        s.bytes + 64,
                        1,
                        [i as u64, 0, 0, 0, 0, 0],
                        Bytes::from(vec![i as u8; s.bytes]),
                    );
                    w.post_send(0, 1, pkt, 0, Some(x));
                }
                // Drain our own completions.
                let total = sends_in.len();
                let mut got = 0;
                while got < total {
                    while world.lock().poll_cq(0).is_some() {
                        got += 1;
                    }
                    if got < total {
                        ctx.park();
                    }
                }
            } else {
                let total = sends_in.len();
                let mut got = 0;
                while got < total {
                    let p = world.lock().poll_rx(1);
                    match p {
                        Some(p) => {
                            let data = p.data.unwrap();
                            assert!(data.iter().all(|&b| b == p.h[0] as u8));
                            received_in.lock().push((p.h[0], data.len()));
                            got += 1;
                        }
                        None => ctx.park(),
                    }
                }
            }
        }).unwrap();

        let got = received.lock().clone();
        prop_assert_eq!(got.len(), sends.len());
        // FIFO: sequence numbers strictly increasing.
        for (i, &(seq, len)) in got.iter().enumerate() {
            prop_assert_eq!(seq, i as u64, "out-of-order delivery");
            prop_assert_eq!(len, sends[i].bytes);
        }
        // Ground truth records every payload byte exactly once.
        let truth_bytes: usize = out.transfers.iter().map(|t| t.bytes).sum();
        let sent_bytes: usize = sends.iter().map(|s| s.bytes).sum();
        prop_assert_eq!(truth_bytes, sent_bytes);
    }

    /// Physical transfer durations always respect the cost model: at least
    /// serialization + latency, and DMA start never precedes the post.
    #[test]
    fn transfer_timing_respects_cost_model(sends in arb_sends()) {
        let sends_in = sends.clone();
        let cluster = Cluster::new(2, NetConfig::default());
        let net = NetConfig::default();
        let out = cluster.run(SimOpts::default(), move |ctx, world| {
            if ctx.rank() == 0 {
                for s in &sends_in {
                    let mut w = world.lock();
                    let x = w.alloc_xfer_id();
                    let pkt = Packet::with_data(
                        0,
                        s.bytes + 64,
                        1,
                        [0; 6],
                        Bytes::from(vec![1u8; s.bytes]),
                    );
                    w.post_send(0, 1, pkt, 0, Some(x));
                }
            } else {
                let total = sends_in.len();
                let mut got = 0;
                while got < total {
                    if world.lock().poll_rx(1).is_some() {
                        got += 1;
                    } else {
                        ctx.park();
                    }
                }
            }
        }).unwrap();
        for t in &out.transfers {
            let min_duration = net.serialize(t.bytes + 64) + net.wire_latency;
            prop_assert!(t.duration() >= min_duration,
                "transfer of {} bytes took {} < {}", t.bytes, t.duration(), min_duration);
        }
        // Back-to-back posts serialize on the DMA engine: starts are
        // non-decreasing and non-overlapping in serialization time.
        for w in out.transfers.windows(2) {
            prop_assert!(w[1].phys_start >= w[0].phys_start + net.serialize(w[0].bytes + 64));
        }
    }
}
