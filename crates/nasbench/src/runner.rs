//! Unified benchmark runner and result summaries.

use overlap_core::{OverlapReport, RecorderOpts};
use simarmci::{run_armci, ArmciRunOutcome};
use simmpi::{run_mpi, MpiConfig, MpiRunOutcome};
use simnet::NetConfig;

use crate::class::Class;
use crate::mg::MgVariant;

/// Which benchmark/variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NasBenchmark {
    /// Block tridiagonal (Open MPI pipelined in the paper).
    Bt,
    /// Conjugate gradient (Open MPI pipelined).
    Cg,
    /// SSOR solver (MVAPICH2-like).
    Lu,
    /// 3-D FFT (MVAPICH2-like).
    Ft,
    /// FT with the non-blocking transpose (`MPI_Ialltoall`).
    FtNb,
    /// Scalar pentadiagonal, original code (MVAPICH2-like).
    Sp,
    /// SP with the paper's Iprobe modification.
    SpModified,
    /// Multigrid over MPI.
    MgMpi,
    /// Multigrid over blocking ARMCI.
    MgArmciBlocking,
    /// Multigrid over non-blocking ARMCI.
    MgArmciNonBlocking,
    /// Embarrassingly parallel (negative control).
    Ep,
    /// Integer sort.
    Is,
}

impl NasBenchmark {
    /// Short name as used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            NasBenchmark::Bt => "BT",
            NasBenchmark::Cg => "CG",
            NasBenchmark::Lu => "LU",
            NasBenchmark::Ft => "FT",
            NasBenchmark::FtNb => "FT-nb",
            NasBenchmark::Sp => "SP",
            NasBenchmark::SpModified => "SP-mod",
            NasBenchmark::MgMpi => "MG-mpi",
            NasBenchmark::MgArmciBlocking => "MG-armci-bl",
            NasBenchmark::MgArmciNonBlocking => "MG-armci-nb",
            NasBenchmark::Ep => "EP",
            NasBenchmark::Is => "IS",
        }
    }

    /// The communication environment the paper characterized this benchmark
    /// in (Sec. 4): BT and CG under Open MPI's pipelined mode; LU, FT and SP
    /// under MVAPICH2; MG under ARMCI.
    pub fn paper_env(&self) -> MpiConfig {
        match self {
            NasBenchmark::Bt | NasBenchmark::Cg => MpiConfig::open_mpi_pipelined(),
            _ => MpiConfig::mvapich2(),
        }
    }
}

/// Result artifacts from either library.
pub enum RunArtifacts {
    /// MPI-based benchmark output.
    Mpi(MpiRunOutcome),
    /// ARMCI-based benchmark output.
    Armci(ArmciRunOutcome),
}

impl RunArtifacts {
    /// Per-rank overlap reports.
    pub fn reports(&self) -> &[OverlapReport] {
        match self {
            RunArtifacts::Mpi(o) => &o.reports,
            RunArtifacts::Armci(o) => &o.reports,
        }
    }

    /// Virtual end time of the run, ns.
    pub fn end_time(&self) -> u64 {
        match self {
            RunArtifacts::Mpi(o) => o.end_time,
            RunArtifacts::Armci(o) => o.end_time,
        }
    }

    /// Per-rank time-resolved traces (empty unless `RecorderOpts::trace`
    /// was set on the run).
    pub fn traces(&self) -> &[overlap_core::trace::RankTrace] {
        match self {
            RunArtifacts::Mpi(o) => &o.traces,
            RunArtifacts::Armci(o) => &o.traces,
        }
    }

    /// Ground-truth injected fabric faults (always empty for ARMCI runs:
    /// one-sided RDMA channels are not perturbed by the fault layer).
    pub fn faults(&self) -> &[simnet::FaultEvent] {
        match self {
            RunArtifacts::Mpi(o) => &o.faults,
            RunArtifacts::Armci(_) => &[],
        }
    }
}

/// Run a benchmark in its paper environment.
pub fn run_benchmark(
    bench: NasBenchmark,
    class: Class,
    np: usize,
    net: NetConfig,
    rec: RecorderOpts,
) -> RunArtifacts {
    run_benchmark_cfg(bench, class, np, net, bench.paper_env(), rec)
}

/// [`run_benchmark`] with an explicit MPI library configuration — the hook
/// the bench runner uses to honor process-wide overrides (e.g. `repro
/// --progress`) on top of each benchmark's paper environment.
pub fn run_benchmark_cfg(
    bench: NasBenchmark,
    class: Class,
    np: usize,
    net: NetConfig,
    mpi_cfg: MpiConfig,
    rec: RecorderOpts,
) -> RunArtifacts {
    match bench {
        NasBenchmark::Bt => {
            let p = crate::bt::BtParams::new(class);
            RunArtifacts::Mpi(
                run_mpi(np, net, mpi_cfg, rec, move |mpi| crate::bt::run_bt(mpi, &p))
                    .expect("BT run failed"),
            )
        }
        NasBenchmark::Cg => {
            let p = crate::cg::CgParams::new(class);
            RunArtifacts::Mpi(
                run_mpi(np, net, mpi_cfg, rec, move |mpi| crate::cg::run_cg(mpi, &p))
                    .expect("CG run failed"),
            )
        }
        NasBenchmark::Lu => {
            let p = crate::lu::LuParams::new(class);
            RunArtifacts::Mpi(
                run_mpi(np, net, mpi_cfg, rec, move |mpi| crate::lu::run_lu(mpi, &p))
                    .expect("LU run failed"),
            )
        }
        NasBenchmark::Ft => {
            let p = crate::ft::FtParams::new(class);
            RunArtifacts::Mpi(
                run_mpi(np, net, mpi_cfg, rec, move |mpi| crate::ft::run_ft(mpi, &p))
                    .expect("FT run failed"),
            )
        }
        NasBenchmark::FtNb => {
            let p = crate::ft::FtParams::nonblocking(class);
            RunArtifacts::Mpi(
                run_mpi(np, net, mpi_cfg, rec, move |mpi| crate::ft::run_ft(mpi, &p))
                    .expect("FT-nb run failed"),
            )
        }
        NasBenchmark::Sp => {
            let p = crate::sp::SpParams::original(class);
            RunArtifacts::Mpi(
                run_mpi(np, net, mpi_cfg, rec, move |mpi| crate::sp::run_sp(mpi, &p))
                    .expect("SP run failed"),
            )
        }
        NasBenchmark::SpModified => {
            let p = crate::sp::SpParams::modified(class);
            RunArtifacts::Mpi(
                run_mpi(np, net, mpi_cfg, rec, move |mpi| crate::sp::run_sp(mpi, &p))
                    .expect("SP-mod run failed"),
            )
        }
        NasBenchmark::MgMpi => {
            let p = crate::mg::MgParams::new(class);
            RunArtifacts::Mpi(
                run_mpi(np, net, mpi_cfg, rec, move |mpi| {
                    crate::mg::run_mg_mpi(mpi, &p)
                })
                .expect("MG-mpi run failed"),
            )
        }
        NasBenchmark::MgArmciBlocking => {
            let p = crate::mg::MgParams::new(class);
            RunArtifacts::Armci(
                run_armci(np, net, rec, move |a| {
                    crate::mg::run_mg_armci(a, &p, MgVariant::ArmciBlocking)
                })
                .expect("MG-armci-bl run failed"),
            )
        }
        NasBenchmark::MgArmciNonBlocking => {
            let p = crate::mg::MgParams::new(class);
            RunArtifacts::Armci(
                run_armci(np, net, rec, move |a| {
                    crate::mg::run_mg_armci(a, &p, MgVariant::ArmciNonBlocking)
                })
                .expect("MG-armci-nb run failed"),
            )
        }
        NasBenchmark::Ep => {
            let p = crate::ep::EpParams::new(class);
            RunArtifacts::Mpi(
                run_mpi(np, net, mpi_cfg, rec, move |mpi| crate::ep::run_ep(mpi, &p))
                    .expect("EP run failed"),
            )
        }
        NasBenchmark::Is => {
            let p = crate::is::IsParams::new(class);
            RunArtifacts::Mpi(
                run_mpi(np, net, mpi_cfg, rec, move |mpi| crate::is::run_is(mpi, &p))
                    .expect("IS run failed"),
            )
        }
    }
}

/// Summary of one monitored section for process 0.
#[derive(Debug, Clone)]
pub struct SectionSummary {
    /// Section name.
    pub name: String,
    /// Minimum overlap percentage.
    pub min_pct: f64,
    /// Maximum overlap percentage.
    pub max_pct: f64,
    /// Transfers attributed to the section.
    pub transfers: u64,
}

/// Headline numbers for one benchmark run (process 0, as the paper
/// presents).
#[derive(Debug, Clone)]
pub struct NasSummary {
    /// Benchmark name.
    pub name: String,
    /// Problem class.
    pub class: Class,
    /// Process count.
    pub np: usize,
    /// Minimum overlap percentage (process 0, whole run).
    pub min_pct: f64,
    /// Maximum overlap percentage.
    pub max_pct: f64,
    /// Total data transfer time, ms.
    pub data_transfer_ms: f64,
    /// Aggregate communication call time ("MPI time"), ms.
    pub comm_call_ms: f64,
    /// Aggregate user computation time, ms.
    pub compute_ms: f64,
    /// Elapsed virtual time, ms.
    pub elapsed_ms: f64,
    /// Data transfers counted.
    pub transfers: u64,
    /// Monitored sections.
    pub sections: Vec<SectionSummary>,
}

/// Summarize process 0 of a run.
pub fn summarize(bench: NasBenchmark, class: Class, np: usize, art: &RunArtifacts) -> NasSummary {
    let r = &art.reports()[0];
    NasSummary {
        name: bench.name().to_string(),
        class,
        np,
        min_pct: r.total.min_pct(),
        max_pct: r.total.max_pct(),
        data_transfer_ms: r.total.data_transfer_time as f64 / 1e6,
        comm_call_ms: r.comm_call_time as f64 / 1e6,
        compute_ms: r.user_compute_time as f64 / 1e6,
        elapsed_ms: r.elapsed as f64 / 1e6,
        transfers: r.total.transfers,
        sections: r
            .sections
            .iter()
            .map(|(name, s)| SectionSummary {
                name: name.clone(),
                min_pct: s.total.min_pct(),
                max_pct: s.total.max_pct(),
                transfers: s.total.transfers,
            })
            .collect(),
    }
}
