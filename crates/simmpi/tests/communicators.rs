//! Communicator (comm_split) semantics and the new collectives.

use overlap_core::RecorderOpts;
use simmpi::{run_mpi, MpiConfig, ReduceOp};
use simnet::NetConfig;

fn run(nranks: usize, body: impl Fn(&mut simmpi::Mpi) + Send + Sync + 'static) {
    run_mpi(
        nranks,
        NetConfig::default(),
        MpiConfig::default(),
        RecorderOpts::default(),
        body,
    )
    .expect("run failed");
}

#[test]
fn comm_world_matches_world() {
    run(4, |mpi| {
        let w = mpi.comm_world();
        assert_eq!(w.size(), 4);
        assert_eq!(w.rank(), mpi.rank());
    });
}

#[test]
fn split_into_rows_and_columns() {
    // 2x3 grid: row comms by row index, column comms by column index.
    run(6, |mpi| {
        let (row, col) = (mpi.rank() / 3, mpi.rank() % 3);
        let row_comm = mpi.comm_split(row as u64, col as u64);
        let col_comm = mpi.comm_split(col as u64, row as u64);
        assert_eq!(row_comm.size(), 3);
        assert_eq!(col_comm.size(), 2);
        assert_eq!(row_comm.rank(), col);
        assert_eq!(col_comm.rank(), row);
        // Members are the expected world ranks, in key order.
        let expect_row: Vec<usize> = (0..3).map(|c| row * 3 + c).collect();
        assert_eq!(row_comm.members(), &expect_row[..]);
    });
}

#[test]
fn key_reverses_ordering() {
    run(4, |mpi| {
        // Same color; key = reverse rank → communicator order reversed.
        let c = mpi.comm_split(0, (3 - mpi.rank()) as u64);
        assert_eq!(c.size(), 4);
        assert_eq!(c.rank(), 3 - mpi.rank());
        assert_eq!(c.members(), &[3, 2, 1, 0]);
    });
}

#[test]
fn row_allreduce_is_scoped() {
    run(6, |mpi| {
        let row = mpi.rank() / 3;
        let row_comm = mpi.comm_split(row as u64, mpi.rank() as u64);
        let sum = mpi.allreduce_comm(&row_comm, &[mpi.rank() as f64], ReduceOp::Sum);
        let expect: f64 = (0..3).map(|c| (row * 3 + c) as f64).sum();
        assert_eq!(sum, vec![expect]);
    });
}

#[test]
fn comm_bcast_uses_comm_ranks() {
    run(6, |mpi| {
        let col = mpi.rank() % 3;
        let col_comm = mpi.comm_split(col as u64, mpi.rank() as u64);
        // Root 1 in each column = world rank col + 3.
        let mut data = if col_comm.rank() == 1 {
            vec![col as u8 + 10; 64]
        } else {
            Vec::new()
        };
        mpi.bcast_comm(&col_comm, 1, &mut data);
        assert_eq!(data, vec![col as u8 + 10; 64]);
    });
}

#[test]
fn concurrent_collectives_on_disjoint_comms() {
    // Rows run different-sized bcasts concurrently; tags must not collide.
    run(8, |mpi| {
        let row = mpi.rank() / 4;
        let c = mpi.comm_split(row as u64, mpi.rank() as u64);
        for round in 0..5u8 {
            let mut data = if c.rank() == 0 {
                vec![round + row as u8 * 100; 100 * (row + 1)]
            } else {
                Vec::new()
            };
            mpi.bcast_comm(&c, 0, &mut data);
            assert_eq!(data.len(), 100 * (row + 1));
            assert!(data.iter().all(|&b| b == round + row as u8 * 100));
            let s = mpi.allreduce_comm(&c, &[1.0], ReduceOp::Sum);
            assert_eq!(s, vec![4.0]);
        }
    });
}

#[test]
fn barrier_comm_synchronizes_subgroup_only() {
    run(4, |mpi| {
        let half = mpi.rank() / 2;
        let c = mpi.comm_split(half as u64, mpi.rank() as u64);
        if half == 0 {
            // Group 0 barriers quickly while group 1 is busy for a long
            // time; the barrier must not wait for group 1.
            mpi.barrier_comm(&c);
            assert!(
                mpi.now() < 50_000_000,
                "subgroup barrier waited on the other group"
            );
        } else {
            mpi.compute(100_000_000);
            mpi.barrier_comm(&c);
        }
    });
}

#[test]
fn reduce_scatter_distributes_slices() {
    run(4, |mpi| {
        // data[i] = my_rank contribution; sum = 0+1+2+3 = 6 everywhere.
        let data: Vec<f64> = (0..8).map(|i| (mpi.rank() * 8 + i) as f64).collect();
        let mine = mpi.reduce_scatter(&data, ReduceOp::Sum);
        assert_eq!(mine.len(), 2);
        let me = mpi.rank();
        for (j, v) in mine.iter().enumerate() {
            let i = me * 2 + j;
            let expect: f64 = (0..4).map(|r| (r * 8 + i) as f64).sum();
            assert_eq!(*v, expect, "slice element {j}");
        }
    });
}

#[test]
fn scan_computes_inclusive_prefix() {
    run(5, |mpi| {
        let out = mpi.scan(&[1.0, mpi.rank() as f64], ReduceOp::Sum);
        let me = mpi.rank() as f64;
        assert_eq!(out[0], me + 1.0);
        assert_eq!(out[1], me * (me + 1.0) / 2.0);
    });
}

#[test]
fn alltoallv_moves_variable_blocks() {
    run(3, |mpi| {
        let me = mpi.rank();
        // Block to rank d has length (me+1)*(d+1)*10.
        let blocks: Vec<Vec<u8>> = (0..3)
            .map(|d| vec![me as u8; (me + 1) * (d + 1) * 10])
            .collect();
        let got = mpi.alltoallv(&blocks);
        for (src, b) in got.iter().enumerate() {
            assert_eq!(b.len(), (src + 1) * (me + 1) * 10);
            assert!(b.iter().all(|&x| x == src as u8));
        }
    });
}
