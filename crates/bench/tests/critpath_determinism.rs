//! Critical-path artifacts must be a pure function of the selection: the
//! same harness produces byte-identical attribution JSON, collapsed-stack
//! text, and wait-state breakdowns whether its sweep points run serially
//! (`--jobs 1`) or on a full worker pool (`--jobs 4`).
//!
//! Lives in its own test binary: trace capture and the worker budget are
//! process-global, so this test must not share a process with tests that
//! configure them differently.

use overlap_core::trace::TraceBundle;

/// What `repro fig03 --critical-path <dir>` derives from one capture:
/// (attribution artifact JSON, collapsed-stack text, wait-states JSON).
fn capture_fig03(jobs: usize) -> (String, String, String) {
    bench::runner::set_jobs(jobs);
    let series = bench::figures::fig03();
    assert!(!series.rows.is_empty());
    let captured: Vec<(String, TraceBundle)> = bench::tracecap::drain().into_iter().collect();
    assert_eq!(captured.len(), 7, "one bundle per sweep point");
    let scoped: Vec<(String, &TraceBundle)> = captured
        .iter()
        .map(|(scope, bundle)| (scope.clone(), bundle))
        .collect();
    let artifact = bench::critpath::attribution_artifact("fig03", &scoped);
    let waits: Vec<_> = captured
        .iter()
        .map(|(scope, bundle)| bench::critpath::wait_states(scope, bundle))
        .collect();
    (
        serde_json::to_string_pretty(&artifact).expect("artifact serializes"),
        bench::critpath::collapsed(&scoped),
        serde_json::to_string_pretty(&waits).expect("wait states serialize"),
    )
}

#[test]
fn critpath_artifacts_are_identical_across_worker_counts() {
    bench::tracecap::enable();
    let (art1, folded1, waits1) = capture_fig03(1);
    let (art4, folded4, waits4) = capture_fig03(4);
    assert_eq!(art1, art4, "attribution JSON must not depend on --jobs");
    assert_eq!(
        folded1, folded4,
        "collapsed stack must not depend on --jobs"
    );
    assert_eq!(waits1, waits4, "wait states must not depend on --jobs");

    // The artifact must be real: transfers attributed, every breakdown
    // reconciled, and the overhead meter populated.
    let v: serde_json::Value = serde_json::from_str(&art1).expect("artifact parses");
    assert_eq!(v["id"], "fig03");
    assert!(v["overhead"]["wait_intervals"].as_u64().unwrap() > 0);
    assert!(v["overhead"]["attributed_ns"].as_u64().unwrap() > 0);
    let mut transfers = 0;
    for scope in v["scopes"].as_array().unwrap() {
        for rank in scope["ranks"].as_array().unwrap() {
            for t in rank["transfers"].as_array().unwrap() {
                let total: u64 = t["breakdown"]
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|s| s["ns"].as_u64().unwrap())
                    .sum();
                assert_eq!(total, t["nonoverlap"].as_u64().unwrap());
                transfers += 1;
            }
        }
    }
    assert!(transfers > 100, "fig03 should attribute many transfers");

    // Collapsed-stack lines carry the scope;rank;call;cause frame shape.
    let mut lines = 0;
    for line in folded1.lines() {
        let (frames, weight) = line.rsplit_once(' ').expect("weight-terminated line");
        weight.parse::<u64>().expect("numeric weight");
        assert_eq!(frames.split(';').count(), 4, "four frames per line: {line}");
        lines += 1;
    }
    assert!(lines > 10, "collapsed stack should contain real chains");
}
