//! Engine scheduling property tests: time-order execution, determinism,
//! and activity-log integrity under random schedules.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use simcore::{Activity, SimOpts, Simulation};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Callbacks always execute in non-decreasing time order, with ties in
    /// scheduling order.
    #[test]
    fn events_fire_in_time_then_seq_order(times in prop::collection::vec(0u64..10_000, 1..60)) {
        let sim = Simulation::new(1);
        let handle = sim.handle();
        let seen: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let n = times.len();
        for (i, &t) in times.iter().enumerate() {
            let seen = Arc::clone(&seen);
            handle.schedule_at(t, move |h| {
                seen.lock().push((h.now(), i));
            });
        }
        {
            let seen = Arc::clone(&seen);
            let max_t = *times.iter().max().unwrap();
            handle.schedule_at(max_t + 1, move |h| {
                let _ = &seen;
                h.wake_rank(0);
            });
        }
        sim.run(SimOpts::default(), |ctx| ctx.park()).unwrap();
        let log = seen.lock();
        prop_assert_eq!(log.len(), n);
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie order violated");
            }
        }
    }

    /// Activity logs partition each rank's timeline exactly: entries are
    /// contiguous-or-gapped, never overlapping, and total to the sum of the
    /// requested durations.
    #[test]
    fn activity_logs_partition_time(
        durations in prop::collection::vec((1u64..5_000, any::<bool>()), 1..40),
    ) {
        let durations_in = durations.clone();
        let sim = Simulation::new(2);
        let out = sim.run(SimOpts::default(), move |ctx| {
            for &(d, compute) in &durations_in {
                if compute {
                    ctx.compute(d);
                } else {
                    ctx.busy(d, Activity::Library);
                }
            }
        }).unwrap();
        let want_compute: u64 = durations.iter().filter(|&&(_, c)| c).map(|&(d, _)| d).sum();
        let want_library: u64 = durations.iter().filter(|&&(_, c)| !c).map(|&(d, _)| d).sum();
        for log in &out.activity {
            prop_assert_eq!(log.total(Activity::Compute), want_compute);
            prop_assert_eq!(log.total(Activity::Library), want_library);
            prop_assert_eq!(log.end_time(), want_compute + want_library);
            let mut cursor = 0;
            for &(s, e, _) in log.entries() {
                prop_assert!(s >= cursor, "entries overlap");
                prop_assert!(s < e);
                cursor = e;
            }
        }
        prop_assert_eq!(out.end_time, want_compute + want_library);
    }

    /// Re-running an arbitrary schedule is bit-identical.
    #[test]
    fn random_schedules_are_deterministic(
        times in prop::collection::vec(0u64..5_000, 1..30),
        ranks in 1usize..6,
    ) {
        let run = |times: Vec<u64>, ranks: usize| {
            let sim = Simulation::new(ranks);
            let handle = sim.handle();
            for &t in times.iter() {
                handle.schedule_at(t, move |h| {
                    h.wake_rank(0); // only rank 0 parks
                });
            }
            sim.run(SimOpts::default(), |ctx| {
                if ctx.rank() == 0 {
                    ctx.park();
                    ctx.compute(100);
                } else {
                    ctx.compute(ctx.rank() as u64 * 37);
                }
            })
            .unwrap()
        };
        let a = run(times.clone(), ranks);
        let b = run(times, ranks);
        prop_assert_eq!(a.end_time, b.end_time);
        prop_assert_eq!(a.events_processed, b.events_processed);
    }
}
