//! Reproduction harnesses for every figure in the paper's evaluation.

use std::time::Instant;

use nasbench::runner::{run_benchmark_cfg, summarize, NasBenchmark};
use nasbench::sp::SP_OVERLAP_SECTION;
use nasbench::Class;
use overlap_core::RecorderOpts;
use simmpi::MpiConfig;
use simnet::NetConfig;

use crate::micro::{overlap_sweep_scoped, MicroPoint, Pairing};
use crate::{f_ms, f_us, pct, Series};

/// Transfers per microbenchmark point (paper used 1000; percentages are
/// per-transfer averages, so a few hundred suffice).
const MICRO_REPS: usize = 200;

fn micro_series(
    id: &'static str,
    title: &str,
    cfg: MpiConfig,
    bytes: usize,
    computes_us: &[u64],
    pairing: Pairing,
    show: Side,
) -> Series {
    let computes_ns: Vec<u64> = computes_us.iter().map(|&c| c * 1_000).collect();
    let points = overlap_sweep_scoped(id, cfg, bytes, MICRO_REPS, &computes_ns, pairing);
    let mut columns = vec!["compute_us".to_string()];
    match show {
        Side::Sender => columns.extend(["snd_min%", "snd_max%", "snd_wait_us"].map(String::from)),
        Side::Receiver => columns.extend(["rcv_min%", "rcv_max%", "rcv_wait_us"].map(String::from)),
        Side::Both => columns.extend(
            [
                "snd_min%",
                "snd_max%",
                "snd_wait_us",
                "rcv_min%",
                "rcv_max%",
                "rcv_wait_us",
            ]
            .map(String::from),
        ),
    }
    let rows = points
        .iter()
        .map(|p: &MicroPoint| {
            let mut row = vec![format!("{}", p.compute_ns / 1_000)];
            match show {
                Side::Sender => row.extend([pct(p.snd_min), pct(p.snd_max), f_us(p.snd_wait_ns)]),
                Side::Receiver => row.extend([pct(p.rcv_min), pct(p.rcv_max), f_us(p.rcv_wait_ns)]),
                Side::Both => row.extend([
                    pct(p.snd_min),
                    pct(p.snd_max),
                    f_us(p.snd_wait_ns),
                    pct(p.rcv_min),
                    pct(p.rcv_max),
                    f_us(p.rcv_wait_ns),
                ]),
            }
            row
        })
        .collect();
    Series {
        id,
        title: title.to_string(),
        columns,
        rows,
    }
}

#[derive(Clone, Copy)]
enum Side {
    Sender,
    Receiver,
    Both,
}

const LONG_COMPUTES_US: [u64; 8] = [0, 250, 500, 750, 1000, 1250, 1500, 1750];

/// Fig. 3: eager exchange (10 KB), Isend–Irecv, both sides.
pub fn fig03() -> Series {
    micro_series(
        "fig03",
        "Isend-Irecv, eager protocol, 10 KB",
        MpiConfig::open_mpi_pipelined(),
        10 << 10,
        &[0, 5, 10, 15, 20, 25, 30],
        Pairing::IsendIrecv,
        Side::Both,
    )
}

/// Fig. 4: Isend–Recv under pipelined RDMA (1 MB), sender side.
pub fn fig04() -> Series {
    micro_series(
        "fig04",
        "Isend-Recv, pipelined RDMA, 1 MB (sender)",
        MpiConfig::open_mpi_pipelined(),
        1 << 20,
        &LONG_COMPUTES_US,
        Pairing::IsendRecv,
        Side::Sender,
    )
}

/// Fig. 5: Isend–Recv under direct RDMA (1 MB), sender side.
pub fn fig05() -> Series {
    micro_series(
        "fig05",
        "Isend-Recv, direct RDMA, 1 MB (sender)",
        MpiConfig::open_mpi_leave_pinned(),
        1 << 20,
        &LONG_COMPUTES_US,
        Pairing::IsendRecv,
        Side::Sender,
    )
}

/// Fig. 6: Send–Irecv under pipelined RDMA (1 MB), receiver side.
pub fn fig06() -> Series {
    micro_series(
        "fig06",
        "Send-Irecv, pipelined RDMA, 1 MB (receiver)",
        MpiConfig::open_mpi_pipelined(),
        1 << 20,
        &LONG_COMPUTES_US,
        Pairing::SendIrecv,
        Side::Receiver,
    )
}

/// Fig. 7: Send–Irecv under direct RDMA (1 MB), receiver side.
pub fn fig07() -> Series {
    micro_series(
        "fig07",
        "Send-Irecv, direct RDMA, 1 MB (receiver)",
        MpiConfig::open_mpi_leave_pinned(),
        1 << 20,
        &LONG_COMPUTES_US,
        Pairing::SendIrecv,
        Side::Receiver,
    )
}

/// Fig. 8: Isend–Irecv under pipelined RDMA (1 MB), both sides.
pub fn fig08() -> Series {
    micro_series(
        "fig08",
        "Isend-Irecv, pipelined RDMA, 1 MB",
        MpiConfig::open_mpi_pipelined(),
        1 << 20,
        &LONG_COMPUTES_US,
        Pairing::IsendIrecv,
        Side::Both,
    )
}

/// Fig. 9: Isend–Irecv under direct RDMA (1 MB), both sides.
pub fn fig09() -> Series {
    micro_series(
        "fig09",
        "Isend-Irecv, direct RDMA, 1 MB",
        MpiConfig::open_mpi_leave_pinned(),
        1 << 20,
        &LONG_COMPUTES_US,
        Pairing::IsendIrecv,
        Side::Both,
    )
}

fn nas_series(
    id: &'static str,
    title: &str,
    bench: NasBenchmark,
    cases: &[(Class, usize)],
) -> Series {
    let rows = crate::runner::par_map(cases, |&(class, np)| {
        let art = run_benchmark_cfg(
            bench,
            class,
            np,
            crate::topo::apply(NetConfig::default()),
            crate::progress::apply((bench).paper_env()),
            crate::tracecap::rec_opts(),
        );
        crate::tracecap::record(
            format!("{id}/{class}np{np}"),
            art.traces().to_vec(),
            art.faults(),
        );
        let s = summarize(bench, class, np, &art);
        vec![
            class.to_string(),
            np.to_string(),
            pct(s.min_pct),
            pct(s.max_pct),
            f_ms(s.data_transfer_ms),
            f_ms(s.comm_call_ms),
            s.transfers.to_string(),
        ]
    });
    Series {
        id,
        title: title.to_string(),
        columns: [
            "class",
            "np",
            "min_ovl%",
            "max_ovl%",
            "xfer_ms",
            "mpi_ms",
            "transfers",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// Fig. 10: NAS BT overlap characterization (Open MPI, pipelined).
pub fn fig10() -> Series {
    nas_series(
        "fig10",
        "NAS BT overlap (Open-MPI-like pipelined)",
        NasBenchmark::Bt,
        &[
            (Class::A, 4),
            (Class::A, 9),
            (Class::A, 16),
            (Class::B, 4),
            (Class::B, 9),
            (Class::B, 16),
        ],
    )
}

/// Fig. 11: NAS CG overlap characterization (Open MPI, pipelined).
pub fn fig11() -> Series {
    nas_series(
        "fig11",
        "NAS CG overlap (Open-MPI-like pipelined)",
        NasBenchmark::Cg,
        &[
            (Class::A, 4),
            (Class::A, 8),
            (Class::A, 16),
            (Class::B, 4),
            (Class::B, 8),
            (Class::B, 16),
        ],
    )
}

/// Fig. 12: NAS LU overlap characterization (MVAPICH2-like).
pub fn fig12() -> Series {
    nas_series(
        "fig12",
        "NAS LU overlap (MVAPICH2-like)",
        NasBenchmark::Lu,
        &[
            (Class::A, 4),
            (Class::A, 8),
            (Class::A, 16),
            (Class::B, 4),
            (Class::B, 8),
            (Class::B, 16),
        ],
    )
}

/// Fig. 13: NAS FT overlap characterization (MVAPICH2-like).
pub fn fig13() -> Series {
    nas_series(
        "fig13",
        "NAS FT overlap (MVAPICH2-like)",
        NasBenchmark::Ft,
        &[
            (Class::A, 4),
            (Class::A, 8),
            (Class::A, 16),
            (Class::B, 4),
            (Class::B, 8),
            (Class::B, 16),
        ],
    )
}

fn sp_compare(id: &'static str, title: &str, class: Class, whole_code: bool) -> Series {
    let cases: Vec<usize> = vec![4, 9, 16];
    let rows = crate::runner::par_map(&cases, |&np| {
        let orig = run_benchmark_cfg(
            NasBenchmark::Sp,
            class,
            np,
            crate::topo::apply(NetConfig::default()),
            crate::progress::apply((NasBenchmark::Sp).paper_env()),
            crate::tracecap::rec_opts(),
        );
        let modi = run_benchmark_cfg(
            NasBenchmark::SpModified,
            class,
            np,
            crate::topo::apply(NetConfig::default()),
            crate::progress::apply((NasBenchmark::SpModified).paper_env()),
            crate::tracecap::rec_opts(),
        );
        crate::tracecap::record(
            format!("{id}/np{np}/orig"),
            orig.traces().to_vec(),
            orig.faults(),
        );
        crate::tracecap::record(
            format!("{id}/np{np}/mod"),
            modi.traces().to_vec(),
            modi.faults(),
        );
        let stats = |art: &nasbench::runner::RunArtifacts| {
            let r = &art.reports()[0];
            if whole_code {
                (r.total.min_pct(), r.total.max_pct())
            } else {
                let s = &r.sections[SP_OVERLAP_SECTION];
                (s.total.min_pct(), s.total.max_pct())
            }
        };
        let (omin, omax) = stats(&orig);
        let (mmin, mmax) = stats(&modi);
        vec![np.to_string(), pct(omin), pct(omax), pct(mmin), pct(mmax)]
    });
    Series {
        id,
        title: title.to_string(),
        columns: ["np", "orig_min%", "orig_max%", "mod_min%", "mod_max%"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

/// Fig. 14: SP overlap-section measurement, original vs modified, class A.
pub fn fig14() -> Series {
    sp_compare(
        "fig14",
        "SP overlapping section, original vs modified, class A",
        Class::A,
        false,
    )
}

/// Fig. 15: same as fig 14 for class B.
pub fn fig15() -> Series {
    sp_compare(
        "fig15",
        "SP overlapping section, original vs modified, class B",
        Class::B,
        false,
    )
}

/// Fig. 16: SP whole-code measurement, original vs modified, class A.
pub fn fig16() -> Series {
    sp_compare(
        "fig16",
        "SP complete code, original vs modified, class A",
        Class::A,
        true,
    )
}

/// Fig. 17: same as fig 16 for class B.
pub fn fig17() -> Series {
    sp_compare(
        "fig17",
        "SP complete code, original vs modified, class B",
        Class::B,
        true,
    )
}

/// Fig. 18: SP total MPI time, original vs modified.
pub fn fig18() -> Series {
    let grid: Vec<(Class, usize)> = [Class::A, Class::B]
        .iter()
        .flat_map(|&class| [4usize, 9, 16].map(|np| (class, np)))
        .collect();
    let rows = crate::runner::par_map(&grid, |&(class, np)| {
        let orig = run_benchmark_cfg(
            NasBenchmark::Sp,
            class,
            np,
            crate::topo::apply(NetConfig::default()),
            crate::progress::apply((NasBenchmark::Sp).paper_env()),
            crate::tracecap::rec_opts(),
        );
        let modi = run_benchmark_cfg(
            NasBenchmark::SpModified,
            class,
            np,
            crate::topo::apply(NetConfig::default()),
            crate::progress::apply((NasBenchmark::SpModified).paper_env()),
            crate::tracecap::rec_opts(),
        );
        crate::tracecap::record(
            format!("fig18/{class}np{np}/orig"),
            orig.traces().to_vec(),
            orig.faults(),
        );
        crate::tracecap::record(
            format!("fig18/{class}np{np}/mod"),
            modi.traces().to_vec(),
            modi.faults(),
        );
        let o = orig.reports()[0].comm_call_time as f64 / 1e6;
        let m = modi.reports()[0].comm_call_time as f64 / 1e6;
        vec![
            class.to_string(),
            np.to_string(),
            f_ms(o),
            f_ms(m),
            pct(100.0 * (o - m) / o),
        ]
    });
    Series {
        id: "fig18",
        title: "SP total MPI time, original vs modified".to_string(),
        columns: ["class", "np", "orig_mpi_ms", "mod_mpi_ms", "improvement%"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

/// Fig. 19: MG over ARMCI, blocking vs non-blocking overlap, class B.
pub fn fig19() -> Series {
    let cases: Vec<usize> = vec![4, 8, 16];
    let rows = crate::runner::par_map(&cases, |&np| {
        let bl = run_benchmark_cfg(
            NasBenchmark::MgArmciBlocking,
            Class::B,
            np,
            crate::topo::apply(NetConfig::default()),
            crate::progress::apply((NasBenchmark::MgArmciBlocking).paper_env()),
            crate::tracecap::rec_opts(),
        );
        let nb = run_benchmark_cfg(
            NasBenchmark::MgArmciNonBlocking,
            Class::B,
            np,
            crate::topo::apply(NetConfig::default()),
            crate::progress::apply((NasBenchmark::MgArmciNonBlocking).paper_env()),
            crate::tracecap::rec_opts(),
        );
        crate::tracecap::record(
            format!("fig19/np{np}/blocking"),
            bl.traces().to_vec(),
            bl.faults(),
        );
        crate::tracecap::record(
            format!("fig19/np{np}/nonblocking"),
            nb.traces().to_vec(),
            nb.faults(),
        );
        let b = &bl.reports()[0].total;
        let n = &nb.reports()[0].total;
        vec![
            np.to_string(),
            pct(b.min_pct()),
            pct(b.max_pct()),
            pct(n.min_pct()),
            pct(n.max_pct()),
        ]
    });
    Series {
        id: "fig19",
        title: "NAS MG over ARMCI, blocking vs non-blocking, class B".to_string(),
        columns: ["np", "blk_min%", "blk_max%", "nb_min%", "nb_max%"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

/// Fig. 20: instrumentation overhead — wall-clock run time with the
/// recorder enabled vs disabled, per benchmark.
pub fn fig20() -> Series {
    let benches = [
        NasBenchmark::Bt,
        NasBenchmark::Cg,
        NasBenchmark::Lu,
        NasBenchmark::Ft,
        NasBenchmark::Sp,
        NasBenchmark::MgMpi,
    ];
    let mut rows = Vec::new();
    // Deliberately serial: this harness times host wall-clock, and running
    // its repetitions concurrently would perturb the measurement.
    for bench in benches {
        // Warm up, then take the minimum of several runs — wall-clock noise
        // on a shared host dwarfs the true instrumentation cost otherwise.
        let wall = |enabled: bool| {
            let rec = RecorderOpts {
                enabled,
                ..Default::default()
            };
            let t0 = Instant::now();
            let art = run_benchmark_cfg(
                bench,
                Class::A,
                4,
                crate::topo::apply(NetConfig::default()),
                crate::progress::apply(bench.paper_env()),
                rec,
            );
            let dt = t0.elapsed().as_secs_f64();
            (dt, art.end_time())
        };
        let _ = wall(false);
        let _ = wall(true);
        let mut off = f64::INFINITY;
        let mut on = f64::INFINITY;
        let mut vt = (0u64, 0u64);
        for _ in 0..5 {
            let (toff, voff) = wall(false);
            let (ton, von) = wall(true);
            off = off.min(toff);
            on = on.min(ton);
            vt = (voff, von);
        }
        assert_eq!(vt.0, vt.1, "instrumentation must not perturb virtual time");
        rows.push(vec![
            bench.name().to_string(),
            format!("{:.1}", off * 1e3),
            format!("{:.1}", on * 1e3),
            format!("{:.2}", (100.0 * (on - off) / off).max(0.0)),
        ]);
    }
    Series {
        id: "fig20",
        title: "Instrumentation overhead (wall-clock, class A, np=4)".to_string(),
        columns: ["bench", "uninstr_ms", "instr_ms", "overhead%"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

/// All figure harnesses in canonical order, with the rank counts the
/// runner's `--json` report exposes.
pub fn all() -> Vec<crate::Harness> {
    use crate::{Harness, HarnessKind::Figure};
    vec![
        Harness::new("fig03", Figure, 2, fig03),
        Harness::new("fig04", Figure, 2, fig04),
        Harness::new("fig05", Figure, 2, fig05),
        Harness::new("fig06", Figure, 2, fig06),
        Harness::new("fig07", Figure, 2, fig07),
        Harness::new("fig08", Figure, 2, fig08),
        Harness::new("fig09", Figure, 2, fig09),
        Harness::new("fig10", Figure, 16, fig10),
        Harness::new("fig11", Figure, 16, fig11),
        Harness::new("fig12", Figure, 16, fig12),
        Harness::new("fig13", Figure, 16, fig13),
        Harness::new("fig14", Figure, 16, fig14),
        Harness::new("fig15", Figure, 16, fig15),
        Harness::new("fig16", Figure, 16, fig16),
        Harness::new("fig17", Figure, 16, fig17),
        Harness::new("fig18", Figure, 16, fig18),
        Harness::new("fig19", Figure, 16, fig19),
        Harness::new("fig20", Figure, 4, fig20),
    ]
}
