//! Registered memory regions.
//!
//! RDMA operations move bytes between *registered* regions, mirroring the
//! pinned-memory requirement of real user-level NICs. Each node owns a set of
//! regions addressed by [`RegionId`]; the communication libraries place user
//! and bounce buffers here so the simulation moves real bytes end to end
//! (payloads are checksum-verified by the NAS kernels).

use std::collections::HashMap;

/// Identifier of a registered memory region on some node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u64);

/// Registered memory of one node.
#[derive(Debug, Default)]
pub struct NodeMemory {
    regions: HashMap<u64, Vec<u8>>,
    pinned_bytes: usize,
}

impl NodeMemory {
    pub(crate) fn new() -> Self {
        NodeMemory::default()
    }

    pub(crate) fn insert(&mut self, id: RegionId, data: Vec<u8>) {
        self.pinned_bytes += data.len();
        let prev = self.regions.insert(id.0, data);
        assert!(prev.is_none(), "region id reused");
    }

    pub(crate) fn remove(&mut self, id: RegionId) -> Option<Vec<u8>> {
        let data = self.regions.remove(&id.0);
        if let Some(d) = &data {
            self.pinned_bytes -= d.len();
        }
        data
    }

    /// Read access to a region.
    pub fn get(&self, id: RegionId) -> Option<&[u8]> {
        self.regions.get(&id.0).map(|v| v.as_slice())
    }

    /// Write access to a region.
    pub fn get_mut(&mut self, id: RegionId) -> Option<&mut [u8]> {
        self.regions.get_mut(&id.0).map(|v| v.as_mut_slice())
    }

    /// Total bytes currently pinned on this node.
    pub fn pinned_bytes(&self) -> usize {
        self.pinned_bytes
    }

    /// Number of registered regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut mem = NodeMemory::new();
        mem.insert(RegionId(1), vec![1, 2, 3]);
        assert_eq!(mem.get(RegionId(1)), Some(&[1u8, 2, 3][..]));
        assert_eq!(mem.pinned_bytes(), 3);
        let data = mem.remove(RegionId(1)).unwrap();
        assert_eq!(data, vec![1, 2, 3]);
        assert_eq!(mem.pinned_bytes(), 0);
        assert!(mem.get(RegionId(1)).is_none());
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut mem = NodeMemory::new();
        mem.insert(RegionId(7), vec![0; 4]);
        mem.get_mut(RegionId(7)).unwrap()[2] = 9;
        assert_eq!(mem.get(RegionId(7)).unwrap()[2], 9);
    }

    #[test]
    #[should_panic(expected = "region id reused")]
    fn duplicate_region_id_panics() {
        let mut mem = NodeMemory::new();
        mem.insert(RegionId(1), vec![]);
        mem.insert(RegionId(1), vec![]);
    }
}
