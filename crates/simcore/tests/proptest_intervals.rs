//! Property tests for the interval algebra that ground-truth overlap
//! computation rests on.

use proptest::prelude::*;
use simcore::IntervalSet;

fn arb_intervals() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..10_000, 0u64..500), 0..40)
        .prop_map(|v| v.into_iter().map(|(s, len)| (s, s + len)).collect())
}

proptest! {
    #[test]
    fn construction_yields_sorted_disjoint(raw in arb_intervals()) {
        let set = IntervalSet::from_unsorted(raw);
        let ivs: Vec<_> = set.iter().collect();
        for w in ivs.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "intervals must be disjoint and sorted");
        }
        for (s, e) in ivs {
            prop_assert!(s < e);
        }
    }

    #[test]
    fn intersection_measure_bounded(a in arb_intervals(), b in arb_intervals()) {
        let sa = IntervalSet::from_unsorted(a);
        let sb = IntervalSet::from_unsorted(b);
        let i = sa.intersect(&sb);
        prop_assert!(i.total() <= sa.total());
        prop_assert!(i.total() <= sb.total());
    }

    #[test]
    fn intersection_commutes(a in arb_intervals(), b in arb_intervals()) {
        let sa = IntervalSet::from_unsorted(a);
        let sb = IntervalSet::from_unsorted(b);
        prop_assert_eq!(sa.intersect(&sb), sb.intersect(&sa));
    }

    #[test]
    fn self_intersection_is_identity(a in arb_intervals()) {
        let sa = IntervalSet::from_unsorted(a);
        prop_assert_eq!(sa.intersect(&sa), sa.clone());
    }

    #[test]
    fn union_measure_by_inclusion_exclusion(a in arb_intervals(), b in arb_intervals()) {
        let sa = IntervalSet::from_unsorted(a);
        let sb = IntervalSet::from_unsorted(b);
        let u = sa.union(&sb);
        let i = sa.intersect(&sb);
        prop_assert_eq!(u.total() + i.total(), sa.total() + sb.total());
    }

    #[test]
    fn overlap_with_equals_single_interval_intersection(
        a in arb_intervals(),
        start in 0u64..10_000,
        len in 0u64..2_000,
    ) {
        let sa = IntervalSet::from_unsorted(a);
        let window = IntervalSet::from_unsorted(vec![(start, start + len)]);
        prop_assert_eq!(sa.overlap_with(start, start + len), sa.intersect(&window).total());
    }

    #[test]
    fn union_contains_both(a in arb_intervals(), b in arb_intervals()) {
        let sa = IntervalSet::from_unsorted(a);
        let sb = IntervalSet::from_unsorted(b);
        let u = sa.union(&sb);
        prop_assert_eq!(u.intersect(&sa), sa.clone());
        prop_assert_eq!(u.intersect(&sb), sb.clone());
    }
}
