//! Fabric cost-model configuration.

use serde::{Deserialize, Serialize};
use simcore::{us, Duration};

use crate::fault::FaultPlan;
use crate::topology::{BackgroundJob, TopologySpec};

/// Parameters of the simulated interconnect and host interface.
///
/// The defaults approximate the paper's test platform: an 8 Gbit/s InfiniBand
/// network (Mellanox MT23108 on PCI-X) connecting dual-Xeon nodes, one MPI
/// process per node.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// One-way wire latency between any two distinct nodes, ns.
    pub wire_latency: Duration,
    /// Loopback latency for self-sends, ns.
    pub loopback_latency: Duration,
    /// Egress DMA bandwidth, bytes per nanosecond (1.0 ≈ 8 Gbit/s).
    pub bandwidth_bytes_per_ns: f64,
    /// Wire size of a control packet (RTS/CTS/FIN/headers), bytes.
    pub ctrl_packet_bytes: usize,
    /// Host cost to post a work request to the NIC, ns.
    pub post_cost: Duration,
    /// Host cost of one completion-queue / rx-queue poll, ns.
    pub poll_cost: Duration,
    /// Host memcpy throughput for bounce-buffer copies, bytes per ns.
    pub copy_bytes_per_ns: f64,
    /// Base cost of registering (pinning) a memory region, ns.
    pub reg_base: Duration,
    /// Additional registration cost per page, ns.
    pub reg_per_page: Duration,
    /// Page size used for registration accounting, bytes.
    pub page_size: usize,
    /// Model receiver-side (ingress) serialization: concurrent transfers
    /// into one node queue on its ingress engine (switch-port / incast
    /// contention). Off by default — the paper's microbenchmarks are
    /// point-to-point, but the ablation harness uses this to study how
    /// contention loosens the framework's upper bound.
    pub model_ingress_contention: bool,
    /// Two-level topology: nodes are grouped onto leaf switches of this
    /// radix; messages that cross switches pay `inter_switch_extra` on top
    /// of the wire latency. `None` models a single full-crossbar switch
    /// (the paper's testbed).
    pub switch_radix: Option<usize>,
    /// Extra one-way latency for inter-switch hops, ns.
    pub inter_switch_extra: Duration,
    /// Fabric topology. [`TopologySpec::Flat`] (the default) is the ideal
    /// crossbar and reproduces the pre-topology model byte-identically;
    /// hierarchical specs route hop-by-hop over shared, contended links
    /// (see `docs/TOPOLOGY.md`).
    pub topology: TopologySpec,
    /// Per-hop propagation latency of hierarchical topologies, ns (unused
    /// by the flat crossbar, which keeps `wire_latency` end to end).
    pub hop_latency: Duration,
    /// Co-located tenant traffic sharing the fabric's links with the
    /// measured job. `None` (the default) models exclusive use; inert on
    /// the flat crossbar (no shared links).
    pub background: Option<BackgroundJob>,
    /// Deterministic fault-injection plan. [`FaultPlan::none`] (the default)
    /// models a perfectly reliable fabric and changes no delivery behavior.
    pub faults: FaultPlan,
}

fn default_hop_latency() -> Duration {
    us(1)
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::infiniband_2006()
    }
}

impl NetConfig {
    /// Cost model approximating the paper's 2006 InfiniBand cluster.
    pub fn infiniband_2006() -> Self {
        NetConfig {
            wire_latency: us(5),
            loopback_latency: us(1) / 2,
            bandwidth_bytes_per_ns: 1.0,
            ctrl_packet_bytes: 64,
            post_cost: 200,
            poll_cost: 100,
            copy_bytes_per_ns: 3.0,
            reg_base: us(10),
            reg_per_page: 250,
            page_size: 4096,
            model_ingress_contention: false,
            switch_radix: None,
            inter_switch_extra: us(2),
            topology: TopologySpec::Flat,
            hop_latency: default_hop_latency(),
            background: None,
            faults: FaultPlan::none(),
        }
    }

    /// A much faster fabric (for ablations): lower latency, 4x bandwidth.
    pub fn fast_fabric() -> Self {
        NetConfig {
            wire_latency: us(1),
            bandwidth_bytes_per_ns: 4.0,
            ..NetConfig::infiniband_2006()
        }
    }

    /// One-way latency between `src` and `dst` under the configured
    /// topology.
    pub fn latency_between(&self, src: usize, dst: usize) -> Duration {
        if src == dst {
            return self.loopback_latency;
        }
        match self.switch_radix {
            Some(radix) if src / radix != dst / radix => {
                self.wire_latency + self.inter_switch_extra
            }
            _ => self.wire_latency,
        }
    }

    /// Instantiate the configured topology for an `nnodes`-rank job. The
    /// spec is [`TopologySpec::fitted`] first, so a small spec grows to
    /// give every rank a port instead of panicking.
    pub fn build_topology(&self, nnodes: usize) -> std::sync::Arc<dyn crate::topology::Topology> {
        self.topology.fitted(nnodes).build(
            self.wire_latency,
            self.switch_radix,
            self.inter_switch_extra,
            self.hop_latency,
        )
    }

    /// Time for the NIC to serialize `bytes` onto the wire, ns.
    pub fn serialize(&self, bytes: usize) -> Duration {
        (bytes as f64 / self.bandwidth_bytes_per_ns).ceil() as Duration
    }

    /// Host cost of copying `bytes` through a bounce buffer, ns.
    pub fn copy_cost(&self, bytes: usize) -> Duration {
        (bytes as f64 / self.copy_bytes_per_ns).ceil() as Duration
    }

    /// Host cost of registering a `bytes`-sized region, ns.
    pub fn reg_cost(&self, bytes: usize) -> Duration {
        let pages = bytes.div_ceil(self.page_size) as u64;
        self.reg_base + pages * self.reg_per_page
    }

    /// End-to-end one-way time for a `bytes`-sized data transfer on an idle
    /// fabric: serialization plus wire latency. This is what a ping-pong
    /// microbenchmark (the paper's `perf_main`) observes per direction.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        self.serialize(bytes) + self.wire_latency
    }
}

// Manual serde impls (the FaultPlan precedent): explicit on-disk shape,
// and configs written before the topology fields existed still load with
// the fields at their defaults.
impl Serialize for NetConfig {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("wire_latency".into(), self.wire_latency.to_value()),
            ("loopback_latency".into(), self.loopback_latency.to_value()),
            (
                "bandwidth_bytes_per_ns".into(),
                self.bandwidth_bytes_per_ns.to_value(),
            ),
            (
                "ctrl_packet_bytes".into(),
                self.ctrl_packet_bytes.to_value(),
            ),
            ("post_cost".into(), self.post_cost.to_value()),
            ("poll_cost".into(), self.poll_cost.to_value()),
            (
                "copy_bytes_per_ns".into(),
                self.copy_bytes_per_ns.to_value(),
            ),
            ("reg_base".into(), self.reg_base.to_value()),
            ("reg_per_page".into(), self.reg_per_page.to_value()),
            ("page_size".into(), self.page_size.to_value()),
            (
                "model_ingress_contention".into(),
                self.model_ingress_contention.to_value(),
            ),
            ("switch_radix".into(), self.switch_radix.to_value()),
            (
                "inter_switch_extra".into(),
                self.inter_switch_extra.to_value(),
            ),
            ("topology".into(), self.topology.to_value()),
            ("hop_latency".into(), self.hop_latency.to_value()),
            ("background".into(), self.background.to_value()),
            ("faults".into(), self.faults.to_value()),
        ])
    }
}

impl Deserialize for NetConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(NetConfig {
            wire_latency: Deserialize::from_value(v.field("wire_latency"))?,
            loopback_latency: Deserialize::from_value(v.field("loopback_latency"))?,
            bandwidth_bytes_per_ns: Deserialize::from_value(v.field("bandwidth_bytes_per_ns"))?,
            ctrl_packet_bytes: Deserialize::from_value(v.field("ctrl_packet_bytes"))?,
            post_cost: Deserialize::from_value(v.field("post_cost"))?,
            poll_cost: Deserialize::from_value(v.field("poll_cost"))?,
            copy_bytes_per_ns: Deserialize::from_value(v.field("copy_bytes_per_ns"))?,
            reg_base: Deserialize::from_value(v.field("reg_base"))?,
            reg_per_page: Deserialize::from_value(v.field("reg_per_page"))?,
            page_size: Deserialize::from_value(v.field("page_size"))?,
            model_ingress_contention: Deserialize::from_value(v.field("model_ingress_contention"))?,
            switch_radix: Deserialize::from_value(v.field("switch_radix"))?,
            inter_switch_extra: Deserialize::from_value(v.field("inter_switch_extra"))?,
            // Absent in pre-topology configs: flat fabric, default hop cost.
            topology: Deserialize::from_value(v.field("topology"))?,
            hop_latency: Deserialize::from_value(v.field("hop_latency"))
                .unwrap_or_else(|_| default_hop_latency()),
            background: Deserialize::from_value(v.field("background"))?,
            faults: Deserialize::from_value(v.field("faults"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_scales_with_bandwidth() {
        let cfg = NetConfig::infiniband_2006();
        assert_eq!(cfg.serialize(1000), 1000);
        let fast = NetConfig::fast_fabric();
        assert_eq!(fast.serialize(1000), 250);
    }

    #[test]
    fn reg_cost_counts_pages() {
        let cfg = NetConfig::infiniband_2006();
        let one_page = cfg.reg_cost(1);
        let two_pages = cfg.reg_cost(4097);
        assert_eq!(two_pages - one_page, cfg.reg_per_page);
        assert!(one_page >= cfg.reg_base);
    }

    #[test]
    fn topology_latency() {
        let flat = NetConfig::infiniband_2006();
        assert_eq!(flat.latency_between(0, 5), flat.wire_latency);
        let tree = NetConfig {
            switch_radix: Some(4),
            ..NetConfig::infiniband_2006()
        };
        // Same leaf switch (0..3): base latency; across switches: extra hop.
        assert_eq!(tree.latency_between(0, 3), tree.wire_latency);
        assert_eq!(
            tree.latency_between(0, 4),
            tree.wire_latency + tree.inter_switch_extra
        );
        assert_eq!(tree.latency_between(2, 2), tree.loopback_latency);
    }

    #[test]
    fn transfer_time_monotonic_in_size() {
        let cfg = NetConfig::default();
        let mut prev = 0;
        for sz in [0usize, 64, 1024, 10_240, 1 << 20] {
            let t = cfg.transfer_time(sz);
            assert!(t >= prev);
            prev = t;
        }
    }
}
