//! Per-node NIC state: egress DMA engine, completion queue, receive queue.

use std::collections::VecDeque;

use bytes::Bytes;
use simcore::Time;

use crate::memory::RegionId;
use crate::packet::Packet;

/// Identifier of a posted work request, returned by the `post_*` calls and
/// echoed in the matching [`Completion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WrId(pub u64);

/// Causal breakdown of where a fabric operation's time went before it
/// completed: every completion (and ground-truth transfer record) carries
/// one, so wait-state analysis can say what a blocked host was actually
/// waiting *on* — queueing, the wire, or fault recovery.
///
/// The components are disjoint: `serialize_ns` is pure wire occupancy for
/// this packet, the queue fields are time spent waiting behind *other*
/// packets' occupancy, and `fault_extra_ns` is injected disturbance
/// (retransmission delay, link degradation, NIC stall holds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CausalEdge {
    /// Waited behind earlier packets for the egress DMA engine, ns.
    pub dma_queue_ns: u64,
    /// Wire/DMA serialization of this packet itself, ns.
    pub serialize_ns: u64,
    /// Waited behind earlier packets for the ingress engine, ns.
    pub ingress_queue_ns: u64,
    /// Waited behind other flows on shared fabric links along the route
    /// (per-hop queuing under a hierarchical topology), ns.
    pub hop_queue_ns: u64,
    /// Fault-injected extra latency (delay, degradation, stall holds), ns.
    pub fault_extra_ns: u64,
}

impl CausalEdge {
    /// Total causal delay beyond the unloaded path, ns.
    pub fn queued_ns(&self) -> u64 {
        self.dma_queue_ns + self.ingress_queue_ns + self.hop_queue_ns + self.fault_extra_ns
    }

    /// Fabric-contention share of the delay: time spent queued behind
    /// *other flows* in the network (shared links + ingress engine), as
    /// opposed to the local DMA queue or injected faults. This is what the
    /// `contention` wait cause carves out of `wire_drain`.
    pub fn contention_ns(&self) -> u64 {
        self.hop_queue_ns + self.ingress_queue_ns
    }
}

/// A completion-queue entry: the NIC finished a posted work request.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The work request this completes.
    pub wr_id: WrId,
    /// Library-defined correlation word (set at post time).
    pub user: u64,
    /// For RDMA Read completions, the fetched bytes.
    pub data: Option<bytes::Bytes>,
    /// Immediate data (InfiniBand-style): opaque words a remote NIC attached
    /// to this completion. Used by the hardware tag-matching offload to
    /// carry the matched message's `(src, tag, transfer id)`; all-zero for
    /// host-initiated operations.
    pub imm: [u64; 3],
    /// Where the operation's time went before this completion fired.
    pub edge: CausalEdge,
}

/// A receive descriptor posted into a NIC's hardware tag-matching table
/// (`None` selector fields are wildcards).
#[derive(Debug, Clone, Copy)]
pub(crate) struct HwPosted {
    pub(crate) src: Option<usize>,
    pub(crate) tag: Option<u64>,
    /// Correlation word echoed in the matching completion.
    pub(crate) user: u64,
}

/// An arrival parked in a NIC's hardware unexpected queue, awaiting a
/// matching posted receive.
#[derive(Debug)]
pub(crate) enum HwUnexpected {
    /// Eager payload held in the NIC's overflow buffer.
    Eager {
        src: usize,
        tag: u64,
        /// Opaque transfer-id word echoed in the completion's immediate data.
        xfer: u64,
        data: Bytes,
        edge: CausalEdge,
        /// Match-notification correlation word to complete back at the
        /// sender once matched (synchronous sends).
        ack: Option<u64>,
    },
    /// Rendezvous RTS: the pull starts when a receive matches.
    Rndv {
        src: usize,
        tag: u64,
        len: usize,
        region: RegionId,
        /// Fabric transfer id for the pull.
        xfer: u64,
        /// FIN notification delivered to the sender when the pull completes.
        fin: Packet,
    },
}

impl HwUnexpected {
    pub(crate) fn envelope(&self) -> (usize, u64) {
        match self {
            HwUnexpected::Eager { src, tag, .. } | HwUnexpected::Rndv { src, tag, .. } => {
                (*src, *tag)
            }
        }
    }

    pub(crate) fn matches(&self, src: Option<usize>, tag: Option<u64>) -> bool {
        let (s, t) = self.envelope();
        src.is_none_or(|v| v == s) && tag.is_none_or(|v| v == t)
    }
}

/// NIC state for one node. All mutation happens inside the world lock; hosts
/// observe `cq` and `rx` only through polls.
#[derive(Debug, Default)]
pub struct Nic {
    /// Virtual time at which the egress DMA engine becomes free.
    pub(crate) dma_free_at: Time,
    /// Virtual time at which the ingress engine becomes free (only used
    /// when ingress contention is modeled).
    pub(crate) ingress_free_at: Time,
    /// Completion queue, drained by host polls.
    pub(crate) cq: VecDeque<Completion>,
    /// Received packets, drained by host polls.
    pub(crate) rx: VecDeque<Packet>,
    /// Statistics: total completions generated.
    pub(crate) completions_generated: u64,
    /// Statistics: total packets delivered.
    pub(crate) packets_delivered: u64,
    /// Hardware tag-matching table: posted receive descriptors, searched in
    /// post order (MPI non-overtaking).
    pub(crate) hw_posted: VecDeque<HwPosted>,
    /// Hardware unexpected queue: arrivals with no matching descriptor,
    /// searched in arrival order.
    pub(crate) hw_unexpected: VecDeque<HwUnexpected>,
}

impl Nic {
    pub(crate) fn new() -> Self {
        Nic::default()
    }

    /// Reserve the egress DMA engine starting no earlier than `now` for
    /// `busy` ns; returns the actual start time.
    pub(crate) fn reserve_dma(&mut self, now: Time, busy: u64) -> Time {
        let start = self.dma_free_at.max(now);
        self.dma_free_at = start + busy;
        start
    }

    /// Reserve the ingress engine starting no earlier than `earliest` for
    /// `busy` ns; returns the completion time.
    pub(crate) fn reserve_ingress(&mut self, earliest: Time, busy: u64) -> Time {
        let start = self.ingress_free_at.max(earliest);
        self.ingress_free_at = start + busy;
        start + busy
    }

    /// True if the host would observe anything on a poll.
    pub fn has_host_events(&self) -> bool {
        !self.cq.is_empty() || !self.rx.is_empty()
    }

    /// First posted hardware receive descriptor matching `(src, tag)`, in
    /// post order.
    pub(crate) fn hw_match(&self, src: usize, tag: u64) -> Option<usize> {
        self.hw_posted
            .iter()
            .position(|e| e.src.is_none_or(|s| s == src) && e.tag.is_none_or(|t| t == tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_serializes_back_to_back_requests() {
        let mut nic = Nic::new();
        let s1 = nic.reserve_dma(100, 50);
        let s2 = nic.reserve_dma(100, 50);
        assert_eq!(s1, 100);
        assert_eq!(s2, 150);
        assert_eq!(nic.dma_free_at, 200);
    }

    #[test]
    fn dma_idles_until_now() {
        let mut nic = Nic::new();
        nic.reserve_dma(0, 10);
        let s = nic.reserve_dma(500, 10);
        assert_eq!(s, 500);
    }

    #[test]
    fn host_events_flag() {
        let mut nic = Nic::new();
        assert!(!nic.has_host_events());
        nic.rx.push_back(Packet::control(0, 64, 0, [0; 6]));
        assert!(nic.has_host_events());
    }
}
