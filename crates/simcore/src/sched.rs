//! Priority schedulers for `(time, seq)`-ordered discrete events.
//!
//! The engine needs one operation: pop the pending entry with the smallest
//! `(time, seq)` key. Two implementations live here:
//!
//! * [`TimingWheel`] — a hierarchical timing wheel (64-slot levels, 6 bits
//!   per level, 11 levels covering the full `u64` nanosecond range). Push
//!   and pop are O(1) amortized: an entry is dropped into the slot that
//!   matches the highest bit in which its deadline differs from the current
//!   virtual time, and cascades toward level 0 as the wheel advances. Within
//!   one tick, entries pop in `seq` order regardless of insertion order, so
//!   the pop sequence is *exactly* the `(time, seq)` order a binary heap
//!   would produce. This is the production scheduler behind
//!   [`crate::Simulation`].
//! * [`BinaryHeapSched`] — the textbook `BinaryHeap` scheduler the engine
//!   used before the wheel landed. Kept as the reference model for the
//!   equivalence property tests (`tests/proptest_scheduler.rs`) and as the
//!   baseline in the `bench` crate's engine benchmark, which records the
//!   wheel-vs-heap throughput ratio in the `BENCH_*.json` perf trajectory.
//!
//! Neither structure is internally synchronized: the engine owns its wheel
//! on the run loop's stack and feeds it from sharded insertion buffers (see
//! `engine.rs`), taking no lock on the pop path at all.

use std::collections::{BinaryHeap, VecDeque};

/// Bits per wheel level: each level has `2^BITS = 64` slots.
const BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Levels: `11 * 6 = 66` bits, enough to cover any `u64` deadline.
const LEVELS: usize = 11;

struct Level<T> {
    /// Bitmask of non-empty slots.
    occupied: u64,
    slots: Box<[Vec<(u64, u64, T)>]>,
}

impl<T> Level<T> {
    fn new() -> Self {
        Level {
            occupied: 0,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
        }
    }
}

/// Hierarchical timing wheel popping entries in `(time, seq)` order.
///
/// `time` is an absolute virtual-time deadline; `seq` breaks ties (the
/// engine hands out strictly increasing sequence numbers, so FIFO among
/// same-time entries). Deadlines in the past — at or before the last popped
/// entry's time — are treated as due immediately, matching the engine's
/// "clamp to now" scheduling rule.
///
/// ```
/// use simcore::sched::TimingWheel;
///
/// let mut w = TimingWheel::new();
/// w.push(50, 1, "b");
/// w.push(10, 0, "a");
/// w.push(50, 2, "c");
/// assert_eq!(w.pop(), Some((10, 0, "a")));
/// assert_eq!(w.pop(), Some((50, 1, "b")));
/// assert_eq!(w.pop(), Some((50, 2, "c")));
/// assert_eq!(w.pop(), None);
/// ```
pub struct TimingWheel<T> {
    levels: Box<[Level<T>]>,
    /// Virtual-time floor: the time of the last popped entry. Entries with
    /// `time <= now` are due.
    now: u64,
    /// Due entries (`time <= now`), ordered by `seq`; popped from the front.
    cur: VecDeque<(u64, T)>,
    /// Spare buffer swapped against slot vectors during [`advance`], so a
    /// cascade never discards a slot's capacity: allocations happen only
    /// while the wheel grows past its historical high-water mark, keeping
    /// the steady-state pop/push cycle allocation-free.
    scratch: Vec<(u64, u64, T)>,
    len: usize,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    /// An empty wheel with its time floor at 0.
    pub fn new() -> Self {
        TimingWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            now: 0,
            cur: VecDeque::new(),
            scratch: Vec::new(),
            len: 0,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The current time floor (time of the most recently popped entry).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Insert an entry. `seq` must be unique; pop order is `(time, seq)`
    /// with `time` clamped to the current floor.
    pub fn push(&mut self, time: u64, seq: u64, item: T) {
        self.len += 1;
        self.insert(time, seq, item);
    }

    fn insert(&mut self, time: u64, seq: u64, item: T) {
        if time <= self.now {
            // Due immediately: merge into the current batch at its
            // seq-sorted position (almost always the back, since the engine
            // hands out increasing sequence numbers).
            let pos = self.cur.partition_point(|&(s, _)| s < seq);
            self.cur.insert(pos, (seq, item));
            return;
        }
        let level = ((63 - (time ^ self.now).leading_zeros()) / BITS) as usize;
        let slot = ((time >> (level as u32 * BITS)) & (SLOTS as u64 - 1)) as usize;
        let l = &mut self.levels[level];
        l.slots[slot].push((time, seq, item));
        l.occupied |= 1 << slot;
    }

    /// Remove and return the entry with the smallest `(time, seq)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        loop {
            if let Some((seq, item)) = self.cur.pop_front() {
                self.len -= 1;
                return Some((self.now, seq, item));
            }
            self.advance()?;
        }
    }

    /// Remove and return the next entry of the batch due at the current time
    /// floor, without ever advancing the wheel. Returns `None` once the
    /// current batch is exhausted, even if later entries are pending.
    ///
    /// Entries only ever enter the wheel with `time >= now`, so whenever an
    /// entry at time `t` has been popped, every remaining entry due at `t`
    /// is already in the current batch: draining with `pop_current` after a
    /// [`TimingWheel::pop`] yields exactly the set of same-time ties. The
    /// schedule explorer uses this to collect tie candidates for its oracle
    /// without disturbing the time floor.
    pub fn pop_current(&mut self) -> Option<(u64, u64, T)> {
        let (seq, item) = self.cur.pop_front()?;
        self.len -= 1;
        Some((self.now, seq, item))
    }

    /// Advance the wheel to the next occupied slot, promoting its entries
    /// (cascading multi-tick slots toward level 0). Returns `None` when the
    /// wheel is empty.
    fn advance(&mut self) -> Option<()> {
        for level in 0..LEVELS {
            let shift = level as u32 * BITS;
            let cur_slot = ((self.now >> shift) & (SLOTS as u64 - 1)) as u32;
            // Slots earlier in the rotation than `now`'s own index belong to
            // later wrap-arounds and are reachable only through a higher
            // level, so only indices >= cur_slot are candidates here.
            let cand = self.levels[level].occupied & (!0u64 << cur_slot);
            if cand == 0 {
                continue;
            }
            let slot = cand.trailing_zeros() as usize;
            // Swap the slot's contents out through the scratch buffer: the
            // slot inherits scratch's (empty) storage and the drained buffer
            // goes back to scratch below, so no capacity is ever dropped.
            let mut entries = std::mem::take(&mut self.scratch);
            std::mem::swap(&mut self.levels[level].slots[slot], &mut entries);
            self.levels[level].occupied &= !(1u64 << slot);
            // Advance the floor to the slot's base time (higher bits kept).
            let above = shift + BITS;
            let high = if above >= 64 {
                0
            } else {
                self.now >> above << above
            };
            self.now = high | ((slot as u64) << shift);
            if level == 0 {
                // A level-0 slot spans exactly one tick: every entry is due
                // at `self.now`; order the batch by seq and serve it. `cur`
                // is empty here (advance runs only once it drains), so its
                // storage is reused batch after batch.
                debug_assert!(entries.iter().all(|&(t, ..)| t == self.now));
                debug_assert!(self.cur.is_empty());
                self.cur.extend(entries.drain(..).map(|(_, s, it)| (s, it)));
                self.cur.make_contiguous().sort_unstable_by_key(|&(s, _)| s);
            } else {
                // A multi-tick slot: redistribute its entries, which now map
                // strictly below this level (or into `cur` if due) — never
                // back into the slot just vacated, so handing `entries` to
                // `scratch` afterwards is safe.
                for (t, s, it) in entries.drain(..) {
                    self.insert(t, s, it);
                }
            }
            self.scratch = entries;
            return Some(());
        }
        debug_assert_eq!(self.len, 0);
        None
    }
}

#[derive(Debug)]
struct HeapEntry<T> {
    time: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    // Reversed so the max-heap pops the smallest `(time, seq)` first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The pre-wheel reference scheduler: a `BinaryHeap` keyed on `(time, seq)`.
///
/// Functionally identical to [`TimingWheel`] (the property tests assert it);
/// kept as the equivalence model and the benchmark baseline.
#[derive(Default)]
pub struct BinaryHeapSched<T> {
    heap: BinaryHeap<HeapEntry<T>>,
}

impl<T> BinaryHeapSched<T> {
    /// An empty heap scheduler.
    pub fn new() -> Self {
        BinaryHeapSched {
            heap: BinaryHeap::new(),
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Insert an entry.
    pub fn push(&mut self, time: u64, seq: u64, item: T) {
        self.heap.push(HeapEntry { time, seq, item });
    }

    /// Remove and return the entry with the smallest `(time, seq)`. Unlike
    /// the wheel, past deadlines are reported as-is, not clamped; the engine
    /// never schedules into the past, so the two never diverge in practice
    /// (the property tests only generate monotonic-safe workloads).
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        self.heap.pop().map(|e| (e.time, e.seq, e.item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimingWheel::new();
        w.push(100, 3, ());
        w.push(100, 1, ());
        w.push(7, 2, ());
        w.push(100, 2, ());
        w.push(1_000_000, 4, ());
        let order: Vec<(u64, u64)> =
            std::iter::from_fn(|| w.pop().map(|(t, s, _)| (t, s))).collect();
        assert_eq!(
            order,
            [(7, 2), (100, 1), (100, 2), (100, 3), (1_000_000, 4)]
        );
    }

    #[test]
    fn same_tick_reinsertion_pops_after_current() {
        let mut w = TimingWheel::new();
        w.push(10, 0, "a");
        assert_eq!(w.pop(), Some((10, 0, "a")));
        // Scheduled "now" (and even in the past) while at t=10: due at 10.
        w.push(10, 1, "b");
        w.push(3, 2, "c");
        assert_eq!(w.pop(), Some((10, 1, "b")));
        assert_eq!(w.pop(), Some((10, 2, "c")));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn distant_deadlines_cascade_correctly() {
        let mut w = TimingWheel::new();
        // One entry per wheel level, in reverse deadline order.
        let times: Vec<u64> = (0..10u32).rev().map(|k| 1u64 << (6 * k)).collect();
        for (i, &t) in times.iter().enumerate() {
            w.push(t, i as u64, t);
        }
        w.push(u64::MAX, 99, u64::MAX);
        let mut last = 0;
        let mut n = 0;
        while let Some((t, _, item)) = w.pop() {
            assert_eq!(t, item);
            assert!(t >= last);
            last = t;
            n += 1;
        }
        assert_eq!(n, 11);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut w = TimingWheel::new();
        let mut seq = 0u64;
        let mut pushed = 0usize;
        let mut popped = Vec::new();
        // Deterministic LCG workload.
        let mut state = 0xdeadbeefu64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..200 {
            for _ in 0..(round % 7) {
                let t = w.now() + rng() % 10_000;
                w.push(t, seq, ());
                seq += 1;
                pushed += 1;
            }
            if round % 3 != 0 {
                if let Some((t, s, ())) = w.pop() {
                    popped.push((t, s));
                }
            }
        }
        while let Some((t, s, ())) = w.pop() {
            popped.push((t, s));
        }
        assert_eq!(popped.len(), pushed);
        for pair in popped.windows(2) {
            assert!(pair[0] < pair[1], "out of order: {pair:?}");
        }
    }

    #[test]
    fn pop_current_drains_only_the_due_batch() {
        let mut w = TimingWheel::new();
        w.push(10, 0, "a");
        w.push(10, 2, "c");
        w.push(10, 1, "b");
        w.push(20, 3, "d");
        assert_eq!(w.pop(), Some((10, 0, "a")));
        assert_eq!(w.pop_current(), Some((10, 1, "b")));
        assert_eq!(w.pop_current(), Some((10, 2, "c")));
        // The batch at t=10 is exhausted; t=20 must not be touched.
        assert_eq!(w.pop_current(), None);
        assert_eq!(w.len(), 1);
        // Re-inserting at the floor merges back in seq order.
        w.push(10, 1, "b");
        w.push(10, 2, "c");
        assert_eq!(w.pop(), Some((10, 1, "b")));
        assert_eq!(w.pop(), Some((10, 2, "c")));
        assert_eq!(w.pop(), Some((20, 3, "d")));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn len_tracks_pending_entries() {
        let mut w = TimingWheel::new();
        assert!(w.is_empty());
        w.push(5, 0, ());
        w.push(500_000, 1, ());
        assert_eq!(w.len(), 2);
        w.pop();
        assert_eq!(w.len(), 1);
        w.pop();
        assert!(w.is_empty());
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn heap_reference_matches_wheel_on_fixed_workload() {
        let mut w = TimingWheel::new();
        let mut h = BinaryHeapSched::new();
        for (i, t) in [500u64, 3, 3, 80_000, 500, 0, 1 << 40, 63, 64, 65]
            .into_iter()
            .enumerate()
        {
            w.push(t, i as u64, ());
            h.push(t, i as u64, ());
        }
        loop {
            let (a, b) = (w.pop(), h.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
