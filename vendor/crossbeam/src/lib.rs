//! Minimal offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`
//! synchronous channels — sufficient for the engine's bounded rendezvous
//! channels.

/// Multi-producer channels with a bounded capacity.
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError, TrySendError};

    /// Sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Block until the value is accepted by the channel.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            self.0.send(t)
        }

        /// Attempt to send without blocking.
        pub fn try_send(&self, t: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(t)
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Attempt to receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Create a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn rendezvous_roundtrip() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(7).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
