//! Minimal offline stand-in for `serde_json`.
//!
//! Prints and parses the local `serde` stub's [`Value`] tree as JSON text.
//! Object key order is preserved, integers stay exact, and floats print in
//! shortest-roundtrip form, so output is deterministic.

use std::fmt;

use serde::{Deserialize, Serialize};
pub use serde::{Number, Value};

/// Error produced by JSON parsing or value conversion.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(v: &T) -> Value {
    v.to_value()
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ------------------------------------------------------------------ printer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(o) => {
            if o.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    use std::fmt::Write as _;
    match n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(f) => {
            if !f.is_finite() {
                out.push_str("null");
            } else if f.fract() == 0.0 && f.abs() < 1e15 {
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(Error(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        let n = if float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|e| Error(format!("bad number {text:?}: {e}")))?,
            )
        } else if let Some(neg) = text.strip_prefix('-') {
            Number::NegInt(
                -neg.parse::<i64>()
                    .map_err(|e| Error(format!("bad number {text:?}: {e}")))?,
            )
        } else {
            Number::PosInt(
                text.parse::<u64>()
                    .map_err(|e| Error(format!("bad number {text:?}: {e}")))?,
            )
        };
        Ok(Value::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_roundtrip() {
        let v: Value =
            from_str(r#"{"t":10,"ev":"call_enter","name":"MPI_Isend","xs":[1,2.5,-3],"ok":true}"#)
                .unwrap();
        assert!(v["t"].is_u64());
        assert_eq!(v["name"], "MPI_Isend");
        assert_eq!(v["xs"].as_array().unwrap().len(), 3);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = Value::Object(vec![
            ("a".into(), Value::Num(Number::PosInt(1))),
            ("b".into(), Value::Array(vec![Value::Null])),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"a\": 1,"));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn string_escapes() {
        let v = Value::Str("a\"b\\c\nd".into());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }
}
