//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses with plain
//! deterministic random sampling: every test case is derived from a seed that
//! is a function of the test's module path, name, and case index, so runs are
//! bit-reproducible. There is no shrinking — a failing case reports its case
//! index and message and panics.

use std::marker::PhantomData;
use std::rc::Rc;

/// Commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!` family macros.
#[derive(Debug)]
pub struct TestCaseError {
    /// Human-readable failure message.
    pub message: String,
}

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic splitmix64 generator driving all sampling.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for one test case.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x51_7C_C1_B7_27_22_0A_95,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// FNV-1a hash of a test name, used as the base seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample_one(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (used by `prop_oneof!`).
    fn boxed_any(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample_one(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample_one(rng))
    }
}

trait DynStrategy {
    type Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample_one(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample_one(&self, rng: &mut TestRng) -> V {
        self.0.sample_dyn(rng)
    }
}

/// Uniform choice between type-erased strategies (built by `prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Union over non-empty `arms`.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample_one(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample_one(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_one(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample_one(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi - lo) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample_one(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_one(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over the full range of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample_one(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy combinators namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for vectors with random length and elements.
        pub struct VecStrategy<S> {
            elem: S,
            size: std::ops::Range<usize>,
        }

        /// Vector of `elem` samples with a length drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample_one(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = Strategy::sample_one(&self.size, rng);
                (0..len).map(|_| self.elem.sample_one(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy for `Option<T>` (evenly `Some`/`None`).
        pub struct OptionStrategy<S>(S);

        /// `Some(sample)` half the time, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample_one(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 1 == 1 {
                    Some(self.0.sample_one(rng))
                } else {
                    None
                }
            }
        }
    }
}

/// Build a [`Union`] strategy from heterogeneous arms of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed_any($arm)),+])
    };
}

/// Assert a condition inside a `proptest!` body, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }` runs
/// `cases` times with deterministically sampled arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($p:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::seed_from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::from_seed(
                    __seed.wrapping_add((__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                $(let $p = $crate::Strategy::sample_one(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), __case, __cfg.cases, __e.message
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u64, bool)> {
        (0u64..100, any::<bool>())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, mut v in prop::collection::vec(0u8..5, 0..10)) {
            prop_assert!((3..17).contains(&x));
            v.sort_unstable();
            for b in v {
                prop_assert!(b < 5);
            }
        }

        #[test]
        fn oneof_and_map(y in prop_oneof![Just(1u32), (2u32..5).prop_map(|v| v * 10)]) {
            prop_assert!(y == 1 || (20..50).contains(&y));
        }

        #[test]
        fn tuples_and_options(
            (a, b) in arb_pair(),
            o in prop::option::of(1u64..4),
        ) {
            prop_assert!(a < 100);
            let _ = b;
            if let Some(x) = o {
                prop_assert_eq!(x.clamp(1, 3), x);
            }
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = prop::collection::vec(0u64..1000, 1..20);
        let mut r1 = crate::TestRng::from_seed(9);
        let mut r2 = crate::TestRng::from_seed(9);
        assert_eq!(strat.sample_one(&mut r1), strat.sample_one(&mut r2));
    }
}
