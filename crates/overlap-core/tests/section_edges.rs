//! Monitored-section edge cases: transfers crossing section boundaries,
//! nesting, and attribution rules.

use overlap_core::{ManualClock, Recorder, RecorderOpts, XferTimeTable};

fn recorder(clock: &ManualClock) -> Recorder {
    Recorder::new(
        0,
        Box::new(clock.clone()),
        XferTimeTable::from_points(vec![(1, 500)]),
        RecorderOpts::default(),
    )
}

#[test]
fn transfer_attributed_to_section_at_begin() {
    let clock = ManualClock::new();
    let mut r = recorder(&clock);
    r.section_begin("a");
    r.call_enter("Isend");
    r.xfer_begin(1, 100);
    r.call_exit();
    r.section_end();
    clock.advance(1_000);
    // Ends outside any section — still belongs to "a".
    r.call_enter("Wait");
    r.xfer_end(1, 100);
    r.call_exit();
    let rep = r.finish();
    assert_eq!(rep.sections["a"].total.transfers, 1);
    assert_eq!(rep.total.transfers, 1);
}

#[test]
fn end_only_transfer_attributed_to_section_at_end() {
    let clock = ManualClock::new();
    let mut r = recorder(&clock);
    r.call_enter("Recv");
    clock.advance(10);
    r.call_exit();
    r.section_begin("late");
    r.call_enter("Recv");
    r.xfer_end(7, 64); // end-only (eager receive)
    r.call_exit();
    r.section_end();
    let rep = r.finish();
    assert_eq!(rep.sections["late"].total.transfers, 1);
}

#[test]
fn nested_sections_attribute_to_innermost() {
    let clock = ManualClock::new();
    let mut r = recorder(&clock);
    r.section_begin("outer");
    clock.advance(100);
    r.section_begin("inner");
    clock.advance(200);
    r.call_enter("Recv");
    r.xfer_end(1, 64);
    clock.advance(50);
    r.call_exit();
    r.section_end();
    clock.advance(25);
    r.section_end();
    let rep = r.finish();
    // Transfer belongs to the innermost active section.
    assert_eq!(rep.sections["inner"].total.transfers, 1);
    assert_eq!(rep.sections["outer"].total.transfers, 0);
    // Time attribution follows the innermost-section rule too.
    assert_eq!(rep.sections["inner"].compute_time, 200);
    assert_eq!(rep.sections["inner"].call_time, 50);
    assert_eq!(rep.sections["outer"].compute_time, 100 + 25);
}

#[test]
fn repeated_section_accumulates() {
    let clock = ManualClock::new();
    let mut r = recorder(&clock);
    for i in 0..3u64 {
        r.section_begin("solve");
        r.call_enter("Recv");
        clock.advance(10);
        r.xfer_end(i, 64);
        r.call_exit();
        r.section_end();
        clock.advance(100);
    }
    let rep = r.finish();
    let s = &rep.sections["solve"];
    assert_eq!(s.total.transfers, 3);
    assert_eq!(s.call_time, 30);
    assert_eq!(s.compute_time, 0); // the 100s fall outside the section
    assert_eq!(rep.user_compute_time, 300);
}

#[test]
fn empty_section_appears_with_zero_stats() {
    let clock = ManualClock::new();
    let mut r = recorder(&clock);
    r.section_begin("idle");
    r.section_end();
    let rep = r.finish();
    assert!(rep.sections.contains_key("idle"));
    assert_eq!(rep.sections["idle"].total.transfers, 0);
}

#[test]
fn section_bins_match_section_total() {
    let clock = ManualClock::new();
    let mut r = recorder(&clock);
    r.section_begin("s");
    r.call_enter("Recv");
    r.xfer_end(1, 100);
    r.xfer_end(2, 100_000);
    r.call_exit();
    r.section_end();
    let rep = r.finish();
    let s = &rep.sections["s"];
    let bin_sum: u64 = s.by_bin.iter().map(|b| b.transfers).sum();
    assert_eq!(bin_sum, s.total.transfers);
    assert_eq!(s.by_bin.len(), rep.bin_labels.len());
}
