#![warn(missing_docs)]

//! # bench — figure reproduction and micro-benchmarks
//!
//! One harness per figure of the paper's evaluation (Figures 3–20 — the
//! paper has no numbered tables). Each `figNN()` returns a [`Series`] whose
//! rows mirror the data series the corresponding figure plots; the
//! `figures` bench target and the `repro` binary print them.
//!
//! Shape expectations (paper vs. this reproduction) are recorded in
//! `EXPERIMENTS.md`.

pub mod ablations;
pub mod alloc;
pub mod critpath;
pub mod enginebench;
pub mod explore;
pub mod figures;
pub mod micro;
pub mod progress;
pub mod runner;
pub mod serve;
pub mod topo;
pub mod tracecap;

/// A named harness entry point producing one [`Series`].
pub type HarnessFn = fn() -> Series;

/// Which family a harness belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum HarnessKind {
    /// A paper-figure reproduction (figures 3–20).
    Figure,
    /// An ablation / extra study (DESIGN.md §6).
    Ablation,
}

/// One registry entry: a harness plus the metadata the runner reports.
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    /// Harness identifier, e.g. `"fig05"`.
    pub id: &'static str,
    /// Figure or ablation.
    pub kind: HarnessKind,
    /// Simulated ranks/agents the harness spins up (largest configuration).
    pub ranks: usize,
    /// The entry point.
    pub run: HarnessFn,
}

impl Harness {
    /// Registry constructor.
    pub const fn new(id: &'static str, kind: HarnessKind, ranks: usize, run: HarnessFn) -> Self {
        Harness {
            id,
            kind,
            ranks,
            run,
        }
    }
}

/// A printable data series: the reproduction of one figure.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Series {
    /// Figure identifier, e.g. `"fig05"`.
    pub id: &'static str,
    /// What the paper's figure shows.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows, stringified.
    pub rows: Vec<Vec<String>>,
}

impl Series {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "== {} — {} ==", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        let _ = writeln!(s, "{}", header.join("  "));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(s, "{}", line.join("  "));
        }
        s
    }
}

impl Series {
    /// Write the series as JSON under `dir` (named `<id>.json`), for
    /// archival/regression diffing. Errors are reported, not fatal.
    pub fn save_json(&self, dir: &std::path::Path) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir:?}: {e}");
            return;
        }
        let path = dir.join(format!("{}.json", self.id));
        match serde_json::to_string_pretty(self) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("cannot write {path:?}: {e}");
                }
            }
            Err(e) => eprintln!("cannot serialize {}: {e}", self.id),
        }
    }
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:.1}")
}

/// Format microseconds.
pub fn f_us(ns: f64) -> String {
    format!("{:.1}", ns / 1e3)
}

/// Format milliseconds.
pub fn f_ms(v: f64) -> String {
    format!("{v:.2}")
}
