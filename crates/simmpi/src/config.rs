//! Library configuration and presets mirroring the paper's three
//! communication environments.

/// How outstanding communication makes progress between library calls.
///
/// The paper's 2006 libraries are [`ProgressModel::Polling`]: a rank only
/// advances transfers when it re-enters the MPI library. The other models
/// reproduce the modern designs surveyed in `docs/PROGRESS.md` — an
/// asynchronous per-rank progress fiber (Zhou et al., "MPI Progress For
/// All"), early-bird delivery of unexpected eager messages (Marts et al.),
/// and full NIC tag matching. Every model is deterministic, explorable by
/// the schedule oracle, and exactly reconciled in wait-state attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressModel {
    /// Library-call-driven progress — today's default, byte-identical to
    /// the pre-model simulator.
    Polling,
    /// A dedicated progress fiber per rank drives the progress engine every
    /// `poll_interval` ns of virtual compute time. Stolen cycles appear as
    /// compute slowdown and as the `progress_steal` wait cause.
    AsyncRank {
        /// Virtual-time distance between progress-fiber poll boundaries, ns.
        poll_interval: simcore::Duration,
    },
    /// Unexpected eager messages are matched and copied into the library's
    /// bounce buffer at arrival-processing time rather than at the next
    /// library call that drains them — the receive that finally matches
    /// pays no copy, so late-sender waits shrink.
    EarlyBird,
    /// Tag matching and the rendezvous handshake complete inside the NIC
    /// with zero host involvement: arrivals match posted receives at wire
    /// arrival time, rendezvous data is pulled NIC-to-NIC, and the host
    /// only observes completions.
    HwTag,
}

impl ProgressModel {
    /// Default `async-rank` poll interval, ns.
    pub const DEFAULT_POLL_INTERVAL: simcore::Duration = 5_000;

    /// Stable label used in CLI specs, series rows, and docs.
    pub fn label(&self) -> &'static str {
        match self {
            ProgressModel::Polling => "polling",
            ProgressModel::AsyncRank { .. } => "async-rank",
            ProgressModel::EarlyBird => "early-bird",
            ProgressModel::HwTag => "hw-tag",
        }
    }

    /// Parse a CLI spec: `polling`, `async-rank`,
    /// `async-rank:interval=<ns>`, `early-bird`, or `hw-tag`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (name, params) = match spec.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (spec, None),
        };
        match (name, params) {
            ("polling", None) => Ok(ProgressModel::Polling),
            ("early-bird", None) => Ok(ProgressModel::EarlyBird),
            ("hw-tag", None) => Ok(ProgressModel::HwTag),
            ("async-rank", None) => Ok(ProgressModel::AsyncRank {
                poll_interval: Self::DEFAULT_POLL_INTERVAL,
            }),
            ("async-rank", Some(p)) => {
                let interval = p
                    .strip_prefix("interval=")
                    .and_then(|v| v.parse::<simcore::Duration>().ok())
                    .filter(|&v| v > 0)
                    .ok_or_else(|| {
                        format!(
                            "bad async-rank parameters {p:?} \
                             (expected interval=<ns>, ns > 0)"
                        )
                    })?;
                Ok(ProgressModel::AsyncRank {
                    poll_interval: interval,
                })
            }
            _ => Err(format!(
                "unknown progress model {spec:?} (expected polling, \
                 async-rank[:interval=<ns>], early-bird, or hw-tag)"
            )),
        }
    }
}

/// Long-message (rendezvous) protocol variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RndvMode {
    /// Open MPI's default on InfiniBand: RTS carries the first fragment,
    /// the receiver ACKs with a CTS naming its buffer, and the sender
    /// pipelines the remaining fragments as RDMA Writes. Only the initial
    /// fragment can overlap application computation — the rest are scheduled
    /// from inside the wait.
    PipelinedWrite,
    /// Open MPI with `mpi_leave_pinned` / MVAPICH2's zero-copy design: the
    /// RTS advertises the pinned send buffer and the receiver pulls it with
    /// one RDMA Read, notifying the sender on completion.
    DirectRead,
}

/// Tunables of the simulated MPI library.
#[derive(Debug, Clone)]
pub struct MpiConfig {
    /// Messages of at most this many bytes use the eager protocol.
    pub eager_threshold: usize,
    /// Rendezvous variant for longer messages.
    pub rndv_mode: RndvMode,
    /// Fragment size of the pipelined RDMA-Write scheme.
    pub fragment_size: usize,
    /// Cache registrations in an MRU list (`mpi_leave_pinned` behaviour):
    /// repeat transfers from the same-shaped buffers skip pinning costs.
    pub use_reg_cache: bool,
    /// Capacity of the registration cache, in entries.
    pub reg_cache_entries: usize,
    /// Reliability-layer retransmission timeout, ns. `None` derives a value
    /// from the fabric config (a few round trips at the eager threshold).
    /// Only consulted when the fabric has a non-empty fault plan.
    pub retrans_timeout: Option<simcore::Duration>,
    /// Retry budget per packet in the reliability layer. A packet that has
    /// been retransmitted this many times is abandoned, bounding
    /// retransmission livelock: a permanently lossy link eventually drains
    /// to quiescence (and surfaces as a simulated deadlock) instead of
    /// retransmitting forever.
    pub max_retries: u32,
    /// How outstanding communication progresses between library calls. All
    /// presets default to [`ProgressModel::Polling`] (the paper's era);
    /// `repro --progress <model>` overrides it per run.
    pub progress: ProgressModel,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig::open_mpi_pipelined()
    }
}

impl MpiConfig {
    /// Open MPI v1.0-like defaults: eager to 12 KiB, pipelined RDMA Writes
    /// in 128 KiB fragments, no registration cache.
    pub fn open_mpi_pipelined() -> Self {
        MpiConfig {
            eager_threshold: 12 * 1024,
            rndv_mode: RndvMode::PipelinedWrite,
            fragment_size: 128 * 1024,
            use_reg_cache: false,
            reg_cache_entries: 16,
            retrans_timeout: None,
            max_retries: 16,
            progress: ProgressModel::Polling,
        }
    }

    /// Open MPI with `mpi_leave_pinned=1`: direct RDMA with cached
    /// registrations.
    pub fn open_mpi_leave_pinned() -> Self {
        MpiConfig {
            rndv_mode: RndvMode::DirectRead,
            use_reg_cache: true,
            ..MpiConfig::open_mpi_pipelined()
        }
    }

    /// MVAPICH2 0.6-like: RDMA-Write eager into pre-registered buffers up to
    /// 12 KiB (the VBUF size of that era), zero-copy RDMA-Read rendezvous
    /// beyond.
    pub fn mvapich2() -> Self {
        MpiConfig {
            eager_threshold: 12 * 1024,
            rndv_mode: RndvMode::DirectRead,
            fragment_size: 128 * 1024,
            use_reg_cache: true,
            reg_cache_entries: 32,
            retrans_timeout: None,
            max_retries: 16,
            progress: ProgressModel::Polling,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_mode() {
        assert_eq!(
            MpiConfig::open_mpi_pipelined().rndv_mode,
            RndvMode::PipelinedWrite
        );
        assert_eq!(
            MpiConfig::open_mpi_leave_pinned().rndv_mode,
            RndvMode::DirectRead
        );
        assert_eq!(MpiConfig::mvapich2().rndv_mode, RndvMode::DirectRead);
        assert_eq!(MpiConfig::mvapich2().eager_threshold, 12 * 1024);
    }

    #[test]
    fn presets_default_to_polling_progress() {
        for cfg in [
            MpiConfig::open_mpi_pipelined(),
            MpiConfig::open_mpi_leave_pinned(),
            MpiConfig::mvapich2(),
        ] {
            assert_eq!(cfg.progress, ProgressModel::Polling);
        }
    }

    #[test]
    fn progress_model_specs_parse() {
        assert_eq!(ProgressModel::parse("polling"), Ok(ProgressModel::Polling));
        assert_eq!(
            ProgressModel::parse("early-bird"),
            Ok(ProgressModel::EarlyBird)
        );
        assert_eq!(ProgressModel::parse("hw-tag"), Ok(ProgressModel::HwTag));
        assert_eq!(
            ProgressModel::parse("async-rank"),
            Ok(ProgressModel::AsyncRank {
                poll_interval: ProgressModel::DEFAULT_POLL_INTERVAL
            })
        );
        assert_eq!(
            ProgressModel::parse("async-rank:interval=2500"),
            Ok(ProgressModel::AsyncRank {
                poll_interval: 2_500
            })
        );
        for bad in [
            "",
            "pollling",
            "async-rank:interval=0",
            "async-rank:interval=x",
            "async-rank:window=5",
            "hw-tag:k=2",
        ] {
            assert!(ProgressModel::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn progress_model_labels_round_trip() {
        for spec in ["polling", "async-rank", "early-bird", "hw-tag"] {
            assert_eq!(ProgressModel::parse(spec).unwrap().label(), spec);
        }
    }
}
