//! Wait-state attribution validation: the per-transfer cause breakdowns
//! must *reconcile exactly* against the overlap bounds, and the attributed
//! non-overlap must respect the fabric's ground truth.
//!
//! Invariants:
//! * **Reconciliation** — for every transfer record,
//!   `Σ breakdown == nonoverlap == xfer_time − max_overlap`, with no
//!   tolerance. Checked on a micro-benchmark figure (fig03), a NAS-kernel
//!   figure (fig14), and a faulted ablation-style run.
//! * **Ground truth** — joining bound records to the fabric's
//!   [`TransferRecord`]s by transfer id: for every undisturbed
//!   (non-flagged) transfer, the attributed non-overlap cannot claim more
//!   than the fabric actually failed to overlap,
//!   `xfer_time − max ≤ xfer_time − true_overlap + slack`, where `slack`
//!   is how far the physical duration stretched past the a-priori table
//!   time (the same congestion term that loosens the upper bound; see
//!   `tests/bounds_validation.rs`).
//! * **Causality** — a lossy fabric that forced retransmissions must
//!   surface `ack_retransmit` wait states.

use std::sync::{Mutex, MutexGuard, OnceLock};

use overlap_core::attribution::{self, WaitCause};
use overlap_core::trace::RankTrace;
use overlap_suite::prelude::*;
use simnet::{FaultPlan, TransferRecord};

/// Serialize tests: `tracecap` is process-global.
fn global_lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Assert the exact reconciliation invariant for every transfer record in
/// one rank trace, and return the rank's total attributed nanoseconds.
fn assert_reconciles(ctx: &str, tr: &RankTrace) -> u64 {
    let attr = attribution::attribute(tr);
    for rec in &attr.records {
        let explained: u64 = rec.breakdown.iter().map(|s| s.ns).sum();
        assert_eq!(
            explained, rec.nonoverlap,
            "{ctx} rank {}: transfer {:?} breakdown sums to {} but nonoverlap is {}",
            tr.rank, rec.id, explained, rec.nonoverlap
        );
        assert_eq!(
            rec.nonoverlap,
            rec.xfer_time - rec.max_overlap,
            "{ctx} rank {}: transfer {:?} nonoverlap != xfer_time - max_overlap",
            tr.rank,
            rec.id
        );
    }
    attr.total_nonoverlap()
}

#[test]
fn fig03_and_fig14_attribution_reconciles_exactly() {
    let _g = global_lock();
    bench::tracecap::enable();
    let _ = bench::tracecap::drain(); // discard scopes captured by earlier tests

    for id in ["fig03", "fig14"] {
        let h = bench::figures::all()
            .into_iter()
            .find(|h| h.id == id)
            .unwrap_or_else(|| panic!("harness {id} not registered"));
        let _series = (h.run)();
    }

    let captured = bench::tracecap::drain();
    assert!(
        !captured.is_empty(),
        "traced harnesses should register scopes"
    );
    let mut records = 0usize;
    let mut waits = 0usize;
    for (scope, bundle) in &captured {
        for tr in &bundle.ranks {
            assert_reconciles(scope, tr);
            records += tr.bounds.len();
            waits += tr.waits.len();
        }
    }
    assert!(records > 0, "captured traces should carry bound records");
    assert!(waits > 0, "captured traces should carry wait intervals");
}

#[test]
fn faulted_run_attribution_respects_ground_truth() {
    let _g = global_lock();
    let net = NetConfig {
        faults: FaultPlan {
            seed: 23,
            drop_prob: 0.05,
            delay_prob: 0.02,
            max_extra_delay: 10_000,
            ..FaultPlan::none()
        },
        ..NetConfig::default()
    };
    let size = 64usize << 10;
    let rounds = 20usize;
    let out = run_mpi(
        4,
        net.clone(),
        MpiConfig::default(),
        RecorderOpts {
            trace: true,
            ..Default::default()
        },
        move |mpi| {
            let me = mpi.rank();
            let n = mpi.nranks();
            let dst = (me + 1) % n;
            let src = (me + n - 1) % n;
            for i in 0..rounds {
                let r = mpi.irecv(Src::Rank(src), TagSel::Is(i as u64));
                let s = mpi.isend(dst, i as u64, &vec![1u8; size]);
                mpi.compute(300_000);
                mpi.wait(s);
                mpi.wait(r);
            }
        },
    )
    .expect("faulted run failed");

    let retransmissions: u64 = out.rel_stats.iter().map(|s| s.retransmissions).sum();
    assert!(
        retransmissions > 0,
        "5% loss over {rounds} ring rounds should force retransmissions"
    );

    let mut retransmit_waits = 0usize;
    let mut checked = 0usize;
    for tr in &out.traces {
        assert_reconciles("faulted", tr);
        let attr = attribution::attribute(tr);
        for rec in &attr.records {
            let Some(id) = rec.id else { continue };
            if rec.flagged {
                continue; // fault-disturbed: the bound is best-effort
            }
            let phys: Vec<&TransferRecord> =
                out.transfers.iter().filter(|t| t.xfer_id == id).collect();
            if phys.is_empty() {
                continue;
            }
            // Ground truth for this transfer from this rank's perspective:
            // intersection of the physical interval(s) with the rank's
            // compute, plus the congestion slack that loosens the upper
            // bound (truth <= max + slack, so
            // xfer - max <= xfer - truth + slack).
            let truth: i128 = phys
                .iter()
                .map(|t| t.true_overlap(&out.activity[tr.rank]) as i128)
                .sum();
            let duration: i128 = phys.iter().map(|t| t.duration() as i128).sum();
            let slack = (duration - rec.xfer_time as i128).max(0);
            let attributed = rec.nonoverlap as i128;
            assert!(
                attributed <= rec.xfer_time as i128 - truth + slack,
                "rank {} transfer {id}: attributed {} > xfer {} - truth {} + slack {}",
                tr.rank,
                attributed,
                rec.xfer_time,
                truth,
                slack
            );
            checked += 1;
        }
        retransmit_waits += tr
            .waits
            .iter()
            .filter(|w| w.cause == WaitCause::AckRetransmit)
            .count();
    }
    assert!(
        checked > 0,
        "faulted run should leave undisturbed transfers to cross-check"
    );
    assert!(
        retransmit_waits > 0,
        "retransmissions occurred but no wait was classified ack_retransmit"
    );
}
