//! Trace export must be a pure function of the selection: the same harness
//! produces byte-identical Chrome-trace and JSONL output whether its sweep
//! points run serially (`--jobs 1`) or on a full worker pool (`--jobs 8`).
//!
//! Lives in its own test binary: trace capture and the worker budget are
//! process-global, so this test must not share a process with tests that
//! configure them differently.

use overlap_core::trace::{chrome_json, jsonl};

fn capture_fig03(jobs: usize) -> (String, String) {
    bench::runner::set_jobs(jobs);
    let series = bench::figures::fig03();
    assert!(!series.rows.is_empty());
    let bundles: Vec<_> = bench::tracecap::drain().into_values().collect();
    assert_eq!(bundles.len(), 7, "one bundle per sweep point");
    (chrome_json(&bundles), jsonl(&bundles))
}

#[test]
fn trace_export_is_identical_across_worker_counts() {
    bench::tracecap::enable();
    let (chrome1, jsonl1) = capture_fig03(1);
    let (chrome8, jsonl8) = capture_fig03(8);
    assert_eq!(chrome1, chrome8, "chrome trace must not depend on --jobs");
    assert_eq!(jsonl1, jsonl8, "jsonl trace must not depend on --jobs");

    // The emitted Chrome trace must actually be valid JSON with the
    // expected envelope.
    let v: serde_json::Value = serde_json::from_str(&chrome1).expect("chrome trace parses");
    assert_eq!(v["displayTimeUnit"], "ns");
    assert!(
        v["traceEvents"].as_array().map_or(0, Vec::len) > 100,
        "trace should contain real events"
    );
    // And every JSONL line parses on its own.
    for line in jsonl1.lines() {
        let _: serde_json::Value = serde_json::from_str(line).expect("jsonl line parses");
    }
}
