//! The fixed-size circular event queue (paper Figure 2, data collection
//! module).
//!
//! Events are logged into a statically sized ring; when it fills, the data
//! processing module drains it and the head pointer resets. No tracing is
//! performed and memory use is constant regardless of run length — the
//! property that makes the approach scalable and low-overhead.

use crate::event::Event;

/// Returned by [`EventRing::push`] when the ring is at capacity. Carries the
/// rejected event back so the caller can fold it after draining — the ring
/// itself never allocates past its bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingFull(pub Event);

/// Fixed-capacity event ring.
#[derive(Debug)]
pub struct EventRing {
    buf: Vec<Event>,
    capacity: usize,
}

impl EventRing {
    /// Create a ring holding at most `capacity` events (min 2: a call-enter /
    /// call-exit pair must fit).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        EventRing {
            buf: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently queued.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no events are queued.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True if the next push would overflow.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Append an event. When the ring is full the event is handed back in
    /// [`RingFull`] instead of growing the buffer — the constant-memory
    /// invariant holds in every build profile, not just under
    /// `debug_assertions`. Callers drain (or fold) and retry.
    #[inline]
    #[must_use = "a rejected event must be folded or dropped explicitly"]
    pub fn push(&mut self, e: Event) -> Result<(), RingFull> {
        if self.is_full() {
            return Err(RingFull(e));
        }
        self.buf.push(e);
        Ok(())
    }

    /// Drain all queued events in insertion order, resetting the head
    /// pointer. The allocation is retained.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Event> {
        self.buf.drain(..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(t: u64) -> Event {
        Event::new(t, EventKind::CallExit)
    }

    #[test]
    fn fills_and_drains_in_order() {
        let mut q = EventRing::new(3);
        q.push(ev(1)).unwrap();
        q.push(ev(2)).unwrap();
        q.push(ev(3)).unwrap();
        assert!(q.is_full());
        let times: Vec<u64> = q.drain().map(|e| e.t).collect();
        assert_eq!(times, vec![1, 2, 3]);
        assert!(q.is_empty());
        // Reusable after drain.
        q.push(ev(4)).unwrap();
        assert_eq!(q.len(), 1);
    }

    /// The constant-memory bound must hold in *release* builds too (this
    /// test is profile-independent by design; CI runs it under
    /// `cargo test --release`): a push into a full ring is rejected and
    /// hands the event back rather than growing the Vec.
    #[test]
    fn overflow_is_rejected_in_all_profiles() {
        let mut q = EventRing::new(2);
        q.push(ev(1)).unwrap();
        q.push(ev(2)).unwrap();
        assert!(q.is_full());
        let rejected = q.push(ev(3)).unwrap_err();
        assert_eq!(rejected, RingFull(ev(3)));
        // Still exactly at capacity; queued events untouched.
        assert_eq!(q.len(), q.capacity());
        let times: Vec<u64> = q.drain().map(|e| e.t).collect();
        assert_eq!(times, vec![1, 2]);
        // Usable again after the drain.
        q.push(ev(4)).unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn minimum_capacity_is_two() {
        let q = EventRing::new(0);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn capacity_is_stable_across_drains() {
        let mut q = EventRing::new(8);
        for round in 0..5 {
            for i in 0..8 {
                q.push(ev(round * 8 + i)).unwrap();
            }
            assert!(q.is_full());
            assert_eq!(q.drain().count(), 8);
        }
        assert_eq!(q.capacity(), 8);
    }
}
