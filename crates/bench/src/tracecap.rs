//! Process-global trace capture for the `repro --trace <dir>` flow.
//!
//! Harnesses are plain `fn() -> Series` entry points, so they cannot take a
//! "capture traces" argument; instead the `repro` binary arms this module
//! once (before any harness runs) and harnesses consult it when building
//! their [`overlap_core::RecorderOpts`]. Each instrumented simulation run
//! registers its per-rank traces under a unique scope label
//! (`"<harness>/<point>"`); after all harnesses finish, `repro` drains the
//! store and writes one Chrome-trace + JSONL file pair per harness.
//!
//! The store is keyed by a `BTreeMap`, so drained output is ordered by scope
//! label — independent of which `--jobs` worker finished first. Combined
//! with the deterministic per-rank traces, the emitted files are
//! byte-identical across worker counts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use overlap_core::trace::{ExtraEvent, RankTrace, TraceBundle};
use overlap_core::RecorderOpts;
use simnet::FaultEvent;

static ENABLED: AtomicBool = AtomicBool::new(false);
static STORE: Mutex<BTreeMap<String, TraceBundle>> = Mutex::new(BTreeMap::new());

/// Arm trace capture for the rest of the process. Call once, before running
/// harnesses.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Whether capture is armed.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Recorder options for an instrumented harness run: the defaults, with
/// trace capture switched on when this module is armed.
pub fn rec_opts() -> RecorderOpts {
    RecorderOpts {
        trace: enabled(),
        ..Default::default()
    }
}

/// Register one simulation run's traces under `scope`. Fabric fault events
/// become generic extra markers (`fault.<kind>`) on the bundle. No-op while
/// capture is disarmed or when the run produced no traces.
pub fn record(scope: impl Into<String>, traces: Vec<RankTrace>, faults: &[FaultEvent]) {
    if !enabled() || traces.is_empty() {
        return;
    }
    let scope = scope.into();
    let extras = faults
        .iter()
        .map(|f| ExtraEvent {
            t: f.at,
            name: format!("fault.{}", f.kind.label()),
            detail: f.describe(),
        })
        .collect();
    let bundle = TraceBundle {
        scope: scope.clone(),
        ranks: traces,
        extras,
    };
    STORE.lock().unwrap().insert(scope, bundle);
}

/// Remove and return everything captured so far, ordered by scope label.
pub fn drain() -> BTreeMap<String, TraceBundle> {
    std::mem::take(&mut *STORE.lock().unwrap())
}
