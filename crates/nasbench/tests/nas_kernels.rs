//! NAS kernels: all run to completion, payloads verify, and the overlap
//! characteristics match the paper's qualitative findings (Sec. 4).

use nasbench::runner::{run_benchmark, summarize, NasBenchmark, RunArtifacts};
use nasbench::Class;
use overlap_core::RecorderOpts;
use simnet::NetConfig;

fn run(bench: NasBenchmark, class: Class, np: usize) -> RunArtifacts {
    run_benchmark(
        bench,
        class,
        np,
        NetConfig::default(),
        RecorderOpts::default(),
    )
}

#[test]
fn every_benchmark_completes_at_class_s() {
    for (bench, np) in [
        (NasBenchmark::Bt, 4),
        (NasBenchmark::Cg, 4),
        (NasBenchmark::Lu, 4),
        (NasBenchmark::Ft, 4),
        (NasBenchmark::Sp, 4),
        (NasBenchmark::SpModified, 4),
        (NasBenchmark::MgMpi, 4),
        (NasBenchmark::MgArmciBlocking, 4),
        (NasBenchmark::MgArmciNonBlocking, 4),
        (NasBenchmark::Ep, 4),
        (NasBenchmark::Is, 4),
    ] {
        let art = run(bench, Class::S, np);
        let s = summarize(bench, Class::S, np, &art);
        assert!(s.elapsed_ms > 0.0, "{} produced no work", bench.name());
        assert!(
            s.min_pct <= s.max_pct + 1e-9,
            "{}: min {} > max {}",
            bench.name(),
            s.min_pct,
            s.max_pct
        );
    }
}

#[test]
fn sp_and_bt_work_at_nine_ranks() {
    for bench in [NasBenchmark::Sp, NasBenchmark::Bt] {
        let art = run(bench, Class::S, 9);
        assert!(summarize(bench, Class::S, 9, &art).transfers > 0);
    }
}

#[test]
fn ep_is_a_negative_control() {
    let art = run(NasBenchmark::Ep, Class::S, 4);
    let s = summarize(NasBenchmark::Ep, Class::S, 4, &art);
    // Minimal communication: data transfer time is a sliver of elapsed time.
    assert!(
        s.data_transfer_ms < 0.05 * s.elapsed_ms,
        "EP communicates too much"
    );
}

#[test]
fn ft_has_low_overlap_class_a() {
    let art = run(NasBenchmark::Ft, Class::A, 4);
    let s = summarize(NasBenchmark::Ft, Class::A, 4, &art);
    assert!(
        s.max_pct < 30.0,
        "FT should have low overlap (blocking alltoall), got {}",
        s.max_pct
    );
}

#[test]
fn lu_has_high_overlap_class_a() {
    let art = run(NasBenchmark::Lu, Class::A, 4);
    let s = summarize(NasBenchmark::Lu, Class::A, 4, &art);
    assert!(
        s.max_pct > 70.0,
        "LU should exceed 70% max overlap (paper Fig. 12), got {}",
        s.max_pct
    );
}

#[test]
fn cg_overlaps_more_than_bt() {
    let cg = summarize(
        NasBenchmark::Cg,
        Class::A,
        4,
        &run(NasBenchmark::Cg, Class::A, 4),
    );
    let bt = summarize(
        NasBenchmark::Bt,
        Class::A,
        4,
        &run(NasBenchmark::Bt, Class::A, 4),
    );
    assert!(
        cg.max_pct > bt.max_pct,
        "CG ({}) should out-overlap BT ({}) — paper Sec. 4.1",
        cg.max_pct,
        bt.max_pct
    );
}

#[test]
fn sp_modification_improves_overlap_section() {
    let orig = summarize(
        NasBenchmark::Sp,
        Class::A,
        9,
        &run(NasBenchmark::Sp, Class::A, 9),
    );
    let modified = summarize(
        NasBenchmark::SpModified,
        Class::A,
        9,
        &run(NasBenchmark::SpModified, Class::A, 9),
    );
    let sec = |s: &nasbench::NasSummary| {
        s.sections
            .iter()
            .find(|x| x.name == nasbench::sp::SP_OVERLAP_SECTION)
            .expect("overlap section monitored")
            .max_pct
    };
    let (o, m) = (sec(&orig), sec(&modified));
    assert!(
        m > o + 20.0,
        "modified SP should raise section overlap markedly: {o} -> {m}"
    );
    assert!(m > 80.0, "modified section overlap should be high, got {m}");
    // The whole-code MPI time must drop too (paper Fig. 18).
    assert!(
        modified.comm_call_ms < orig.comm_call_ms,
        "MPI time should drop: {} -> {}",
        orig.comm_call_ms,
        modified.comm_call_ms
    );
}

#[test]
fn mg_nonblocking_armci_out_overlaps_blocking() {
    let bl = summarize(
        NasBenchmark::MgArmciBlocking,
        Class::A,
        8,
        &run(NasBenchmark::MgArmciBlocking, Class::A, 8),
    );
    let nb = summarize(
        NasBenchmark::MgArmciNonBlocking,
        Class::A,
        8,
        &run(NasBenchmark::MgArmciNonBlocking, Class::A, 8),
    );
    assert!(
        bl.max_pct < 10.0,
        "blocking ARMCI puts are case-1: got {}",
        bl.max_pct
    );
    assert!(
        nb.max_pct > 90.0,
        "non-blocking ARMCI should approach the paper's 99%: got {}",
        nb.max_pct
    );
}

#[test]
fn instrumentation_can_be_disabled() {
    let rec = RecorderOpts {
        enabled: false,
        ..Default::default()
    };
    let art = run_benchmark(NasBenchmark::Cg, Class::S, 4, NetConfig::default(), rec);
    let r = &art.reports()[0];
    assert_eq!(r.events_recorded, 0);
    assert_eq!(r.total.transfers, 0);
}

#[test]
fn virtual_time_is_deterministic() {
    let a = run(NasBenchmark::Sp, Class::S, 4).end_time();
    let b = run(NasBenchmark::Sp, Class::S, 4).end_time();
    assert_eq!(a, b, "identical runs must produce identical virtual times");
}

#[test]
fn ft_nonblocking_transpose_recovers_overlap() {
    // The extension the paper's FT analysis motivates: replace the blocking
    // Alltoall with Ialltoall overlapped against the local FFT pass.
    let blocking = summarize(
        NasBenchmark::Ft,
        Class::A,
        4,
        &run(NasBenchmark::Ft, Class::A, 4),
    );
    let nb = summarize(
        NasBenchmark::FtNb,
        Class::A,
        4,
        &run(NasBenchmark::FtNb, Class::A, 4),
    );
    assert!(blocking.max_pct < 10.0, "blocking FT: {}", blocking.max_pct);
    assert!(
        nb.max_pct > 50.0,
        "non-blocking FT should recover overlap: {}",
        nb.max_pct
    );
    assert!(
        nb.elapsed_ms < blocking.elapsed_ms,
        "overlap should shorten the run: {} vs {}",
        nb.elapsed_ms,
        blocking.elapsed_ms
    );
}
