//! Time source abstraction.
//!
//! The framework is agnostic to where time comes from: on real hardware it
//! would be `clock_gettime`; in this repository it is the simulation's
//! virtual clock. Only monotonicity is required.

use std::cell::Cell;
use std::rc::Rc;

/// A monotonic per-process nanosecond clock.
pub trait Clock {
    /// Current time in nanoseconds.
    fn now(&self) -> u64;
}

impl<F: Fn() -> u64> Clock for F {
    fn now(&self) -> u64 {
        self()
    }
}

/// A hand-driven clock for unit tests.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    t: Rc<Cell<u64>>,
}

impl ManualClock {
    /// New clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the absolute time (must not go backwards; debug-asserted).
    pub fn set(&self, t: u64) {
        debug_assert!(t >= self.t.get(), "ManualClock moved backwards");
        self.t.set(t);
    }

    /// Advance by `d` nanoseconds.
    pub fn advance(&self, d: u64) {
        self.t.set(self.t.get() + d);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> u64 {
        self.t.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now(), 0);
        c.advance(10);
        c.set(25);
        assert_eq!(c.now(), 25);
    }

    #[test]
    fn closures_are_clocks() {
        let c = || 42u64;
        assert_eq!(Clock::now(&c), 42);
    }
}
