//! FT's transpose, three ways: the blocking `Alltoall` the paper measured
//! at ~0 % overlap, the non-blocking `Ialltoall` extension, and the
//! per-process output files the framework writes.
//!
//! ```text
//! cargo run --release --example transpose_overlap
//! ```

use overlap_suite::prelude::*;

const NP: usize = 4;
const BLOCK: usize = 512 << 10; // per-destination transpose block
const FFT_NS: u64 = 4_000_000; // local FFT pass to hide the transpose under
const ITERS: usize = 5;

fn blocking(mpi: &mut Mpi) {
    let blocks: Vec<Vec<u8>> = vec![vec![1u8; BLOCK]; NP];
    for _ in 0..ITERS {
        mpi.alltoall(&blocks);
        mpi.compute(FFT_NS);
    }
}

fn nonblocking(mpi: &mut Mpi) {
    let blocks: Vec<Vec<u8>> = vec![vec![1u8; BLOCK]; NP];
    for _ in 0..ITERS {
        let h = mpi.ialltoall(&blocks);
        // The FFT pass, chunked with probes so the progress engine keeps
        // the collective's schedule moving.
        for _ in 0..4 {
            mpi.compute(FFT_NS / 5);
            mpi.iprobe(Src::Any, TagSel::Any);
        }
        mpi.compute(FFT_NS / 5);
        mpi.icoll_wait(h);
    }
}

fn main() {
    let run = |name: &str, body: fn(&mut Mpi)| {
        let out = run_mpi(
            NP,
            NetConfig::default(),
            MpiConfig::mvapich2(),
            RecorderOpts::default(),
            body,
        )
        .expect("simulation failed");
        let r = &out.reports[0];
        println!(
            "{name:>12}: elapsed {:6.2} ms | overlap min {:5.1}% max {:5.1}% | comm {:6.2} ms",
            out.end_time as f64 / 1e6,
            r.total.min_pct(),
            r.total.max_pct(),
            r.comm_call_time as f64 / 1e6,
        );
        out
    };

    println!(
        "4-rank transpose of {} KB blocks, {} iterations, direct-RDMA rendezvous\n",
        BLOCK >> 10,
        ITERS
    );
    let b = run("alltoall", blocking);
    let n = run("ialltoall", nonblocking);
    println!(
        "\nspeedup from overlapping the transpose: {:.2}x",
        b.end_time as f64 / n.end_time as f64
    );

    // The per-process output files (paper Sec. 2.4).
    let dir = std::env::temp_dir().join("overlap_suite_transpose");
    let paths = n.write_reports(&dir).expect("write reports");
    println!("per-process reports written to:");
    for p in paths {
        println!("  {}", p.display());
    }
}
