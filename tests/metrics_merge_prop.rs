//! Merge-algebra property tests for the metrics layer the fleet view is
//! built on: folding one stream of counter increments and histogram
//! observations through **any** partition of the ranks, then merging the
//! per-rank registries in **any** order, must equal folding everything
//! into a single registry. Without order-invariance and associativity the
//! server's merged cross-session view would depend on client arrival
//! order.

use proptest::prelude::*;

use overlap_core::metrics::{Histogram, MetricsRegistry};
use overlap_core::stream::SessionFold;

/// One metrics-layer operation, attributed to a rank.
#[derive(Debug, Clone)]
enum Op {
    /// `inc(name, by)`.
    Inc { name: usize, by: u64 },
    /// `observe(name, v)` into a latency-default histogram.
    Obs { name: usize, v: u64 },
}

const COUNTERS: [&str; 3] = ["xfers_closed", "calls_completed", "xfers_flagged"];
const HISTS: [&str; 3] = ["xfer_wall_ns", "call_latency_ns", "xfer_apriori_ns"];

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..COUNTERS.len(), 1u64..1_000).prop_map(|(name, by)| Op::Inc { name, by }),
        (0usize..HISTS.len(), 0u64..50_000_000).prop_map(|(name, v)| Op::Obs { name, v }),
    ]
}

fn apply(reg: &mut MetricsRegistry, op: &Op) {
    match *op {
        Op::Inc { name, by } => reg.inc(COUNTERS[name], by),
        Op::Obs { name, v } => reg.observe(HISTS[name], v, Histogram::latency_default),
    }
}

/// Canonical serialized form for equality checks.
fn canon(reg: &MetricsRegistry) -> String {
    serde_json::to_string(reg).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Partition the op stream across arbitrary ranks, merge the per-rank
    /// registries in an arbitrary order: always equal to the direct fold.
    #[test]
    fn merge_is_partition_and_order_invariant(
        ops in prop::collection::vec(arb_op(), 0..200),
        ranks in 1usize..8,
        seed in 0u64..u64::MAX,
    ) {
        let mut direct = MetricsRegistry::new();
        for op in &ops {
            apply(&mut direct, op);
        }

        // Deterministic pseudo-random rank assignment from the seed.
        let mut parts: Vec<MetricsRegistry> =
            (0..ranks).map(|_| MetricsRegistry::new()).collect();
        let mut x = seed | 1;
        for op in &ops {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            apply(&mut parts[(x >> 33) as usize % ranks], op);
        }

        // Merge in rank order...
        let mut fwd = MetricsRegistry::new();
        for p in &parts {
            fwd.merge(p);
        }
        prop_assert_eq!(canon(&fwd), canon(&direct));

        // ...and in reverse order.
        let mut rev = MetricsRegistry::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        prop_assert_eq!(canon(&rev), canon(&direct));
    }

    /// Associativity: (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c).
    #[test]
    fn merge_is_associative(
        a_ops in prop::collection::vec(arb_op(), 0..60),
        b_ops in prop::collection::vec(arb_op(), 0..60),
        c_ops in prop::collection::vec(arb_op(), 0..60),
    ) {
        let fold = |ops: &[Op]| {
            let mut r = MetricsRegistry::new();
            for op in ops {
                apply(&mut r, op);
            }
            r
        };
        let (a, b, c) = (fold(&a_ops), fold(&b_ops), fold(&c_ops));

        let mut left = MetricsRegistry::new();
        left.merge(&a);
        left.merge(&b);
        let mut left_outer = left.clone();
        left_outer.merge(&c);

        let mut right = b.clone();
        right.merge(&c);
        let mut right_outer = a.clone();
        right_outer.merge(&right);

        prop_assert_eq!(canon(&left_outer), canon(&right_outer));
    }

    /// The identity element: merging an empty registry changes nothing,
    /// in either direction.
    #[test]
    fn empty_registry_is_identity(ops in prop::collection::vec(arb_op(), 0..120)) {
        let mut r = MetricsRegistry::new();
        for op in &ops {
            apply(&mut r, op);
        }
        let before = canon(&r);

        let mut left = MetricsRegistry::new();
        left.merge(&r);
        prop_assert_eq!(canon(&left), before.clone());

        r.merge(&MetricsRegistry::new());
        prop_assert_eq!(canon(&r), before);
    }
}

/// Edge cases the properties above don't exercise: a session that carries
/// only a schema header (zero events) serves empty-but-well-formed views,
/// and a zero-span scope (every stamp at the same instant) still windows.
#[test]
fn zero_event_session_and_zero_span_scope_serve_well_formed_views() {
    let mut empty = SessionFold::default();
    empty
        .push_text("{\"ev\":\"header\",\"schema_version\":1}\n")
        .unwrap();
    assert!(empty.header_seen());
    assert_eq!(empty.event_lines(), 0);
    assert_eq!(serde_json::to_string(&empty.report()).unwrap(), "[]");
    assert_eq!(serde_json::to_string(&empty.series(None)).unwrap(), "[]");
    assert_eq!(empty.collapsed(), "");

    // One scope whose whole life happens at t=42: the span is zero, the
    // default window width clamps to 1 ns, and the series has one window.
    let mut point = SessionFold::default();
    point
        .push_text(concat!(
            "{\"ev\":\"header\",\"schema_version\":1}\n",
            "{\"scope\":\"p/x\",\"rank\":0,\"t\":42,\"ev\":\"call_enter\",\"name\":\"MPI_Wait\"}\n",
            "{\"scope\":\"p/x\",\"rank\":0,\"t\":42,\"ev\":\"call_exit\"}\n",
        ))
        .unwrap();
    let series = point.series(None);
    assert_eq!(series.len(), 1);
    assert_eq!(series[0].window_ns, 1);
    assert_eq!(series[0].windows.len(), 1);
    let report = point.report();
    assert_eq!(report.len(), 1);
    assert_eq!(report[0].ranks.len(), 1);
    assert_eq!(report[0].ranks[0].elapsed, 0);
    assert_eq!(report[0].ranks[0].events_seen, 2);
}
