//! Batch/stream equivalence on a real harness trace: the JSONL event
//! stream of a captured figure run, folded incrementally through
//! [`overlap_core::stream::SessionFold`], must reproduce the batch
//! pipeline's outputs **byte for byte** —
//!
//! * the `--critical-path` artifacts (`<id>.attribution.json` pretty JSON
//!   and `<id>.critpath.folded` flamegraph text),
//! * the per-scope wait-state breakdowns merged into the `--json` report,
//! * the windowed time-resolved series (`trace_windows` shape), at the
//!   default width and at several explicit widths,
//!
//! and the result must not depend on the streaming ring capacity (a tiny
//! ring that folds thousands of times yields the same bytes).

use std::sync::{Mutex, MutexGuard, OnceLock};

use overlap_core::stream::{FoldOpts, SessionFold};
use overlap_core::trace::{default_window_width, jsonl, windowed, TraceBundle};

/// Serialize tests: `tracecap` is process-global.
fn global_lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Run one registered figure harness under trace capture and return its
/// scopes in store (= stream) order, exactly as `repro --trace` sees them.
fn capture(id: &str) -> Vec<(String, TraceBundle)> {
    bench::tracecap::enable();
    let _ = bench::tracecap::drain(); // discard scopes from earlier tests
    let h = bench::figures::all()
        .into_iter()
        .find(|h| h.id == id)
        .unwrap_or_else(|| panic!("harness {id} not registered"));
    let _series = (h.run)();
    let captured: Vec<(String, TraceBundle)> = bench::tracecap::drain().into_iter().collect();
    assert!(!captured.is_empty(), "{id} should register traced scopes");
    captured
}

#[test]
fn fig03_stream_artifacts_match_batch_byte_for_byte() {
    let _g = global_lock();
    let captured = capture("fig03");

    // The exact stream `repro --trace` writes (and `repro push` uploads).
    let bundles: Vec<TraceBundle> = captured.iter().map(|(_, b)| b.clone()).collect();
    let text = jsonl(&bundles);

    let mut fold = SessionFold::default();
    fold.push_text(&text).expect("stream folds cleanly");

    // Batch side: same grouping `repro --critical-path` performs.
    let scoped: Vec<(String, &TraceBundle)> =
        captured.iter().map(|(s, b)| (s.clone(), b)).collect();

    // <id>.attribution.json — pretty JSON, byte-identical.
    let batch_attr = bench::critpath::attribution_artifact("fig03", &scoped);
    assert_eq!(
        serde_json::to_string_pretty(&fold.attribution("fig03")).unwrap(),
        serde_json::to_string_pretty(&batch_attr).unwrap(),
        "attribution artifact diverges between stream and batch"
    );

    // <id>.critpath.folded — byte-identical flamegraph text.
    assert_eq!(
        fold.collapsed(),
        bench::critpath::collapsed(&scoped),
        "collapsed critical-path text diverges between stream and batch"
    );

    // Wait-state breakdowns (the `--json` report rows), in the same order.
    let batch_ws: Vec<_> = captured
        .iter()
        .map(|(scope, bundle)| bench::critpath::wait_states(scope, bundle))
        .collect();
    assert_eq!(
        serde_json::to_string(&fold.wait_states()).unwrap(),
        serde_json::to_string(&batch_ws).unwrap(),
        "wait-state breakdowns diverge between stream and batch"
    );

    // Windowed series: default width plus explicit widths.
    let batch_default: Vec<bench::runner::ScopeWindows> = captured
        .iter()
        .map(|(scope, bundle)| {
            let width = default_window_width(bundle);
            bench::runner::ScopeWindows {
                scope: scope.clone(),
                window_ns: width,
                windows: windowed(bundle, width),
            }
        })
        .collect();
    assert_eq!(
        serde_json::to_string(&fold.series(None)).unwrap(),
        serde_json::to_string(&batch_default).unwrap(),
        "default-width series diverges between stream and batch"
    );
    for width in [1_000u64, 250_000, 10_000_000] {
        let batch: Vec<bench::runner::ScopeWindows> = captured
            .iter()
            .map(|(scope, bundle)| bench::runner::ScopeWindows {
                scope: scope.clone(),
                window_ns: width,
                windows: windowed(bundle, width),
            })
            .collect();
        assert_eq!(
            serde_json::to_string(&fold.series(Some(width))).unwrap(),
            serde_json::to_string(&batch).unwrap(),
            "series at width {width} diverges between stream and batch"
        );
    }

    // Bounded memory must not change results: a tiny ring folds constantly
    // yet produces the same artifact bytes.
    let mut tiny = SessionFold::new(FoldOpts {
        ring_capacity: 8,
        ..FoldOpts::default()
    });
    tiny.push_text(&text).expect("tiny-ring fold");
    assert_eq!(
        serde_json::to_string_pretty(&tiny.attribution("fig03")).unwrap(),
        serde_json::to_string_pretty(&batch_attr).unwrap(),
        "ring capacity changed the attribution artifact"
    );
    assert_eq!(tiny.collapsed(), bench::critpath::collapsed(&scoped));
    let folded: u64 = tiny
        .report()
        .iter()
        .flat_map(|s| s.ranks.iter().map(|r| r.ring_folds))
        .sum();
    assert!(folded > 0, "an 8-slot ring over fig03 must have folded");
}
