//! Per-process metrics registry: named counters and fixed-bucket histograms.
//!
//! The paper's framework reports *aggregate* overlap numbers; this registry
//! adds the distributional view a production observability stack expects —
//! how call latencies, transfer times and per-transfer overlap bounds are
//! *distributed*, not just summed. Everything is updated at fold time (when
//! the event ring drains into the processor), so the hot instrumentation
//! path still only pushes into the ring. All state is fixed-size: a
//! histogram never allocates after construction, preserving the framework's
//! constant-memory property.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A fixed-bucket histogram over `u64` samples (nanoseconds, usually).
///
/// Bucket `i` counts samples in `[edges[i-1], edges[i])`; bucket `0` counts
/// samples below `edges[0]` and the final bucket counts samples at or above
/// the last edge, so every sample lands somewhere (`counts.len() ==
/// edges.len() + 1`).
///
/// ```
/// use overlap_core::metrics::Histogram;
///
/// let mut h = Histogram::new(vec![10, 100]);
/// h.observe(9);    // bucket 0: < 10
/// h.observe(10);   // bucket 1: [10, 100)
/// h.observe(100);  // bucket 2: >= 100
/// assert_eq!(h.counts(), &[1, 1, 1]);
/// assert_eq!(h.count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Bucket boundaries, strictly increasing.
    edges: Vec<u64>,
    /// Per-bucket sample counts (`edges.len() + 1` entries).
    counts: Vec<u64>,
    /// Total samples observed.
    count: u64,
    /// Sum of all observed values.
    sum: u64,
    /// Smallest observed value (`u64::MAX` while empty).
    min: u64,
    /// Largest observed value (0 while empty).
    max: u64,
}

impl Histogram {
    /// Create a histogram with the given bucket `edges` (strictly
    /// increasing, non-empty).
    pub fn new(edges: Vec<u64>) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        let n = edges.len() + 1;
        Histogram {
            edges,
            counts: vec![0; n],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Exponential bucket ladder: `n` edges starting at `start`, each
    /// `factor`× the previous (`start`, `start*factor`, ...).
    pub fn exponential(start: u64, factor: u64, n: usize) -> Self {
        assert!(start > 0 && factor > 1 && n > 0);
        let mut edges = Vec::with_capacity(n);
        let mut e = start;
        for _ in 0..n {
            edges.push(e);
            e = e.saturating_mul(factor);
        }
        Histogram::new(edges)
    }

    /// The default latency ladder used by the built-in metrics: decades from
    /// 100 ns to 100 ms.
    pub fn latency_default() -> Self {
        Histogram::exponential(100, 10, 7)
    }

    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        let i = self.edges.partition_point(|&e| e <= v);
        self.counts[i] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Bucket edges.
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Per-bucket counts (`edges.len() + 1` entries).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value, if any sample was recorded.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observed value, if any sample was recorded.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean of the observed values (0 while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another histogram with the *same bucket layout* into this one.
    /// Panics if the layouts differ.
    pub fn merge(&mut self, o: &Histogram) {
        assert_eq!(self.edges, o.edges, "histogram bucket layouts differ");
        for (a, b) in self.counts.iter_mut().zip(&o.counts) {
            *a += b;
        }
        self.count += o.count;
        self.sum = self.sum.saturating_add(o.sum);
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }
}

/// A named collection of counters and histograms, one per process.
///
/// Keys are stable strings (e.g. `"call_latency_ns"`,
/// `"overlap_max_ns/<1K"`); `BTreeMap` keeps serialization order
/// deterministic. Built-in metrics are populated by the processor; user code
/// may add its own through [`MetricsRegistry::inc`] /
/// [`MetricsRegistry::observe`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct MetricsRegistry {
    /// Monotonic named counters.
    pub counters: BTreeMap<String, u64>,
    /// Named fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

// Manual impl so that reports written before the registry existed (no
// `metrics` member → `Null` in the value tree) deserialize as an empty
// registry instead of erroring.
impl serde::Deserialize for MetricsRegistry {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        if v.is_null() {
            return Ok(MetricsRegistry::default());
        }
        Ok(MetricsRegistry {
            counters: Deserialize::from_value(v.field("counters"))?,
            histograms: Deserialize::from_value(v.field("histograms"))?,
        })
    }
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `by` to counter `name` (creating it at 0).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Record `v` into histogram `name`, creating it with `mk` on first use.
    pub fn observe(&mut self, name: &str, v: u64, mk: impl FnOnce() -> Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(mk)
            .observe(v);
    }

    /// Counter value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Fold another registry into this one: counters add, histograms merge
    /// (same-layout requirement applies per name).
    pub fn merge(&mut self, o: &MetricsRegistry) {
        for (k, v) in &o.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &o.histograms {
            match self.histograms.entry(k.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(h.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(h),
            }
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_edge_values() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        // Exactly on an edge goes to the bucket *starting* at that edge.
        h.observe(0);
        h.observe(9); // bucket 0
        h.observe(10); // bucket 1 (edge value)
        h.observe(99); // bucket 1
        h.observe(100); // bucket 2 (edge value)
        h.observe(999); // bucket 2
        h.observe(1000); // bucket 3 (last edge)
        h.observe(u64::MAX); // bucket 3 (overflow bucket)
        assert_eq!(h.counts(), &[2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn saturating_sum_never_wraps() {
        let mut h = Histogram::new(vec![1]);
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn empty_histogram_stats() {
        let h = Histogram::new(vec![10]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn exponential_ladder() {
        let h = Histogram::exponential(100, 10, 4);
        assert_eq!(h.edges(), &[100, 1_000, 10_000, 100_000]);
        assert_eq!(h.counts().len(), 5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_edges_panic() {
        Histogram::new(vec![10, 10]);
    }

    #[test]
    fn merge_requires_same_layout_and_adds() {
        let mut a = Histogram::new(vec![10, 100]);
        let mut b = Histogram::new(vec![10, 100]);
        a.observe(5);
        b.observe(50);
        b.observe(500);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1, 1]);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(500));
    }

    #[test]
    fn registry_counters_and_merge() {
        let mut a = MetricsRegistry::new();
        a.inc("x", 2);
        a.observe("lat", 500, Histogram::latency_default);
        let mut b = MetricsRegistry::new();
        b.inc("x", 3);
        b.inc("y", 1);
        b.observe("lat", 5_000, Histogram::latency_default);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.counter("absent"), 0);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
    }

    #[test]
    fn registry_serde_roundtrip() {
        let mut r = MetricsRegistry::new();
        r.inc("transfers", 7);
        r.observe("lat", 123, Histogram::latency_default);
        let json = serde_json::to_string(&r).unwrap();
        let back: MetricsRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
