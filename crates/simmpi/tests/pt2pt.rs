//! Point-to-point semantics: data integrity, matching, ordering, protocols.

use overlap_core::RecorderOpts;
use simmpi::{run_mpi, MpiConfig, MpiRunOutcome, Src, TagSel};
use simnet::NetConfig;

fn run(
    nranks: usize,
    cfg: MpiConfig,
    body: impl Fn(&mut simmpi::Mpi) + Send + Sync + 'static,
) -> MpiRunOutcome {
    run_mpi(
        nranks,
        NetConfig::default(),
        cfg,
        RecorderOpts::default(),
        body,
    )
    .expect("run failed")
}

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

#[test]
fn eager_ping_pong_roundtrips_data() {
    let out = run(2, MpiConfig::default(), |mpi| {
        let msg = pattern(1000, 7);
        if mpi.rank() == 0 {
            mpi.send(1, 42, &msg);
            let st = mpi.recv(Src::Rank(1), TagSel::Is(43));
            assert_eq!(&st.into_data()[..], &msg[..]);
        } else {
            let st = mpi.recv(Src::Rank(0), TagSel::Is(42));
            let got = st.into_data();
            assert_eq!(&got[..], &msg[..]);
            mpi.send(0, 43, &got);
        }
    });
    // Two data transfers (the barrier packets in init/finalize don't count).
    assert_eq!(out.transfers.len(), 2);
    assert!(out.reports[0].total.transfers >= 2);
}

#[test]
fn rendezvous_direct_read_moves_large_messages() {
    let out = run(2, MpiConfig::mvapich2(), |mpi| {
        let msg = pattern(1 << 20, 3);
        if mpi.rank() == 0 {
            mpi.send(1, 1, &msg);
        } else {
            let st = mpi.recv(Src::Rank(0), TagSel::Is(1));
            assert_eq!(&st.into_data()[..], &msg[..]);
        }
    });
    // One RDMA-read data transfer of 1 MiB.
    let big: Vec<_> = out
        .transfers
        .iter()
        .filter(|t| t.bytes == 1 << 20)
        .collect();
    assert_eq!(big.len(), 1);
    assert_eq!(big[0].kind, simnet::TransferKind::RdmaRead);
    assert_eq!(big[0].src, 0);
    assert_eq!(big[0].dst, 1);
}

#[test]
fn rendezvous_pipelined_fragments_large_messages() {
    let out = run(2, MpiConfig::open_mpi_pipelined(), |mpi| {
        let msg = pattern(1 << 20, 9);
        if mpi.rank() == 0 {
            mpi.send(1, 1, &msg);
        } else {
            let st = mpi.recv(Src::Rank(0), TagSel::Is(1));
            assert_eq!(&st.into_data()[..], &msg[..]);
        }
    });
    // 1 MiB in 128 KiB fragments: 1 send (frag1) + 7 RDMA writes.
    let frags: Vec<_> = out.transfers.iter().filter(|t| t.bytes > 0).collect();
    assert_eq!(frags.len(), 8);
    assert_eq!(
        frags
            .iter()
            .filter(|t| t.kind == simnet::TransferKind::RdmaWrite)
            .count(),
        7
    );
    let total: usize = frags.iter().map(|t| t.bytes).sum();
    assert_eq!(total, 1 << 20);
}

#[test]
fn single_fragment_rendezvous_needs_no_cts() {
    // 64 KiB: above eager threshold (12 KiB), below fragment size (128 KiB).
    let out = run(2, MpiConfig::open_mpi_pipelined(), |mpi| {
        let msg = pattern(64 << 10, 5);
        if mpi.rank() == 0 {
            mpi.send(1, 1, &msg);
        } else {
            let st = mpi.recv(Src::Rank(0), TagSel::Is(1));
            assert_eq!(&st.into_data()[..], &msg[..]);
        }
    });
    assert_eq!(out.transfers.len(), 1);
    assert_eq!(out.transfers[0].kind, simnet::TransferKind::Send);
}

#[test]
fn wildcard_source_and_tag_match() {
    run(3, MpiConfig::default(), |mpi| match mpi.rank() {
        0 => {
            let a = mpi.recv(Src::Any, TagSel::Any);
            let b = mpi.recv(Src::Any, TagSel::Any);
            let mut sources = vec![a.source, b.source];
            sources.sort_unstable();
            assert_eq!(sources, vec![1, 2]);
        }
        r => mpi.send(0, 100 + r as u64, &pattern(64, r as u8)),
    });
}

#[test]
fn same_source_same_tag_is_fifo() {
    run(2, MpiConfig::default(), |mpi| {
        if mpi.rank() == 0 {
            for i in 0..10u8 {
                mpi.send(1, 5, &[i; 16]);
            }
        } else {
            for i in 0..10u8 {
                let st = mpi.recv(Src::Rank(0), TagSel::Is(5));
                assert_eq!(st.into_data()[0], i, "non-overtaking order violated");
            }
        }
    });
}

#[test]
fn unexpected_messages_are_buffered() {
    run(2, MpiConfig::default(), |mpi| {
        if mpi.rank() == 0 {
            mpi.send(1, 1, b"first");
            mpi.send(1, 2, b"second");
        } else {
            // Let both arrive unexpected, then receive in reverse tag order.
            mpi.compute(1_000_000);
            let b = mpi.recv(Src::Rank(0), TagSel::Is(2));
            let a = mpi.recv(Src::Rank(0), TagSel::Is(1));
            assert_eq!(&a.into_data()[..], b"first");
            assert_eq!(&b.into_data()[..], b"second");
        }
    });
}

#[test]
fn unexpected_rendezvous_completes_after_late_recv() {
    for cfg in [MpiConfig::mvapich2(), MpiConfig::open_mpi_pipelined()] {
        run(2, cfg, |mpi| {
            let msg = pattern(512 << 10, 1);
            if mpi.rank() == 0 {
                let r = mpi.isend(1, 9, &msg);
                mpi.wait(r);
            } else {
                mpi.compute(2_000_000); // RTS arrives long before the recv
                let st = mpi.recv(Src::Rank(0), TagSel::Is(9));
                assert_eq!(&st.into_data()[..], &msg[..]);
            }
        });
    }
}

#[test]
fn isend_irecv_waitall_crossing_pairs() {
    run(2, MpiConfig::default(), |mpi| {
        let me = mpi.rank();
        let other = 1 - me;
        let msg = pattern(4096, me as u8);
        let s = mpi.isend(other, 7, &msg);
        let r = mpi.irecv(Src::Rank(other), TagSel::Is(7));
        let sts = mpi.waitall(&[s, r]);
        let got = sts[1].clone().into_data();
        assert_eq!(&got[..], &pattern(4096, other as u8)[..]);
    });
}

#[test]
fn sendrecv_pairwise_exchange() {
    run(4, MpiConfig::default(), |mpi| {
        let me = mpi.rank();
        let n = mpi.nranks();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let st = mpi.sendrecv(right, 3, &[me as u8; 32], Src::Rank(left), TagSel::Is(3));
        assert_eq!(st.into_data()[0], left as u8);
    });
}

#[test]
fn self_send_loopback() {
    run(1, MpiConfig::default(), |mpi| {
        let r = mpi.irecv(Src::Rank(0), TagSel::Is(1));
        mpi.send(0, 1, b"self");
        let st = mpi.wait(r);
        assert_eq!(&st.into_data()[..], b"self");
    });
}

#[test]
fn iprobe_sees_unexpected_only_when_present() {
    run(2, MpiConfig::default(), |mpi| {
        if mpi.rank() == 0 {
            mpi.compute(500_000);
            mpi.send(1, 8, b"probe me");
        } else {
            assert!(!mpi.iprobe(Src::Rank(0), TagSel::Is(8)));
            // Wait long enough for the eager message to arrive.
            mpi.compute(2_000_000);
            assert!(mpi.iprobe(Src::Rank(0), TagSel::Is(8)));
            let st = mpi.recv(Src::Rank(0), TagSel::Is(8));
            assert_eq!(&st.into_data()[..], b"probe me");
        }
    });
}

#[test]
fn deadlock_of_blocking_rendezvous_sends_is_detected() {
    let err = simmpi::run_mpi(
        2,
        NetConfig::default(),
        MpiConfig::mvapich2(),
        RecorderOpts::default(),
        |mpi| {
            // Classic head-to-head blocking sends of rendezvous-sized
            // messages: each waits for a FIN that needs the other's recv.
            let other = 1 - mpi.rank();
            let big = vec![0u8; 1 << 20];
            mpi.send(other, 1, &big);
            let _ = mpi.recv(Src::Rank(other), TagSel::Is(1));
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, simcore::SimError::Deadlock { .. }),
        "got {err}"
    );
}

#[test]
fn registration_cache_reduces_reuse_cost() {
    // Same-size rendezvous sends: with the cache, later sends skip pinning,
    // so the run finishes sooner.
    let body = |mpi: &mut simmpi::Mpi| {
        let msg = vec![1u8; 1 << 20];
        if mpi.rank() == 0 {
            for _ in 0..10 {
                mpi.send(1, 1, &msg);
            }
        } else {
            for _ in 0..10 {
                mpi.recv(Src::Rank(0), TagSel::Is(1));
            }
        }
    };
    let cached = run(2, MpiConfig::open_mpi_leave_pinned(), body);
    let uncached = run(
        2,
        MpiConfig {
            use_reg_cache: false,
            ..MpiConfig::open_mpi_leave_pinned()
        },
        body,
    );
    assert!(
        cached.end_time < uncached.end_time,
        "cache should save time: {} vs {}",
        cached.end_time,
        uncached.end_time
    );
}

#[test]
fn payload_checksums_across_all_protocol_regimes() {
    // Sweep sizes across eager / single-fragment / multi-fragment regimes in
    // both rendezvous modes.
    for cfg in [MpiConfig::open_mpi_pipelined(), MpiConfig::mvapich2()] {
        run(2, cfg, |mpi| {
            for (i, len) in [1usize, 100, 8 << 10, 12 << 10, 64 << 10, 300 << 10]
                .into_iter()
                .enumerate()
            {
                let msg = pattern(len, i as u8);
                if mpi.rank() == 0 {
                    mpi.send(1, i as u64, &msg);
                } else {
                    let st = mpi.recv(Src::Rank(0), TagSel::Is(i as u64));
                    assert_eq!(&st.into_data()[..], &msg[..], "len {len} corrupted");
                }
            }
        });
    }
}

#[test]
fn concurrent_same_size_cached_sends_do_not_alias() {
    // Regression: the leave_pinned registration cache must not hand an
    // in-flight send's pinned region to a second same-size send — doing so
    // overwrites data the receiver has not pulled yet.
    run(3, MpiConfig::open_mpi_leave_pinned(), |mpi| {
        let size = 200 << 10; // rendezvous-sized, identical for both sends
        if mpi.rank() == 0 {
            // Two simultaneous in-flight sends of the same size with
            // distinct contents.
            let s1 = mpi.isend(1, 1, &vec![0xAA; size]);
            let s2 = mpi.isend(2, 2, &vec![0xBB; size]);
            mpi.waitall(&[s1, s2]);
        } else {
            // Receivers delay so both RTSes are in flight together.
            mpi.compute(1_000_000);
            let tag = mpi.rank() as u64;
            let expect = if mpi.rank() == 1 { 0xAA } else { 0xBB };
            let st = mpi.recv(Src::Rank(0), TagSel::Is(tag));
            let data = st.into_data();
            assert!(
                data.iter().all(|&b| b == expect),
                "rank {} received aliased data",
                mpi.rank()
            );
        }
    });
}
