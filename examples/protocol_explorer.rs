//! Protocol explorer: how message size and protocol choice shape overlap.
//!
//! Sweeps message sizes across the eager/rendezvous boundary under all three
//! library configurations and prints sender-side bounds plus measured wait
//! times — the microbenchmark methodology of the paper's Sec. 3 as a
//! self-service tool.
//!
//! ```text
//! cargo run --release --example protocol_explorer
//! ```

use overlap_suite::prelude::*;

fn sweep(name: &str, cfg: MpiConfig) {
    println!("--- {name} ---");
    println!(
        "{:>9}  {:>8}  {:>8}  {:>9}",
        "size", "snd_min%", "snd_max%", "wait_us"
    );
    for size in [1 << 10, 8 << 10, 32 << 10, 128 << 10, 1 << 20] {
        let cfg = cfg.clone();
        let out = run_mpi(
            2,
            NetConfig::default(),
            cfg,
            RecorderOpts::default(),
            move |mpi| {
                let msg = vec![9u8; size];
                for i in 0..30 {
                    if mpi.rank() == 0 {
                        let r = mpi.isend(1, i, &msg);
                        mpi.compute(ms(2)); // always enough to cover the wire
                        mpi.wait(r);
                    } else {
                        mpi.recv(Src::Rank(0), TagSel::Is(i));
                    }
                    mpi.barrier();
                }
            },
        )
        .expect("simulation failed");
        let r = &out.reports[0];
        let label = if size >= 1 << 20 {
            format!("{}M", size >> 20)
        } else {
            format!("{}K", size >> 10)
        };
        println!(
            "{label:>9}  {:>8.1}  {:>8.1}  {:>9.1}",
            r.total.min_pct(),
            r.total.max_pct(),
            r.calls["MPI_Wait"].avg() / 1e3,
        );
    }
    println!();
}

fn main() {
    println!("Sender-side overlap of Isend + 2 ms compute + Wait, by protocol:\n");
    sweep(
        "Open MPI default (pipelined RDMA-Write)",
        MpiConfig::open_mpi_pipelined(),
    );
    sweep(
        "Open MPI leave_pinned (direct RDMA-Read)",
        MpiConfig::open_mpi_leave_pinned(),
    );
    sweep(
        "MVAPICH2-like (eager 12K, direct read)",
        MpiConfig::mvapich2(),
    );
    println!(
        "Reading the table: below the eager threshold everything overlaps;\n\
         above it the pipelined scheme caps at the first-fragment share while\n\
         direct RDMA recovers full overlap — the paper's Figures 4 vs 5."
    );
}
