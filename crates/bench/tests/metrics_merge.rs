//! Cross-rank [`MetricsRegistry`] merging: disjoint counters union, shared
//! counters add, histograms require aligned bucket layouts, and folding the
//! registries of a parallel sweep is independent of the worker count.
//!
//! Lives in its own test binary: the worker budget is process-global, so
//! this test must not share a process with tests that configure it
//! differently.

use overlap_core::{Histogram, MetricsRegistry, RecorderOpts};
use simmpi::{run_mpi, MpiConfig, Src, TagSel};
use simnet::NetConfig;

#[test]
fn disjoint_counters_union_and_shared_counters_add() {
    let mut a = MetricsRegistry::new();
    a.inc("events_recorded", 3);
    a.inc("xfers_completed", 2);
    let mut b = MetricsRegistry::new();
    b.inc("events_recorded", 5);
    b.inc("bounds_flagged", 1);
    a.merge(&b);
    assert_eq!(a.counter("events_recorded"), 8);
    assert_eq!(a.counter("xfers_completed"), 2);
    assert_eq!(a.counter("bounds_flagged"), 1);
    assert_eq!(a.counter("absent"), 0);
}

#[test]
fn aligned_histograms_merge_per_bucket() {
    let mut a = MetricsRegistry::new();
    let mut b = MetricsRegistry::new();
    a.observe("lat", 5, || Histogram::new(vec![10, 100]));
    a.observe("lat", 50, || Histogram::new(vec![10, 100]));
    b.observe("lat", 500, || Histogram::new(vec![10, 100]));
    b.observe("only_b", 1, Histogram::latency_default);
    a.merge(&b);
    let h = a.histogram("lat").expect("merged histogram");
    assert_eq!(h.counts(), &[1, 1, 1]);
    assert_eq!(h.count(), 3);
    assert_eq!(h.min(), Some(5));
    assert_eq!(h.max(), Some(500));
    // A histogram only one side has is adopted wholesale.
    assert_eq!(a.histogram("only_b").map(Histogram::count), Some(1));
}

#[test]
#[should_panic(expected = "histogram bucket layouts differ")]
fn mismatched_bucket_layouts_refuse_to_merge() {
    let mut a = MetricsRegistry::new();
    let mut b = MetricsRegistry::new();
    a.observe("lat", 5, || Histogram::new(vec![10, 100]));
    b.observe("lat", 5, || Histogram::new(vec![10, 1000]));
    a.merge(&b);
}

/// One instrumented ring run; returns every rank's registry folded into one
/// (the cross-rank merge `MpiRunOutcome::metrics` performs).
fn ring_metrics(rounds: usize) -> MetricsRegistry {
    let out = run_mpi(
        4,
        NetConfig::default(),
        MpiConfig::default(),
        RecorderOpts {
            trace: true,
            ..Default::default()
        },
        move |mpi| {
            let me = mpi.rank();
            let n = mpi.nranks();
            for i in 0..rounds {
                // Communication-bound on purpose: the short compute leaves
                // most of each transfer non-overlapped, so the attribution
                // fold has real wait states to count.
                let r = mpi.irecv(Src::Rank((me + n - 1) % n), TagSel::Is(i as u64));
                let s = mpi.isend((me + 1) % n, i as u64, &vec![1u8; 256 << 10]);
                mpi.compute(20_000);
                mpi.wait(s);
                mpi.wait(r);
            }
        },
    )
    .expect("ring run failed");
    out.metrics()
}

#[test]
fn cross_rank_merge_is_deterministic_across_worker_counts() {
    let grid = [4usize, 6, 8];
    let fold = |jobs: usize| {
        bench::runner::set_jobs(jobs);
        let per_run = bench::runner::par_map(&grid, |&rounds| ring_metrics(rounds));
        let mut merged = MetricsRegistry::new();
        for m in &per_run {
            merged.merge(m);
        }
        merged
    };
    let serial = fold(1);
    let parallel = fold(4);
    assert_eq!(
        serial, parallel,
        "merged registry must not depend on --jobs"
    );
    assert_eq!(
        serde_json::to_string_pretty(&serial).expect("registry serializes"),
        serde_json::to_string_pretty(&parallel).expect("registry serializes"),
        "serialized form must not depend on --jobs"
    );
    // The traced runs folded attribution metrics: per-cause counters and
    // histograms with the registry's canonical latency layout.
    let attributed: u64 = serial
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("attr_ns/"))
        .map(|(_, v)| v)
        .sum();
    assert!(attributed > 0, "attribution counters should be populated");
    let hist = serial
        .histograms
        .iter()
        .find(|(k, _)| k.starts_with("attr_ns_hist/"))
        .map(|(_, h)| h)
        .expect("attribution histograms should be populated");
    assert_eq!(hist.edges(), Histogram::latency_default().edges());
}
