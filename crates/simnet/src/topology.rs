//! Fabric topologies: hop-by-hop routing over shared links.
//!
//! The original fabric model (still the default) is a single ideal crossbar:
//! every node pair has a dedicated path and the only shared resources are
//! the two NIC engines (egress DMA, optional ingress). Datacenter fabrics
//! are not like that — messages cross a *hierarchy* of switches over links
//! shared with other flows, and the queuing on those links is where the
//! interesting wait time lives (see `docs/TOPOLOGY.md` for the full model
//! and a worked example).
//!
//! A [`Topology`] maps a `(src, dst)` node pair to one or more equal-cost
//! *routes*, each a sequence of [`Hop`]s. A hop is either **dedicated**
//! (crossbar-style, never contended — [`LINK_DEDICATED`]) or names a shared
//! directed link by index; the world serializes traffic on shared links
//! with per-link virtual-time reservations (virtual cut-through: the
//! message pays its serialization once, at the tail, and each hop adds its
//! propagation latency plus any queuing behind other flows).
//!
//! When a pair has more than one candidate route (ECMP in a fat-tree,
//! minimal-vs-Valiant in a dragonfly), the choice is a schedule-oracle
//! choice point (`ChoicePoint::Route`), so the explorer can search routing
//! nondeterminism exactly like event ties and fault jitter. Choice `0` is a
//! deterministic flow-hash pick, so canonical runs spread load but stay
//! byte-for-byte reproducible.
//!
//! Multi-tenant interference is modeled by a [`BackgroundJob`]: a fluid
//! traffic generator whose flows occupy shared links on a deterministic
//! periodic schedule without simulating any extra ranks (see the type docs).

use serde::{Deserialize, Serialize};
use simcore::Duration;

/// Link index marking a dedicated (never-contended) hop: the crossbar
/// abstraction, also used for the final NIC-to-host leg of hierarchical
/// routes where the only contention is the ingress engine already modeled
/// by the NIC.
pub const LINK_DEDICATED: u32 = u32::MAX;

/// One hop of a route: a directed link (or [`LINK_DEDICATED`]) plus the
/// propagation latency added by traversing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Directed-link index in `0..Topology::links()`, or [`LINK_DEDICATED`].
    pub link: u32,
    /// Propagation latency of this hop, ns.
    pub latency: Duration,
}

/// A fabric topology: routes node pairs over (possibly shared) links.
///
/// Implementations must be pure: the same `(src, dst, choice)` always yields
/// the same route, and `path_latency` must equal the summed hop latency of
/// candidate `0` (the canonical route). Fat-tree ECMP candidates are all
/// equal-cost; a dragonfly's non-minimal (Valiant) candidates are longer —
/// exactly the trade adaptive routing makes.
///
/// # Examples
///
/// ```
/// use simnet::topology::{FatTree, Topology, LINK_DEDICATED};
///
/// let ft = FatTree::new(4, 1_000); // k=4: 16 hosts, 1 µs per hop
/// assert_eq!(ft.hosts(), 16);
/// // Hosts 0 and 1 share an edge switch: two links, no ECMP.
/// assert_eq!(ft.paths(0, 1), 1);
/// let mut route = Vec::new();
/// ft.route_into(0, 1, 0, &mut route);
/// assert_eq!(route.len(), 2);
/// assert!(route.iter().all(|h| h.link != LINK_DEDICATED));
/// // Crossing pods goes up to a core switch: (k/2)^2 = 4 candidates.
/// assert_eq!(ft.paths(0, 15), 4);
/// ft.route_into(0, 15, 0, &mut route);
/// assert_eq!(route.len(), 6);
/// ```
pub trait Topology: Send + Sync {
    /// Number of host endpoints the fabric wires up.
    fn hosts(&self) -> usize;

    /// Number of directed shared links (valid [`Hop::link`] indices).
    fn links(&self) -> usize;

    /// Number of equal-cost candidate routes from `src` to `dst` (≥ 1 for
    /// distinct in-range pairs; routing `src == dst` is the caller's
    /// loopback special case and never reaches the topology).
    fn paths(&self, src: usize, dst: usize) -> usize;

    /// Write candidate route `choice` (`0..self.paths(src, dst)`) for
    /// `src → dst` into `out`, clearing it first. Reuses the caller's
    /// buffer so steady-state routing allocates nothing.
    fn route_into(&self, src: usize, dst: usize, choice: usize, out: &mut Vec<Hop>);

    /// Total propagation latency of the canonical (choice `0`) route for
    /// `src → dst`, ns.
    fn path_latency(&self, src: usize, dst: usize) -> Duration;

    /// Endpoints `(from_switch_or_host, to_switch_or_host)` of a directed
    /// link, in a topology-private numbering — used by tests to validate
    /// route contiguity.
    fn link_ends(&self, link: u32) -> (usize, usize);

    /// Human-readable spec label, e.g. `"fat-tree:k=8"`.
    fn label(&self) -> String;
}

/// The ideal single-crossbar fabric: every pair has a dedicated path, so no
/// hop ever queues. This is the default topology and reproduces the
/// pre-topology cost model byte-identically (including the optional
/// two-level `switch_radix` latency penalty it absorbed).
#[derive(Debug, Clone)]
pub struct FlatCrossbar {
    wire_latency: Duration,
    switch_radix: Option<usize>,
    inter_switch_extra: Duration,
}

impl FlatCrossbar {
    /// Crossbar with the given one-way latency and optional two-level
    /// switch grouping (see `NetConfig::switch_radix`).
    pub fn new(
        wire_latency: Duration,
        switch_radix: Option<usize>,
        inter_switch_extra: Duration,
    ) -> Self {
        FlatCrossbar {
            wire_latency,
            switch_radix,
            inter_switch_extra,
        }
    }
}

impl Topology for FlatCrossbar {
    fn hosts(&self) -> usize {
        usize::MAX // any number of hosts fits a crossbar
    }

    fn links(&self) -> usize {
        0
    }

    fn paths(&self, _src: usize, _dst: usize) -> usize {
        1
    }

    fn route_into(&self, src: usize, dst: usize, _choice: usize, out: &mut Vec<Hop>) {
        out.clear();
        out.push(Hop {
            link: LINK_DEDICATED,
            latency: self.path_latency(src, dst),
        });
    }

    fn path_latency(&self, src: usize, dst: usize) -> Duration {
        match self.switch_radix {
            Some(radix) if src / radix != dst / radix => {
                self.wire_latency + self.inter_switch_extra
            }
            _ => self.wire_latency,
        }
    }

    fn link_ends(&self, _link: u32) -> (usize, usize) {
        (0, 0)
    }

    fn label(&self) -> String {
        "flat".into()
    }
}

/// A k-ary fat-tree (Clos): `k` pods of `k/2` edge and `k/2` aggregation
/// switches, `(k/2)^2` core switches, `k^3/4` hosts. Same-pod pairs have a
/// single minimal route; inter-pod pairs have `(k/2)^2` equal-cost routes
/// (one per core switch), the classic ECMP fan.
///
/// All switch-to-switch and host-to-switch links are shared, directed, and
/// individually contended. Route tables are flat precomputed `Vec`s indexed
/// by host/switch, shared across all ranks via the `Arc<dyn Topology>` the
/// world holds — per-rank routing state is just one reused hop buffer.
///
/// # Examples
///
/// ```
/// use simnet::topology::{FatTree, Topology};
///
/// let ft = FatTree::new(8, 1_000);
/// assert_eq!(ft.hosts(), 128); // k^3/4
/// assert_eq!(ft.paths(0, 127), 16); // (k/2)^2 core switches
/// // Equal-cost: every candidate has the same latency.
/// assert_eq!(ft.path_latency(0, 127), 6 * 1_000); // 6 hops, 1 µs each
/// ```
#[derive(Debug, Clone)]
pub struct FatTree {
    k: usize,
    hop_latency: Duration,
    /// Directed links, laid out in blocks (see `link index layout` below).
    nlinks: usize,
}

// Link index layout for FatTree (all blocks directed):
//   block 0: host -> edge            host h                    (H links)
//   block 1: edge -> host            host h                    (H links)
//   block 2: edge e -> agg j         e * (k/2) + j             (P*k/2*k/2)
//   block 3: agg -> edge             same index                (ditto)
//   block 4: agg a -> core slot j    a * (k/2) + j             (P*k/2*k/2)
//   block 5: core -> agg             same index                (ditto)
// where H = k^3/4, P = k (pods), edge/agg switches are numbered
// pod * (k/2) + i, and core switch c = i * (k/2) + j is reached from any
// pod's aggregation switch i via its j-th uplink.
impl FatTree {
    /// Build the `k`-ary fat-tree (`k` even, ≥ 2) with the given per-hop
    /// propagation latency in ns.
    ///
    /// # Panics
    /// Panics if `k` is odd or zero.
    pub fn new(k: usize, hop_latency: Duration) -> Self {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat-tree arity k must be even, got {k}"
        );
        let hosts = k * k * k / 4;
        let updown = k * (k / 2) * (k / 2); // edge<->agg one direction
        let nlinks = 2 * hosts + 2 * updown + 2 * updown;
        FatTree {
            k,
            hop_latency,
            nlinks,
        }
    }

    fn half(&self) -> usize {
        self.k / 2
    }

    /// Pod of a host.
    fn pod(&self, host: usize) -> usize {
        host / (self.half() * self.half())
    }

    /// Edge switch (global index `pod * k/2 + i`) of a host.
    fn edge_of(&self, host: usize) -> usize {
        host / self.half()
    }

    // Link-index helpers, one per block of the layout above.
    fn l_host_up(&self, host: usize) -> u32 {
        host as u32
    }
    fn l_host_down(&self, host: usize) -> u32 {
        (self.hosts() + host) as u32
    }
    fn l_edge_agg(&self, edge: usize, j: usize) -> u32 {
        (2 * self.hosts() + edge * self.half() + j) as u32
    }
    fn l_agg_edge(&self, edge: usize, j: usize) -> u32 {
        let updown = self.k * self.half() * self.half();
        (2 * self.hosts() + updown + edge * self.half() + j) as u32
    }
    fn l_agg_core(&self, agg: usize, j: usize) -> u32 {
        let updown = self.k * self.half() * self.half();
        (2 * self.hosts() + 2 * updown + agg * self.half() + j) as u32
    }
    fn l_core_agg(&self, agg: usize, j: usize) -> u32 {
        let updown = self.k * self.half() * self.half();
        (2 * self.hosts() + 3 * updown + agg * self.half() + j) as u32
    }

    fn hop(&self, link: u32) -> Hop {
        Hop {
            link,
            latency: self.hop_latency,
        }
    }
}

impl Topology for FatTree {
    fn hosts(&self) -> usize {
        self.k * self.k * self.k / 4
    }

    fn links(&self) -> usize {
        self.nlinks
    }

    fn paths(&self, src: usize, dst: usize) -> usize {
        if self.edge_of(src) == self.edge_of(dst) {
            1
        } else if self.pod(src) == self.pod(dst) {
            self.half() // one candidate per aggregation switch in the pod
        } else {
            self.half() * self.half() // one per core switch
        }
    }

    fn route_into(&self, src: usize, dst: usize, choice: usize, out: &mut Vec<Hop>) {
        out.clear();
        let h = self.half();
        let (se, de) = (self.edge_of(src), self.edge_of(dst));
        out.push(self.hop(self.l_host_up(src)));
        if se == de {
            // 2 hops: up to the shared edge switch, down to the host.
        } else if self.pod(src) == self.pod(dst) {
            // 4 hops via aggregation switch `choice` of the pod. Spread the
            // canonical pick with a flow hash so choice 0 is load-balanced.
            let j = spread(src, dst, choice, h);
            out.push(self.hop(self.l_edge_agg(se, j)));
            out.push(self.hop(self.l_agg_edge(de, j)));
        } else {
            // 6 hops via core switch (i, j): up-link j of aggregation
            // switch i in the source pod, down the mirror in the dest pod.
            let c = spread(src, dst, choice, h * h);
            let (i, j) = (c / h, c % h);
            let sa = self.pod(src) * h + i;
            let da = self.pod(dst) * h + i;
            out.push(self.hop(self.l_edge_agg(se, i)));
            out.push(self.hop(self.l_agg_core(sa, j)));
            out.push(self.hop(self.l_core_agg(da, j)));
            out.push(self.hop(self.l_agg_edge(de, i)));
        }
        out.push(self.hop(self.l_host_down(dst)));
    }

    fn path_latency(&self, src: usize, dst: usize) -> Duration {
        let hops = if self.edge_of(src) == self.edge_of(dst) {
            2
        } else if self.pod(src) == self.pod(dst) {
            4
        } else {
            6
        };
        hops * self.hop_latency
    }

    fn link_ends(&self, link: u32) -> (usize, usize) {
        // Topology-private node numbering: hosts, then edge switches,
        // then aggregation switches, then core switches.
        let l = link as usize;
        let hn = self.hosts();
        let h = self.half();
        let nsw = self.k * h; // edge (== agg) switch count
        let updown = self.k * h * h;
        let (edge0, agg0, core0) = (hn, hn + nsw, hn + 2 * nsw);
        if l < hn {
            (l, edge0 + l / h)
        } else if l < 2 * hn {
            let host = l - hn;
            (edge0 + host / h, host)
        } else if l < 2 * hn + updown {
            let i = l - 2 * hn;
            let (edge, j) = (i / h, i % h);
            (edge0 + edge, agg0 + (edge / h) * h + j)
        } else if l < 2 * hn + 2 * updown {
            let i = l - 2 * hn - updown;
            let (edge, j) = (i / h, i % h);
            (agg0 + (edge / h) * h + j, edge0 + edge)
        } else if l < 2 * hn + 3 * updown {
            let i = l - 2 * hn - 2 * updown;
            let (agg, j) = (i / h, i % h);
            (agg0 + agg, core0 + (agg % h) * h + j)
        } else {
            let i = l - 2 * hn - 3 * updown;
            let (agg, j) = (i / h, i % h);
            (core0 + (agg % h) * h + j, agg0 + agg)
        }
    }

    fn label(&self) -> String {
        format!("fat-tree:k={}", self.k)
    }
}

/// A dragonfly: `g = a*h + 1` groups of `a` routers, `p` hosts per router,
/// `h` global links per router, with the *consecutive* global-link
/// arrangement (router `r` of group `G`'s global channel `gc = r*h + t`
/// connects to group `(G + gc + 1) mod g`). Candidate `0` is the minimal
/// route (at most local→global→local); candidates beyond it detour through
/// Valiant intermediate groups (non-minimal adaptive routing), paying extra
/// hops to dodge contended global links — the trade the schedule oracle
/// gets to explore.
#[derive(Debug, Clone)]
pub struct Dragonfly {
    a: usize,
    p: usize,
    h: usize,
    hop_latency: Duration,
    /// Extra propagation for a global (inter-group) hop, ns.
    global_extra: Duration,
}

// Link index layout for Dragonfly (directed):
//   block 0: host -> router        host                       (N links)
//   block 1: router -> host        host                       (N links)
//   block 2: local  r1 -> r2       group*a*(a-1) + ...        (g*a*(a-1))
//   block 3: global channel        group*a*h + router*h + t   (g*a*h)
// where N = g*a*p. Local links are a full mesh inside each group; the
// directed pair (r1, r2), r1 != r2, is indexed by r1*(a-1) + (r2 adjusted).
impl Dragonfly {
    /// Build a dragonfly with `a` routers per group, `p` hosts per router,
    /// `h` global links per router (so `a*h + 1` groups), and the given
    /// per-hop propagation latency (global hops pay 2x).
    ///
    /// # Panics
    /// Panics if any of `a`, `p`, `h` is zero.
    pub fn new(a: usize, p: usize, h: usize, hop_latency: Duration) -> Self {
        assert!(
            a > 0 && p > 0 && h > 0,
            "dragonfly a, p, h must be positive"
        );
        Dragonfly {
            a,
            p,
            h,
            hop_latency,
            global_extra: hop_latency,
        }
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.a * self.h + 1
    }

    fn router_of(&self, host: usize) -> usize {
        host / self.p // global router index
    }

    fn group_of_router(&self, router: usize) -> usize {
        router / self.a
    }

    fn l_host_up(&self, host: usize) -> u32 {
        host as u32
    }
    fn l_host_down(&self, host: usize) -> u32 {
        (self.hosts() + host) as u32
    }
    /// Local directed link router `r1 -> r2` (same group, local indices).
    fn l_local(&self, group: usize, r1: usize, r2: usize) -> u32 {
        debug_assert_ne!(r1, r2);
        let slot = if r2 > r1 { r2 - 1 } else { r2 };
        (2 * self.hosts() + group * self.a * (self.a - 1) + r1 * (self.a - 1) + slot) as u32
    }
    /// Global channel `gc = r*h + t` of `group` (one directed link; the
    /// reverse direction is the peer group's own channel).
    fn l_global(&self, group: usize, gc: usize) -> u32 {
        let nlocal = self.groups() * self.a * (self.a - 1);
        (2 * self.hosts() + nlocal + group * self.a * self.h + gc) as u32
    }

    /// Peer group of `group`'s global channel `gc` (consecutive arrangement).
    fn peer_group(&self, group: usize, gc: usize) -> usize {
        (group + gc + 1) % self.groups()
    }

    /// The channel of `dst_group` that connects back toward `src_group`,
    /// i.e. the inverse of [`Dragonfly::peer_group`].
    fn channel_to(&self, from_group: usize, to_group: usize) -> usize {
        let g = self.groups();
        (to_group + g - from_group - 1) % g
    }

    fn hop(&self, link: u32) -> Hop {
        Hop {
            link,
            latency: self.hop_latency,
        }
    }

    fn global_hop(&self, link: u32) -> Hop {
        Hop {
            link,
            latency: self.hop_latency + self.global_extra,
        }
    }

    /// Append the route segment crossing from `from_group` to `to_group`:
    /// optional local hop to the router owning the channel, then the global
    /// hop. `at_router` is the (global) router the head currently sits on;
    /// returns the router it arrives at.
    fn cross_groups(&self, at_router: usize, to_group: usize, out: &mut Vec<Hop>) -> usize {
        let from_group = self.group_of_router(at_router);
        debug_assert_ne!(from_group, to_group);
        let gc = self.channel_to(from_group, to_group);
        let owner_local = gc / self.h;
        let owner = from_group * self.a + owner_local;
        let cur_local = at_router % self.a;
        if owner != at_router {
            out.push(self.hop(self.l_local(from_group, cur_local, owner_local)));
        }
        out.push(self.global_hop(self.l_global(from_group, gc)));
        // Arrival router: the owner of the reverse channel in `to_group`.
        let back = self.channel_to(to_group, from_group);
        to_group * self.a + back / self.h
    }

    /// Append the local leg from `at_router` to `dst`'s router (if needed)
    /// and the host down-link.
    fn finish_local(&self, at_router: usize, dst: usize, out: &mut Vec<Hop>) {
        let dr = self.router_of(dst);
        if at_router != dr {
            let group = self.group_of_router(at_router);
            debug_assert_eq!(group, self.group_of_router(dr));
            out.push(self.hop(self.l_local(group, at_router % self.a, dr % self.a)));
        }
        out.push(self.hop(self.l_host_down(dst)));
    }

    /// Valiant intermediate group for candidate `choice` (1-based among the
    /// non-minimal candidates), skipping the endpoint groups.
    fn valiant_group(&self, sg: usize, dg: usize, choice: usize) -> usize {
        let g = self.groups();
        let mut vg = (sg + dg + choice) % g;
        while vg == sg || vg == dg {
            vg = (vg + 1) % g;
        }
        vg
    }
}

impl Topology for Dragonfly {
    fn hosts(&self) -> usize {
        self.groups() * self.a * self.p
    }

    fn links(&self) -> usize {
        2 * self.hosts() + self.groups() * self.a * (self.a - 1) + self.groups() * self.a * self.h
    }

    fn paths(&self, src: usize, dst: usize) -> usize {
        let (sg, dg) = (
            self.group_of_router(self.router_of(src)),
            self.group_of_router(self.router_of(dst)),
        );
        if sg == dg {
            1 // minimal local route only
        } else {
            // Minimal plus up to 3 Valiant detours (adaptive routing's
            // escape paths), bounded by the groups available to detour via.
            1 + self.groups().saturating_sub(2).min(3)
        }
    }

    fn route_into(&self, src: usize, dst: usize, choice: usize, out: &mut Vec<Hop>) {
        out.clear();
        let (sr, dr) = (self.router_of(src), self.router_of(dst));
        let (sg, dg) = (self.group_of_router(sr), self.group_of_router(dr));
        out.push(self.hop(self.l_host_up(src)));
        if sg == dg {
            self.finish_local(sr, dst, out);
            return;
        }
        let mut at = sr;
        if choice > 0 {
            at = self.cross_groups(at, self.valiant_group(sg, dg, choice), out);
        }
        at = self.cross_groups(at, dg, out);
        self.finish_local(at, dst, out);
    }

    fn path_latency(&self, src: usize, dst: usize) -> Duration {
        let (sr, dr) = (self.router_of(src), self.router_of(dst));
        let (sg, dg) = (self.group_of_router(sr), self.group_of_router(dr));
        if sg == dg {
            let local = if sr == dr { 0 } else { 1 };
            return (2 + local) * self.hop_latency;
        }
        // Mirror the minimal (choice-0) route: host up, optional local to
        // the channel owner, the global hop (2x), optional local to the
        // destination router, host down.
        let gc = self.channel_to(sg, dg);
        let owner = sg * self.a + gc / self.h;
        let arrival = dg * self.a + self.channel_to(dg, sg) / self.h;
        let locals = (owner != sr) as u64 + (arrival != dr) as u64;
        (3 + locals) * self.hop_latency + self.global_extra
    }

    fn link_ends(&self, link: u32) -> (usize, usize) {
        // Private numbering: hosts, then routers.
        let l = link as usize;
        let n = self.hosts();
        let r0 = n;
        if l < n {
            (l, r0 + self.router_of(l))
        } else if l < 2 * n {
            let host = l - n;
            (r0 + self.router_of(host), host)
        } else if l < 2 * n + self.groups() * self.a * (self.a - 1) {
            let i = l - 2 * n;
            let per_group = self.a * (self.a - 1);
            let (group, rest) = (i / per_group, i % per_group);
            let (r1, slot) = (rest / (self.a - 1), rest % (self.a - 1));
            let r2 = if slot >= r1 { slot + 1 } else { slot };
            (r0 + group * self.a + r1, r0 + group * self.a + r2)
        } else {
            let i = l - 2 * n - self.groups() * self.a * (self.a - 1);
            let per_group = self.a * self.h;
            let (group, gc) = (i / per_group, i % per_group);
            let peer = self.peer_group(group, gc);
            let back = self.channel_to(peer, group);
            (
                r0 + group * self.a + gc / self.h,
                r0 + peer * self.a + back / self.h,
            )
        }
    }

    fn label(&self) -> String {
        format!("dragonfly:a={},p={},h={}", self.a, self.p, self.h)
    }
}

/// Map candidate index `choice` onto a physical alternative, rotating by a
/// deterministic flow hash of `(src, dst)` so the canonical choice 0 spreads
/// different flows across alternatives (static ECMP) while staying
/// reproducible.
fn spread(src: usize, dst: usize, choice: usize, n: usize) -> usize {
    debug_assert!(n > 0);
    (flow_hash(src as u64, dst as u64) as usize + choice) % n
}

/// splitmix64-style mix of the flow endpoints.
fn flow_hash(src: u64, dst: u64) -> u64 {
    mix64(src << 32 | dst)
}

/// splitmix64 finalizer — shared by flow hashing and the background
/// tenant's per-link schedule de-phasing.
pub(crate) fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Parsed topology selection, storable in a `NetConfig` and buildable into
/// a concrete [`Topology`]. `Flat` is the default and reproduces the
/// pre-topology fabric byte-identically. Serializes as its
/// [`TopologySpec::label`] string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopologySpec {
    /// Ideal crossbar (the paper's testbed model).
    #[default]
    Flat,
    /// k-ary fat-tree.
    FatTree {
        /// Arity (ports per switch); even, ≥ 2. Hosts = `k^3/4`.
        k: usize,
    },
    /// Dragonfly with `a` routers/group, `p` hosts/router, `h` global
    /// links/router.
    Dragonfly {
        /// Routers per group.
        a: usize,
        /// Hosts per router.
        p: usize,
        /// Global links per router.
        h: usize,
    },
}

impl TopologySpec {
    /// Parse a CLI spec: `flat`, `fat-tree:k=8`, or
    /// `dragonfly:a=4,p=2,h=2`. Returns a one-line error message on any
    /// unknown family or malformed parameter.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (family, params) = match s.split_once(':') {
            Some((f, p)) => (f, Some(p)),
            None => (s, None),
        };
        let kv = |params: &str| -> Result<Vec<(String, usize)>, String> {
            params
                .split(',')
                .map(|pair| {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("malformed topology parameter {pair:?}"))?;
                    let v: usize = v
                        .parse()
                        .map_err(|_| format!("topology parameter {k}={v:?} is not a number"))?;
                    Ok((k.to_string(), v))
                })
                .collect()
        };
        match family {
            "flat" => {
                if params.is_some() {
                    return Err("topology 'flat' takes no parameters".into());
                }
                Ok(TopologySpec::Flat)
            }
            "fat-tree" => {
                let params = kv(params.ok_or("fat-tree needs k, e.g. fat-tree:k=8")?)?;
                let [(ref key, k)] = params[..] else {
                    return Err("fat-tree takes exactly one parameter k".into());
                };
                if key != "k" {
                    return Err(format!("unknown fat-tree parameter {key:?} (expected k)"));
                }
                if k < 2 || !k.is_multiple_of(2) {
                    return Err(format!("fat-tree k must be even and >= 2, got {k}"));
                }
                Ok(TopologySpec::FatTree { k })
            }
            "dragonfly" => {
                let params =
                    kv(params.ok_or("dragonfly needs a,p,h, e.g. dragonfly:a=4,p=2,h=2")?)?;
                let (mut a, mut p, mut h) = (None, None, None);
                for (key, v) in &params {
                    match key.as_str() {
                        "a" => a = Some(*v),
                        "p" => p = Some(*v),
                        "h" => h = Some(*v),
                        other => {
                            return Err(format!(
                                "unknown dragonfly parameter {other:?} (expected a, p, h)"
                            ))
                        }
                    }
                }
                match (a, p, h) {
                    (Some(a), Some(p), Some(h)) if a > 0 && p > 0 && h > 0 => {
                        Ok(TopologySpec::Dragonfly { a, p, h })
                    }
                    (Some(_), Some(_), Some(_)) => {
                        Err("dragonfly a, p, h must all be positive".into())
                    }
                    _ => Err("dragonfly needs all of a, p, h".into()),
                }
            }
            other => Err(format!(
                "unknown topology {other:?} (expected flat, fat-tree:k=N, or dragonfly:a=A,p=P,h=H)"
            )),
        }
    }

    /// The spec in its canonical parseable form.
    pub fn label(&self) -> String {
        match *self {
            TopologySpec::Flat => "flat".into(),
            TopologySpec::FatTree { k } => format!("fat-tree:k={k}"),
            TopologySpec::Dragonfly { a, p, h } => format!("dragonfly:a={a},p={p},h={h}"),
        }
    }

    /// Grow the family's parameters until the fabric fits `nranks` hosts
    /// (e.g. `fat-tree:k=8` holds 128 hosts; asked for 4096 it becomes
    /// `fat-tree:k=32`). Flat always fits. This is what lets one CLI spec
    /// apply across harnesses of very different scale without panicking.
    pub fn fitted(&self, nranks: usize) -> Self {
        match *self {
            TopologySpec::Flat => TopologySpec::Flat,
            TopologySpec::FatTree { mut k } => {
                while k * k * k / 4 < nranks {
                    k += 2;
                }
                TopologySpec::FatTree { k }
            }
            TopologySpec::Dragonfly { a, p, mut h } => {
                // Grow the global-link count (group count scales with a*h).
                while (a * h + 1) * a * p < nranks {
                    h += 1;
                }
                TopologySpec::Dragonfly { a, p, h }
            }
        }
    }

    /// Number of hosts the spec'd fabric wires up (`usize::MAX` for flat).
    pub fn hosts(&self) -> usize {
        match *self {
            TopologySpec::Flat => usize::MAX,
            TopologySpec::FatTree { k } => k * k * k / 4,
            TopologySpec::Dragonfly { a, p, h } => (a * h + 1) * a * p,
        }
    }

    /// Instantiate the topology. `flat_latency`, `switch_radix`, and
    /// `inter_switch_extra` configure the crossbar (they reproduce
    /// `NetConfig::latency_between`); `hop_latency` is the per-hop
    /// propagation of the hierarchical families.
    pub fn build(
        &self,
        flat_latency: Duration,
        switch_radix: Option<usize>,
        inter_switch_extra: Duration,
        hop_latency: Duration,
    ) -> std::sync::Arc<dyn Topology> {
        match *self {
            TopologySpec::Flat => std::sync::Arc::new(FlatCrossbar::new(
                flat_latency,
                switch_radix,
                inter_switch_extra,
            )),
            TopologySpec::FatTree { k } => std::sync::Arc::new(FatTree::new(k, hop_latency)),
            TopologySpec::Dragonfly { a, p, h } => {
                std::sync::Arc::new(Dragonfly::new(a, p, h, hop_latency))
            }
        }
    }
}

/// Spatial pattern of a background tenant's traffic. Serializes as
/// `"uniform"`, `"incast:<victim>"`, or `"permutation"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Every rank injects at unit rate to uniformly spread destinations.
    Uniform,
    /// Every rank sends to one victim rank (switch-port hotspot).
    Incast {
        /// The hotspot destination rank.
        victim: usize,
    },
    /// Rank `i` sends to rank `(i + n/2) mod n` (bisection-stressing
    /// shift permutation).
    Permutation,
}

impl TrafficPattern {
    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficPattern::Uniform => "uniform",
            TrafficPattern::Incast { .. } => "incast",
            TrafficPattern::Permutation => "permutation",
        }
    }
}

/// A co-located tenant's traffic, modeled as fluid link occupancy: every
/// source injects `msg_bytes` once per `period_ns` along the pattern's
/// canonical routes (so per-source offered load is independent of job
/// size), and every shared link a flow crosses replays those injections
/// lazily — O(1) state per link, no simulated ranks, fully deterministic.
/// The measured job's messages queue behind the background occupancy
/// exactly as they queue behind each other; a finite per-link buffer drops
/// tenant injections past a bounded backlog, so an oversubscribing tenant
/// saturates a link rather than queuing without limit.
///
/// On the flat crossbar there are no shared links, so a background job is
/// inert there (the crossbar is contention-free by construction).
///
/// # Examples
///
/// ```
/// use simnet::topology::{BackgroundJob, TrafficPattern};
///
/// let job = BackgroundJob::builder(TrafficPattern::Uniform)
///     .msg_bytes(8 * 1024)
///     .period_ns(50_000)
///     .seed(7)
///     .build();
/// assert_eq!(job.pattern.label(), "uniform");
/// assert_eq!(job.msg_bytes, 8 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackgroundJob {
    /// Who sends to whom.
    pub pattern: TrafficPattern,
    /// Bytes per injected message.
    pub msg_bytes: usize,
    /// Injection period per flow, ns.
    pub period_ns: u64,
    /// Seed de-phasing the per-link injection schedules.
    pub seed: u64,
}

impl BackgroundJob {
    /// Start building a background job with the given pattern. Defaults:
    /// 4 KiB messages every 100 µs per flow, seed 1.
    pub fn builder(pattern: TrafficPattern) -> BackgroundJobBuilder {
        BackgroundJobBuilder {
            job: BackgroundJob {
                pattern,
                msg_bytes: 4096,
                period_ns: 100_000,
                seed: 1,
            },
        }
    }
}

/// Builder for [`BackgroundJob`] (see [`BackgroundJob::builder`]).
#[derive(Debug, Clone)]
pub struct BackgroundJobBuilder {
    job: BackgroundJob,
}

impl BackgroundJobBuilder {
    /// Bytes per injected message.
    pub fn msg_bytes(mut self, bytes: usize) -> Self {
        self.job.msg_bytes = bytes;
        self
    }

    /// Injection period per flow, ns (smaller = heavier load).
    pub fn period_ns(mut self, ns: u64) -> Self {
        self.job.period_ns = ns.max(1);
        self
    }

    /// Seed de-phasing the per-link schedules.
    pub fn seed(mut self, seed: u64) -> Self {
        self.job.seed = seed;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> BackgroundJob {
        self.job
    }
}

// Manual serde impls: the vendored `serde_derive` handles flat structs and
// unit enums only, and the string forms keep experiment configs readable.
impl Serialize for TopologySpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.label())
    }
}

impl Deserialize for TopologySpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        // Configs written before the topology layer have no such key.
        if v.is_null() {
            return Ok(TopologySpec::Flat);
        }
        let s: String = Deserialize::from_value(v)?;
        TopologySpec::parse(&s).map_err(serde::DeError::custom)
    }
}

impl Serialize for TrafficPattern {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(match *self {
            TrafficPattern::Incast { victim } => format!("incast:{victim}"),
            other => other.label().to_string(),
        })
    }
}

impl Deserialize for TrafficPattern {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let s: String = Deserialize::from_value(v)?;
        match s.as_str() {
            "uniform" => Ok(TrafficPattern::Uniform),
            "permutation" => Ok(TrafficPattern::Permutation),
            other => other
                .strip_prefix("incast:")
                .and_then(|n| n.parse().ok())
                .map(|victim| TrafficPattern::Incast { victim })
                .ok_or_else(|| {
                    serde::DeError::custom(format!("unknown traffic pattern {other:?}"))
                }),
        }
    }
}

impl Serialize for BackgroundJob {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("pattern".into(), self.pattern.to_value()),
            ("msg_bytes".into(), self.msg_bytes.to_value()),
            ("period_ns".into(), self.period_ns.to_value()),
            ("seed".into(), self.seed.to_value()),
        ])
    }
}

impl Deserialize for BackgroundJob {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(BackgroundJob {
            pattern: Deserialize::from_value(v.field("pattern"))?,
            msg_bytes: Deserialize::from_value(v.field("msg_bytes"))?,
            period_ns: Deserialize::from_value(v.field("period_ns"))?,
            seed: Deserialize::from_value(v.field("seed"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every hop of every candidate route must form a contiguous walk from
    /// src to dst in the topology's private node numbering, and the
    /// canonical candidate must cost exactly `path_latency`.
    fn check_routes(topo: &dyn Topology, nhosts: usize) {
        let mut route = Vec::new();
        for src in 0..nhosts {
            for dst in 0..nhosts {
                if src == dst {
                    continue;
                }
                let lat = topo.path_latency(src, dst);
                for c in 0..topo.paths(src, dst) {
                    topo.route_into(src, dst, c, &mut route);
                    assert!(!route.is_empty());
                    let total: u64 = route.iter().map(|h| h.latency).sum();
                    if c == 0 {
                        assert_eq!(total, lat, "canonical {src}->{dst} != path_latency");
                    } else {
                        assert!(
                            total >= lat,
                            "candidate {c} of {src}->{dst} undercuts minimal"
                        );
                    }
                    let mut at = src;
                    for hop in &route {
                        assert!(
                            hop.link != LINK_DEDICATED,
                            "hierarchical routes share links"
                        );
                        assert!((hop.link as usize) < topo.links());
                        let (from, to) = topo.link_ends(hop.link);
                        assert_eq!(from, at, "route {src}->{dst} candidate {c} not contiguous");
                        at = to;
                    }
                    assert_eq!(at, dst, "route {src}->{dst} candidate {c} ends elsewhere");
                }
            }
        }
    }

    #[test]
    fn fat_tree_k4_routes_are_valid_walks() {
        let ft = FatTree::new(4, 1000);
        check_routes(&ft, ft.hosts());
    }

    #[test]
    fn fat_tree_k8_spot_routes_are_valid_walks() {
        let ft = FatTree::new(8, 1000);
        // Full 128x128 is slow in debug; a host subset crossing every tier
        // (same edge, same pod, inter-pod) covers all code paths.
        let picks = [0usize, 1, 3, 5, 17, 31, 64, 127];
        let mut route = Vec::new();
        for &src in &picks {
            for &dst in &picks {
                if src == dst {
                    continue;
                }
                for c in 0..ft.paths(src, dst) {
                    ft.route_into(src, dst, c, &mut route);
                    let mut at = src;
                    for hop in &route {
                        let (from, to) = ft.link_ends(hop.link);
                        assert_eq!(from, at);
                        at = to;
                    }
                    assert_eq!(at, dst);
                }
            }
        }
    }

    #[test]
    fn fat_tree_hop_counts() {
        let ft = FatTree::new(4, 500);
        assert_eq!(ft.path_latency(0, 1), 2 * 500); // same edge
        assert_eq!(ft.path_latency(0, 2), 4 * 500); // same pod
        assert_eq!(ft.path_latency(0, 4), 6 * 500); // inter-pod
        assert_eq!(ft.paths(0, 1), 1);
        assert_eq!(ft.paths(0, 2), 2);
        assert_eq!(ft.paths(0, 4), 4);
    }

    #[test]
    fn fat_tree_ecmp_candidates_are_distinct() {
        let ft = FatTree::new(4, 1000);
        let mut seen = std::collections::HashSet::new();
        let mut route = Vec::new();
        for c in 0..ft.paths(0, 15) {
            ft.route_into(0, 15, c, &mut route);
            let key: Vec<u32> = route.iter().map(|h| h.link).collect();
            assert!(seen.insert(key), "candidate {c} duplicates another");
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn dragonfly_routes_are_valid_walks() {
        let df = Dragonfly::new(2, 2, 1, 1000); // 3 groups, 12 hosts
        check_routes(&df, df.hosts());
        let df = Dragonfly::new(4, 2, 2, 1000); // 9 groups, 72 hosts
        let picks = [0usize, 1, 7, 8, 15, 31, 40, 71];
        let mut route = Vec::new();
        for &src in &picks {
            for &dst in &picks {
                if src == dst {
                    continue;
                }
                for c in 0..df.paths(src, dst) {
                    df.route_into(src, dst, c, &mut route);
                    let mut at = src;
                    for hop in &route {
                        let (from, to) = df.link_ends(hop.link);
                        assert_eq!(from, at, "{src}->{dst} c{c}");
                        at = to;
                    }
                    assert_eq!(at, dst);
                }
            }
        }
    }

    #[test]
    fn dragonfly_global_wiring_is_a_permutation() {
        let df = Dragonfly::new(4, 2, 2, 1000);
        let g = df.groups();
        for group in 0..g {
            let mut peers: Vec<usize> = (0..df.a * df.h)
                .map(|gc| df.peer_group(group, gc))
                .collect();
            peers.sort_unstable();
            let expected: Vec<usize> = (0..g).filter(|&x| x != group).collect();
            assert_eq!(
                peers, expected,
                "group {group} must reach every other group once"
            );
            for gc in 0..df.a * df.h {
                let peer = df.peer_group(group, gc);
                assert_eq!(df.peer_group(peer, df.channel_to(peer, group)), group);
            }
        }
    }

    #[test]
    fn flat_crossbar_reproduces_latency_between() {
        let flat = FlatCrossbar::new(5000, Some(4), 2000);
        assert_eq!(flat.path_latency(0, 3), 5000);
        assert_eq!(flat.path_latency(0, 4), 7000);
        assert_eq!(flat.paths(0, 9), 1);
        let mut route = Vec::new();
        flat.route_into(0, 4, 0, &mut route);
        assert_eq!(route.len(), 1);
        assert_eq!(route[0].link, LINK_DEDICATED);
        assert_eq!(route[0].latency, 7000);
    }

    #[test]
    fn spec_parses_and_round_trips() {
        for s in ["flat", "fat-tree:k=8", "dragonfly:a=4,p=2,h=2"] {
            let spec = TopologySpec::parse(s).unwrap();
            assert_eq!(spec.label(), s);
        }
        for bad in [
            "bogus",
            "fat-tree",
            "fat-tree:k=7",
            "fat-tree:k=x",
            "fat-tree:q=8",
            "dragonfly:a=4",
            "dragonfly:a=0,p=2,h=2",
            "flat:k=2",
        ] {
            assert!(TopologySpec::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn spec_fitting_grows_to_rank_count() {
        let spec = TopologySpec::parse("fat-tree:k=8").unwrap();
        assert_eq!(spec.fitted(128), TopologySpec::FatTree { k: 8 });
        assert_eq!(spec.fitted(129), TopologySpec::FatTree { k: 10 });
        assert_eq!(spec.fitted(4096), TopologySpec::FatTree { k: 26 });
        let df = TopologySpec::parse("dragonfly:a=4,p=2,h=2").unwrap();
        assert!(df.fitted(500).hosts() >= 500);
        assert_eq!(TopologySpec::Flat.fitted(1 << 20), TopologySpec::Flat);
    }

    #[test]
    fn route_buffers_do_not_allocate_after_first_use() {
        let ft = FatTree::new(8, 1000);
        let mut route = Vec::with_capacity(8);
        let cap0 = {
            ft.route_into(0, 127, 0, &mut route);
            route.capacity()
        };
        for c in 0..ft.paths(0, 127) {
            ft.route_into(0, 127, c, &mut route);
        }
        assert_eq!(route.capacity(), cap0, "route_into must reuse the buffer");
    }
}
