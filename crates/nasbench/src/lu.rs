//! NAS LU (SSOR solver).
//!
//! 2-D pencil decomposition of the `n³` grid; the SSOR sweeps are
//! *wavefronts*: for every k-plane, receive thin boundary pencils from the
//! north and west neighbors, compute the plane, send south and east. That
//! yields **many small messages** (a few KB each, `2·nz` per sweep per
//! rank) — "a substantial portion of the payload comprises short messages"
//! — which is why LU posts the highest overlap numbers of the NAS suite
//! under MVAPICH2 (paper Figure 12): eager sends are buffered and complete
//! under later computation, and short transfers are cheap to hide.

use simmpi::{Mpi, Src, TagSel};

use crate::class::Class;
use crate::grid::grid2;
use crate::model::{flops_ns, LU_PLANE_FLOPS, LU_RHS_FLOPS};

/// LU workload parameters.
#[derive(Debug, Clone)]
pub struct LuParams {
    /// Problem class (grid is `n³`).
    pub class: Class,
    /// SSOR iterations (scaled from NPB's 250).
    pub iterations: usize,
}

impl LuParams {
    /// LU at the given class with scaled iterations.
    pub fn new(class: Class) -> Self {
        LuParams {
            class,
            iterations: 2,
        }
    }

    /// Grid points per side.
    pub fn n(&self) -> usize {
        match self.class {
            Class::S => 12,
            Class::W => 33,
            Class::A => 64,
            Class::B => 102,
        }
    }
}

/// Run LU on the given MPI endpoint. `mpi.nranks()` must be a power of two.
pub fn run_lu(mpi: &mut Mpi, p: &LuParams) {
    let n = p.n();
    let np = mpi.nranks();
    let (py, px) = grid2(np);
    let me = mpi.rank();
    let (my_y, my_x) = (me / px, me % px);
    let nx = n.div_ceil(px);
    let ny = n.div_ceil(py);
    let nz = n;

    let plane_ns = flops_ns((nx * ny) as f64 * LU_PLANE_FLOPS);
    // Pencil exchanged per k-plane: one row/column of 5 components.
    let x_pencil = vec![1u8; ny * 5 * 8];
    let y_pencil = vec![2u8; nx * 5 * 8];

    let north = (my_y > 0).then(|| (my_y - 1) * px + my_x);
    let south = (my_y + 1 < py).then(|| (my_y + 1) * px + my_x);
    let west = (my_x > 0).then(|| my_y * px + my_x - 1);
    let east = (my_x + 1 < px).then(|| my_y * px + my_x + 1);

    for iter in 0..p.iterations {
        let tag_base = (iter as u64) << 32;

        // rhs evaluation with full-face halo exchanges (exchange_3): larger
        // messages, once per iteration.
        let face_x = vec![3u8; ny * nz * 5 * 8];
        let face_y = vec![4u8; nx * nz * 5 * 8];
        for (nbr_recv, nbr_send, buf, t) in [
            (west, east, &face_x, 1u64),
            (east, west, &face_x, 2),
            (north, south, &face_y, 3),
            (south, north, &face_y, 4),
        ] {
            let r = nbr_recv.map(|src| mpi.irecv(Src::Rank(src), TagSel::Is(tag_base + t)));
            if let Some(dst) = nbr_send {
                mpi.send(dst, tag_base + t, buf);
            }
            if let Some(r) = r {
                mpi.wait(r);
            }
        }
        mpi.compute(flops_ns((nx * ny * nz) as f64 * LU_RHS_FLOPS));

        // Lower-triangular sweep (blts): wavefront from (0,0).
        for k in 0..nz {
            let tag = tag_base + 100 + k as u64;
            if let Some(src) = north {
                mpi.recv(Src::Rank(src), TagSel::Is(tag));
            }
            if let Some(src) = west {
                mpi.recv(Src::Rank(src), TagSel::Is(tag + 1000));
            }
            mpi.compute(plane_ns);
            if let Some(dst) = south {
                mpi.send(dst, tag, &y_pencil);
            }
            if let Some(dst) = east {
                mpi.send(dst, tag + 1000, &x_pencil);
            }
        }

        // Upper-triangular sweep (buts): wavefront from the opposite corner.
        for k in 0..nz {
            let tag = tag_base + 200_000 + k as u64;
            if let Some(src) = south {
                mpi.recv(Src::Rank(src), TagSel::Is(tag));
            }
            if let Some(src) = east {
                mpi.recv(Src::Rank(src), TagSel::Is(tag + 1000));
            }
            mpi.compute(plane_ns);
            if let Some(dst) = north {
                mpi.send(dst, tag, &y_pencil);
            }
            if let Some(dst) = west {
                mpi.send(dst, tag + 1000, &x_pencil);
            }
        }

        // Residual norms.
        mpi.allreduce(&[1.0, 2.0, 3.0, 4.0, 5.0], simmpi::ReduceOp::Sum);
    }
}
