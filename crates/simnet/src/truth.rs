//! Ground-truth transfer records.

use simcore::{ActivityLog, Time};

use crate::nic::CausalEdge;

/// What kind of fabric operation moved the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferKind {
    /// Two-sided send (eager data packets).
    Send,
    /// One-sided RDMA Write.
    RdmaWrite,
    /// One-sided RDMA Read.
    RdmaRead,
}

/// Physical record of one data transfer operation, as the simulator saw it.
/// Control packets are *not* recorded — matching the PERUSE-style definition
/// of a message transfer used by the paper.
#[derive(Debug, Clone)]
pub struct TransferRecord {
    /// Fabric-assigned transfer id (also used by the instrumentation layer,
    /// so bounds and truth can be joined per transfer).
    pub xfer_id: u64,
    /// Node whose memory the data left.
    pub src: usize,
    /// Node whose memory the data entered.
    pub dst: usize,
    /// Payload bytes moved.
    pub bytes: usize,
    /// Physical start of the data movement (first byte leaves src memory).
    pub phys_start: Time,
    /// Physical end (last byte lands in dst memory).
    pub phys_end: Time,
    /// Operation kind.
    pub kind: TransferKind,
    /// Causal breakdown of the transfer's latency (queueing, serialization,
    /// fault-injected extra time).
    pub edge: CausalEdge,
}

impl TransferRecord {
    /// Ground-truth overlap of this transfer with user computation on `log`
    /// (the activity log of whichever rank's perspective is being assessed).
    pub fn true_overlap(&self, log: &ActivityLog) -> u64 {
        log.compute_overlap_with(self.phys_start, self.phys_end)
    }

    /// Physical duration of the transfer.
    pub fn duration(&self) -> u64 {
        self.phys_end - self.phys_start
    }
}

/// Sum of ground-truth overlaps for every transfer touching `rank` (as source
/// or destination), against that rank's activity log.
pub fn total_true_overlap(transfers: &[TransferRecord], rank: usize, log: &ActivityLog) -> u64 {
    transfers
        .iter()
        .filter(|t| t.src == rank || t.dst == rank)
        .map(|t| t.true_overlap(log))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Activity;

    fn rec(src: usize, dst: usize, s: Time, e: Time) -> TransferRecord {
        TransferRecord {
            xfer_id: 0,
            src,
            dst,
            bytes: 100,
            phys_start: s,
            phys_end: e,
            kind: TransferKind::Send,
            edge: CausalEdge::default(),
        }
    }

    #[test]
    fn true_overlap_intersects_compute() {
        let mut log = ActivityLog::new();
        log.record(0, 50, Activity::Compute);
        log.record(50, 100, Activity::LibraryWait);
        let t = rec(0, 1, 25, 75);
        assert_eq!(t.true_overlap(&log), 25);
    }

    #[test]
    fn total_filters_by_rank() {
        let mut log = ActivityLog::new();
        log.record(0, 100, Activity::Compute);
        let ts = vec![rec(0, 1, 0, 10), rec(2, 3, 0, 10), rec(4, 0, 20, 30)];
        assert_eq!(total_true_overlap(&ts, 0, &log), 20);
        assert_eq!(total_true_overlap(&ts, 3, &log), 10);
        assert_eq!(total_true_overlap(&ts, 5, &log), 0);
    }
}
