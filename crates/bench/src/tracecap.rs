//! Process-global trace capture for the `repro --trace <dir>` flow.
//!
//! Harnesses are plain `fn() -> Series` entry points, so they cannot take a
//! "capture traces" argument; instead the `repro` binary arms this module
//! once (before any harness runs) and harnesses consult it when building
//! their [`overlap_core::RecorderOpts`]. Each instrumented simulation run
//! registers its per-rank traces under a unique scope label
//! (`"<harness>/<point>"`); after all harnesses finish, `repro` drains the
//! store and writes one Chrome-trace + JSONL file pair per harness.
//!
//! The store is keyed by a `BTreeMap`, so drained output is ordered by scope
//! label — independent of which `--jobs` worker finished first. Combined
//! with the deterministic per-rank traces, the emitted files are
//! byte-identical across worker counts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use overlap_core::trace::{ExtraEvent, RankTrace, TraceBundle};
use overlap_core::RecorderOpts;
use simnet::FaultEvent;

static ENABLED: AtomicBool = AtomicBool::new(false);
static STORE: Mutex<BTreeMap<String, TraceBundle>> = Mutex::new(BTreeMap::new());
static STREAM_TO: Mutex<Option<String>> = Mutex::new(None);

/// Arm trace capture for the rest of the process. Call once, before running
/// harnesses.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Whether capture is armed.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Additionally tee every captured bundle to a running `overlapd` at `addr`
/// (the `repro --stream <addr>` flow). Implies capture; call once, before
/// running harnesses. Push failures are warnings, never fatal — live
/// streaming must not break a batch run.
pub fn set_stream(addr: impl Into<String>) {
    *STREAM_TO.lock().unwrap() = Some(addr.into());
    enable();
}

/// Recorder options for an instrumented harness run: the defaults, with
/// trace capture switched on when this module is armed.
pub fn rec_opts() -> RecorderOpts {
    RecorderOpts {
        trace: enabled(),
        ..Default::default()
    }
}

/// Register one simulation run's traces under `scope`. Fabric fault events
/// become generic extra markers (`fault.<kind>`) on the bundle. No-op while
/// capture is disarmed or when the run produced no traces.
pub fn record(scope: impl Into<String>, traces: Vec<RankTrace>, faults: &[FaultEvent]) {
    if !enabled() || traces.is_empty() {
        return;
    }
    let scope = scope.into();
    let extras = faults
        .iter()
        .map(|f| ExtraEvent {
            t: f.at,
            name: format!("fault.{}", f.kind.label()),
            detail: f.describe(),
        })
        .collect();
    let bundle = TraceBundle {
        scope: scope.clone(),
        ranks: traces,
        extras,
    };
    let stream_to = STREAM_TO.lock().unwrap().clone();
    if let Some(addr) = stream_to {
        // Tee this bundle to the analysis service as it lands: session =
        // harness id (the scope prefix), so all of a harness's scopes stream
        // into one live session. Each chunk re-states the schema header,
        // which the server accepts.
        let session = scope.split('/').next().unwrap_or(&scope);
        let chunk = overlap_core::trace::jsonl(std::slice::from_ref(&bundle));
        if let Err(e) = overlapd::push_text(&addr, session, &chunk) {
            eprintln!("warning: cannot stream scope {scope:?} to {addr}: {e}");
        }
    }
    STORE.lock().unwrap().insert(scope, bundle);
}

/// Remove and return everything captured so far, ordered by scope label.
pub fn drain() -> BTreeMap<String, TraceBundle> {
    std::mem::take(&mut *STORE.lock().unwrap())
}
