//! Minimal offline stand-in for `serde`.
//!
//! Instead of serde's visitor-based architecture, this stub uses a simplified
//! data model: `Serialize` converts a value into a JSON-like [`Value`] tree
//! and `Deserialize` reads one back. The local `serde_derive` generates impls
//! of these traits, and the local `serde_json` prints/parses `Value` trees.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the data model all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Num(Number),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving integer exactness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating-point number.
    Float(f64),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object member by key, or `Null` when absent / not an object.
    pub fn field(&self, name: &str) -> &Value {
        self.get(name).unwrap_or(&NULL)
    }

    /// Object member by key.
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this is a non-negative integer.
    pub fn is_u64(&self) -> bool {
        matches!(self, Value::Num(Number::PosInt(_)))
    }

    /// As a `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(Number::PosInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// As an `i64`, if an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Num(Number::NegInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// As an `f64`, if any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(Number::PosInt(n)) => Some(*n as f64),
            Value::Num(Number::NegInt(n)) => Some(*n as f64),
            Value::Num(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }

    /// As a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, name: &str) -> &Value {
        self.field(name)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Error produced when a [`Value`] does not match the requested type.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Represent `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- Serialize

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::PosInt(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 {
                    Value::Num(Number::NegInt(*self as i64))
                } else {
                    Value::Num(Number::PosInt(*self as u64))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::Float(*self as f64))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// -------------------------------------------------------------- Deserialize

fn want(v: &Value, what: &str) -> DeError {
    DeError(format!("expected {what}, found {v:?}"))
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(Number::PosInt(n)) => {
                        <$t>::try_from(*n).map_err(|_| want(v, stringify!($t)))
                    }
                    _ => Err(want(v, stringify!($t))),
                }
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match v {
                    Value::Num(Number::PosInt(n)) => {
                        i64::try_from(*n).map_err(|_| want(v, stringify!($t)))?
                    }
                    Value::Num(Number::NegInt(n)) => *n,
                    _ => return Err(want(v, stringify!($t))),
                };
                <$t>::try_from(wide).map_err(|_| want(v, stringify!($t)))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| want(v, "number"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| want(v, "bool"))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| want(v, "string"))
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // Static-str fields exist only on types that are (re)constructed
        // rarely; leaking the small string is the price of the simplified
        // data model.
        v.as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| want(v, "string"))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(want(v, "array")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(o) => o
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(want(v, "object")),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) if a.len() == 2 => Ok((A::from_value(&a[0])?, B::from_value(&a[1])?)),
            _ => Err(want(v, "2-element array")),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) if a.len() == 3 => Ok((
                A::from_value(&a[0])?,
                B::from_value(&a[1])?,
                C::from_value(&a[2])?,
            )),
            _ => Err(want(v, "3-element array")),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            Vec::<u64>::from_value(&vec![1u64, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        let pair = (3u64, 4u64);
        assert_eq!(<(u64, u64)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), 1u64.to_value())]);
        assert!(v["a"].is_u64());
        assert!(v["missing"].is_null());
    }
}
