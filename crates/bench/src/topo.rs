//! Process-wide topology override for the harness registry.
//!
//! Harnesses are plain `fn() -> Series` entry points, so `repro --topology
//! <spec>` can't thread a parameter through the registry. Instead the CLI
//! stores the parsed spec here once, and every harness routes its
//! [`NetConfig`] through [`apply`] before building a cluster. With no
//! override set, [`apply`] is the identity — the default flat crossbar stays
//! byte-identical to the pre-topology model, which is what the golden tests
//! pin.

use std::sync::OnceLock;

use simnet::{NetConfig, TopologySpec};

static OVERRIDE: OnceLock<TopologySpec> = OnceLock::new();

/// Install the process-wide topology override. First caller wins; later
/// calls are ignored (the CLI parses at most one `--topology` flag).
pub fn set(spec: TopologySpec) {
    let _ = OVERRIDE.set(spec);
}

/// The installed override, if any.
pub fn get() -> Option<TopologySpec> {
    OVERRIDE.get().copied()
}

/// Route a harness's fabric config through the override: replaces the
/// topology spec when one was installed, otherwise returns `cfg` unchanged.
/// The spec is fitted to the actual rank count when the world is built, so
/// a small spec grows rather than panicking on a large harness.
pub fn apply(mut cfg: NetConfig) -> NetConfig {
    if let Some(spec) = get() {
        cfg.topology = spec;
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_without_override_is_identity() {
        // NB: must not call `set` here — the override is process-global and
        // would leak into sibling tests.
        let cfg = apply(NetConfig::default());
        assert_eq!(cfg.topology, TopologySpec::Flat);
    }
}
