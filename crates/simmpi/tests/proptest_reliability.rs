//! Property tests for the reliability layer: under *random* seeded fault
//! plans (loss, duplication, and delay each up to 10%), every payload must
//! arrive intact and every overlap report must keep its clamped-bound
//! invariant (`min <= max <= wall`) instead of panicking.

use proptest::prelude::*;

use overlap_core::RecorderOpts;
use simmpi::{run_mpi, MpiConfig, Src, TagSel};
use simnet::{FaultPlan, NetConfig};

fn checksum(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn payload(rank: usize, round: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (rank.wrapping_mul(31) ^ round.wrapping_mul(17) ^ i) as u8)
        .collect()
}

/// Probabilities are drawn as integer percentage points (0..=10) so the
/// vendored proptest's integer-range strategies can generate them.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (0u64..1_000_000, 0u64..11, 0u64..11, 0u64..11).prop_map(|(seed, drop, dup, delay)| FaultPlan {
        seed,
        drop_prob: drop as f64 / 100.0,
        duplicate_prob: dup as f64 / 100.0,
        delay_prob: delay as f64 / 100.0,
        max_extra_delay: 15_000,
        ..FaultPlan::none()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_fault_plans_preserve_delivery(plan in arb_plan()) {
        // Small-but-mixed sizes: eager, threshold-straddling, rendezvous.
        let sizes: &'static [usize] = &[1, 2 << 10, 12 << 10, 96 << 10];
        let net = NetConfig { faults: plan, ..NetConfig::default() };
        let out = run_mpi(
            3,
            net,
            MpiConfig::default(),
            RecorderOpts::default(),
            move |mpi| {
                let me = mpi.rank();
                let n = mpi.nranks();
                let dst = (me + 1) % n;
                let src = (me + n - 1) % n;
                for (round, &len) in sizes.iter().enumerate() {
                    let data = payload(me, round, len);
                    let want = checksum(&payload(src, round, len));
                    let sr = mpi.isend(dst, round as u64, &data);
                    let st = mpi.recv(Src::Rank(src), TagSel::Is(round as u64));
                    let got = st.into_data();
                    // Plain asserts: a failure panics the rank, which
                    // surfaces as a run error (prop_assert can't cross the
                    // closure boundary).
                    assert_eq!(got.len(), len, "length corrupted under faults");
                    assert_eq!(checksum(&got), want, "payload corrupted under faults");
                    mpi.wait(sr);
                }
            },
        );
        let out = out.expect("run completes under random fault plan");
        // Clamped-bound invariant: graceful degradation must never produce
        // an impossible bound, whatever the fault plan did to the stream.
        for r in &out.reports {
            prop_assert!(r.total.min_overlap <= r.total.max_overlap);
            for b in &r.by_bin {
                prop_assert!(b.min_overlap <= b.max_overlap);
            }
        }
    }
}
