//! `perf_main` — the a-priori transfer-time table generator.
//!
//! The paper used Mellanox's `perf_main` utility "a priori to characterize
//! data transfer times for various message sizes"; the resulting
//! disk-resident file is read into memory at `MPI_Init`. This binary is the
//! suite's equivalent: it *measures* transfer times on the simulated fabric
//! with raw RDMA writes (no library protocol overhead) and writes the table
//! as JSON.
//!
//! ```text
//! cargo run -p bench --bin perf_main -- [output.json] [--jobs N]
//! ```
//!
//! Each message size is measured in its own fresh two-rank cluster on an
//! otherwise idle fabric, so the sizes are independent deterministic
//! simulations and run concurrently on the `--jobs` worker pool (default:
//! available cores). The resulting table is identical for any worker count.

use std::sync::{Arc, Mutex};

use overlap_core::XferTimeTable;
use simcore::SimOpts;
use simnet::{Cluster, NetConfig, RegionId};

fn measure(net: NetConfig, sizes: Vec<usize>) -> Vec<(u64, u64)> {
    let results: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let results_in = Arc::clone(&results);
    let sizes_target = sizes.clone();
    let cluster = Cluster::new(2, net);
    cluster
        .run(SimOpts::default(), move |ctx, world| {
            if ctx.rank() == 1 {
                let mut w = world.lock();
                for &sz in &sizes_target {
                    w.register(1, vec![0u8; sz]);
                }
                return;
            }
            ctx.compute(1_000_000); // let the target register its regions
            for (i, &sz) in sizes_target.iter().enumerate() {
                let t0 = ctx.now();
                {
                    let mut w = world.lock();
                    w.post_rdma_write(
                        0,
                        1,
                        RegionId(i as u64),
                        0,
                        bytes::Bytes::from(vec![0u8; sz]),
                        0,
                        None,
                        None,
                    );
                }
                loop {
                    if world.lock().poll_cq(0).is_some() {
                        break;
                    }
                    ctx.park();
                }
                results_in.lock().unwrap().push((sz as u64, ctx.now() - t0));
            }
        })
        .expect("measurement run failed");
    Arc::try_unwrap(results).unwrap().into_inner().unwrap()
}

fn main() {
    let mut out_path = "xfer_table.json".to_string();
    let mut jobs = bench::runner::default_jobs();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let v = args.next().unwrap_or_default();
                jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("perf_main: invalid --jobs value {v:?}");
                    std::process::exit(2);
                });
            }
            a if a.starts_with("--jobs=") => {
                jobs = a["--jobs=".len()..].parse().unwrap_or_else(|_| {
                    eprintln!("perf_main: invalid --jobs value {a:?}");
                    std::process::exit(2);
                });
            }
            a if a.starts_with('-') => {
                eprintln!("perf_main: unknown flag {a:?}");
                std::process::exit(2);
            }
            a => out_path = a.to_string(),
        }
    }
    bench::runner::set_jobs(jobs);
    let mut sizes: Vec<usize> = Vec::new();
    let mut b = 1usize;
    while b <= 8 << 20 {
        sizes.push(b);
        b *= 2;
    }
    // One independent idle-fabric measurement per size; results land in
    // size order whatever the worker count.
    let points: Vec<(u64, u64)> =
        bench::runner::par_map(&sizes, |&sz| measure(NetConfig::default(), vec![sz])[0]);
    println!("{:>10}  {:>12}", "bytes", "xfer_ns");
    for &(sz, t) in &points {
        println!("{sz:>10}  {t:>12}");
    }
    let table = XferTimeTable::from_points(points);
    table
        .save(std::path::Path::new(&out_path))
        .expect("failed to write table");
    println!("wrote {out_path}");
}
