//! Bin-partition property tests: every size lands in exactly one bin, labels
//! are consistent, and custom edges behave.

use overlap_core::SizeBins;
use proptest::prelude::*;

proptest! {
    #[test]
    fn every_size_maps_to_a_valid_bin(bytes in 0u64..100_000_000) {
        let b = SizeBins::log_default();
        let i = b.index(bytes);
        prop_assert!(i < b.count());
        prop_assert_eq!(b.labels().len(), b.count());
    }

    #[test]
    fn index_is_monotonic_in_size(a in 0u64..100_000_000, d in 0u64..100_000_000) {
        let b = SizeBins::log_default();
        prop_assert!(b.index(a) <= b.index(a.saturating_add(d)));
    }

    #[test]
    fn custom_edges_partition_exactly(
        mut edges in prop::collection::vec(1u64..1_000_000, 1..8),
        bytes in 0u64..2_000_000,
    ) {
        edges.sort_unstable();
        edges.dedup();
        let b = SizeBins::from_edges(edges.clone());
        let i = b.index(bytes);
        // The bin's implied range actually contains `bytes`.
        let lo = if i == 0 { 0 } else { edges[i - 1] };
        let hi = edges.get(i).copied().unwrap_or(u64::MAX);
        prop_assert!(bytes >= lo && bytes < hi, "bytes {bytes} in bin {i} [{lo},{hi})");
    }

    #[test]
    fn short_long_split_is_binary(threshold in 1u64..10_000_000, bytes in 0u64..20_000_000) {
        let b = SizeBins::short_long(threshold);
        prop_assert_eq!(b.count(), 2);
        prop_assert_eq!(b.index(bytes), usize::from(bytes >= threshold));
    }
}
