#![warn(missing_docs)]

//! # simarmci — an instrumented ARMCI-like one-sided communication library
//!
//! Models the ARMCI (Aggregate Remote Memory Copy Interface) system the
//! paper instrumented: one-sided `Put`/`Get` operations over collectively
//! allocated global memory, in blocking and non-blocking (explicit-handle)
//! flavors, plus fences and a barrier.
//!
//! One-sided transfers map directly onto the fabric's RDMA operations — the
//! remote host is never involved in the data path, which is why the
//! non-blocking NAS MG variant reaches ~99 % maximum overlap in the paper's
//! Figure 19 while the blocking variant (initiation and completion inside
//! one library call — bound case 1) reports none.
//!
//! Instrumentation stamps: `XFER_BEGIN` when the RDMA work request is
//! posted, `XFER_END` when a poll observes its completion; both inside one
//! call for blocking ops, split across calls for non-blocking ones.
//!
//! A small internal message layer (eager packets) carries the collective
//! traffic (`malloc` exchange, barrier, small reductions), mirroring how
//! ARMCI applications lean on a helper message layer for setup and sync.
//!
//! ## Example
//!
//! ```
//! use overlap_core::RecorderOpts;
//! use simarmci::run_armci;
//! use simnet::NetConfig;
//!
//! let out = run_armci(2, NetConfig::default(), RecorderOpts::default(), |a| {
//!     let mem = a.malloc(1024);
//!     a.barrier();
//!     if a.rank() == 0 {
//!         a.put(&mem, 1, 0, &[7u8; 64]); // one-sided write
//!     }
//!     a.barrier();
//!     if a.rank() == 1 {
//!         assert_eq!(a.local_read(&mem, 0, 64), vec![7u8; 64]);
//!     }
//! }).unwrap();
//! assert_eq!(out.transfers.len(), 1);
//! ```

pub mod armci;
pub mod harness;

pub use armci::{Armci, GlobalMem, NbHandle};
pub use harness::{run_armci, ArmciRunOutcome};
