//! Figure-reproduction CLI.
//!
//! ```text
//! repro               # run every figure and ablation
//! repro fig05 fig18   # run selected harnesses
//! repro ablations     # run only the ablation studies
//! repro list          # list available harnesses
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let figures = bench::figures::all();
    let ablations = bench::ablations::all();

    if args.iter().any(|a| a == "list") {
        println!("figures:");
        for (id, _) in &figures {
            println!("  {id}");
        }
        println!("ablations:");
        for (id, _) in &ablations {
            println!("  {id}");
        }
        return;
    }

    let only_ablations = args.iter().any(|a| a == "ablations");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| *a != "ablations")
        .map(String::as_str)
        .collect();

    if !only_ablations {
        for (id, f) in &figures {
            if wanted.is_empty() || wanted.contains(id) {
                print!("{}", f().render());
                println!();
            }
        }
    }
    for (id, f) in &ablations {
        if (wanted.is_empty() && args.is_empty()) || only_ablations || wanted.contains(id) {
            print!("{}", f().render());
            println!();
        }
    }
}
