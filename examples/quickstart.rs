//! Quickstart: measure the overlap of a single non-blocking exchange.
//!
//! Two simulated ranks exchange 1 MiB messages while the sender computes.
//! The instrumentation framework (living *inside* the library) reports how
//! much of each transfer could/must have overlapped that computation.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use overlap_suite::prelude::*;

fn main() {
    // Sweep inserted computation from 0 to 2 ms and watch the bounds move.
    println!("compute_ms  snd_min%  snd_max%  wait_us");
    for compute_ms in [0u64, 1, 2] {
        let out = run_mpi(
            2,
            NetConfig::default(),               // 2006-era InfiniBand model
            MpiConfig::open_mpi_leave_pinned(), // direct RDMA-Read rendezvous
            RecorderOpts::default(),
            move |mpi| {
                let msg = vec![42u8; 1 << 20];
                for i in 0..20 {
                    if mpi.rank() == 0 {
                        let req = mpi.isend(1, i, &msg);
                        mpi.compute(ms(compute_ms)); // overlap window
                        mpi.wait(req);
                    } else {
                        mpi.recv(Src::Rank(0), TagSel::Is(i));
                    }
                }
            },
        )
        .expect("simulation failed");

        let sender = &out.reports[0];
        println!(
            "{:>10}  {:>8.1}  {:>8.1}  {:>7.1}",
            compute_ms,
            sender.total.min_pct(),
            sender.total.max_pct(),
            sender.calls["MPI_Wait"].avg() / 1e3,
        );
    }

    // Full per-process report for the last configuration:
    let out = run_mpi(
        2,
        NetConfig::default(),
        MpiConfig::open_mpi_leave_pinned(),
        RecorderOpts::default(),
        |mpi| {
            let msg = vec![42u8; 1 << 20];
            for i in 0..20 {
                if mpi.rank() == 0 {
                    let req = mpi.isend(1, i, &msg);
                    mpi.compute(ms(2));
                    mpi.wait(req);
                } else {
                    mpi.recv(Src::Rank(0), TagSel::Is(i));
                }
            }
        },
    )
    .unwrap();
    println!("\n{}", out.reports[0].render_text());

    // The simulator also knows the ground truth — something real hardware
    // could not tell the paper's authors:
    let truth = out.true_overlap(0);
    println!(
        "ground truth overlap for rank 0: {:.3} ms (bounds: [{:.3}, {:.3}] ms)",
        truth as f64 / 1e6,
        out.reports[0].total.min_overlap as f64 / 1e6,
        out.reports[0].total.max_overlap as f64 / 1e6,
    );
}
