//! The per-rank ARMCI endpoint.

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;
use overlap_core::{OverlapReport, Recorder, RecorderOpts, XferTimeTable};
use simcore::{Activity, Duration, RankCtx, Time};
use simnet::{Completion, NetConfig, Packet, RegionId, SharedWorld};

/// Internal message packet (setup / sync / tiny collectives).
const PT_MSG: u16 = 20;

/// Completion correlation kinds.
const WK_IGNORE: u64 = 0;
const WK_PUT: u64 = 1;
const WK_GET: u64 = 2;
const WK_RMW: u64 = 3;

fn pack(kind: u64, h: u64) -> u64 {
    (kind << 56) | h
}
fn unpack(user: u64) -> (u64, u64) {
    (user >> 56, user & ((1 << 56) - 1))
}

/// Handle to a non-blocking one-sided operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NbHandle(u64);

/// Collectively allocated global memory: one equally sized, registered
/// segment per rank (the result of `ARMCI_Malloc`).
#[derive(Debug, Clone)]
pub struct GlobalMem {
    regions: Vec<RegionId>,
    /// Per-rank segment size in bytes.
    pub seg_len: usize,
}

struct HandleState {
    done: bool,
    /// (xfer id, len) for the END stamp at completion.
    stamp: (u64, u64),
    /// Fetched data for gets.
    data: Option<Bytes>,
    is_put: bool,
}

/// The per-rank ARMCI library endpoint.
pub struct Armci<'a> {
    ctx: &'a mut RankCtx,
    world: SharedWorld,
    net: NetConfig,
    rec: Recorder,
    rank: usize,
    nranks: usize,
    handles: HashMap<u64, HandleState>,
    next_handle: u64,
    /// Implicit-handle puts not yet fenced.
    outstanding_puts: Vec<NbHandle>,
    /// Internal message layer receive buffer.
    msgs: VecDeque<(usize, u64, Bytes)>,
    coll_seq: u64,
}

impl<'a> Armci<'a> {
    /// Initialize ARMCI on this rank and synchronize.
    pub fn init(
        ctx: &'a mut RankCtx,
        world: SharedWorld,
        table: XferTimeTable,
        rec_opts: RecorderOpts,
    ) -> Self {
        let rank = ctx.rank();
        let nranks = ctx.nranks();
        let handle = ctx.handle();
        let clock = move || handle.now();
        let rec = Recorder::new(rank, Box::new(clock), table, rec_opts);
        let net = world.lock().cfg().clone();
        let mut a = Armci {
            ctx,
            world,
            net,
            rec,
            rank,
            nranks,
            handles: HashMap::new(),
            next_handle: 0,
            outstanding_puts: Vec::new(),
            msgs: VecDeque::new(),
            coll_seq: 0,
        };
        a.rec.call_enter("ARMCI_Init");
        a.barrier_inner();
        a.rec.call_exit();
        a
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Current virtual time, ns.
    pub fn now(&self) -> Time {
        self.ctx.now()
    }

    /// User computation for `d` ns.
    pub fn compute(&mut self, d: Duration) {
        self.ctx.compute(d);
    }

    /// Begin a monitored section.
    pub fn section_begin(&mut self, name: &'static str) {
        self.rec.section_begin(name);
    }

    /// End the innermost monitored section.
    pub fn section_end(&mut self) {
        self.rec.section_end();
    }

    /// Shut down and emit the per-process overlap report.
    pub fn finalize(self) -> OverlapReport {
        self.finalize_traced().0
    }

    /// [`Armci::finalize`], additionally returning the time-resolved trace
    /// when `RecorderOpts::trace` was set on init (`None` otherwise).
    pub fn finalize_traced(mut self) -> (OverlapReport, Option<overlap_core::trace::RankTrace>) {
        self.rec.call_enter("ARMCI_Finalize");
        self.barrier_inner();
        self.rec.call_exit();
        self.rec.finish_traced()
    }

    /// Collectively allocate `seg_len` bytes of global memory on every rank
    /// (`ARMCI_Malloc`): registers a local segment and exchanges segment
    /// addresses.
    pub fn malloc(&mut self, seg_len: usize) -> GlobalMem {
        self.rec.call_enter("ARMCI_Malloc");
        self.lib_busy(self.net.reg_cost(seg_len));
        let my_region = {
            let mut w = self.world.lock();
            w.register(self.rank, vec![0u8; seg_len])
        };
        // Exchange region ids (setup metadata, not data transfers).
        let tag = self.alloc_coll_tag();
        for dst in 0..self.nranks {
            if dst != self.rank {
                self.msg_send(dst, tag, &my_region.0.to_le_bytes());
            }
        }
        let mut regions = vec![RegionId(0); self.nranks];
        regions[self.rank] = my_region;
        for _ in 0..self.nranks - 1 {
            let (src, _, data) = self.msg_recv_tag(tag);
            regions[src] = RegionId(u64::from_le_bytes(data[..8].try_into().unwrap()));
        }
        self.rec.call_exit();
        GlobalMem { regions, seg_len }
    }

    /// Direct access to this rank's own segment (local load/store).
    pub fn local_read(&mut self, mem: &GlobalMem, off: usize, len: usize) -> Vec<u8> {
        let w = self.world.lock();
        w.mem(self.rank)
            .get(mem.regions[self.rank])
            .expect("segment")[off..off + len]
            .to_vec()
    }

    /// Write into this rank's own segment.
    pub fn local_write(&mut self, mem: &GlobalMem, off: usize, data: &[u8]) {
        let mut w = self.world.lock();
        let seg = w
            .mem_mut(self.rank)
            .get_mut(mem.regions[self.rank])
            .expect("segment");
        seg[off..off + data.len()].copy_from_slice(data);
    }

    /// Non-blocking one-sided put: RDMA Write `data` into `dst`'s segment at
    /// `off`. Returns a handle for [`Armci::wait`].
    pub fn nb_put(&mut self, mem: &GlobalMem, dst: usize, off: usize, data: &[u8]) -> NbHandle {
        self.rec.call_enter("ARMCI_NbPut");
        let h = self.put_inner(mem, dst, off, data);
        self.rec.call_exit();
        h
    }

    /// Blocking one-sided put (initiate + wait inside one call).
    pub fn put(&mut self, mem: &GlobalMem, dst: usize, off: usize, data: &[u8]) {
        self.rec.call_enter("ARMCI_Put");
        let h = self.put_inner(mem, dst, off, data);
        self.wait_inner(h);
        self.rec.call_exit();
    }

    /// Non-blocking one-sided get: RDMA Read `len` bytes from `src`'s
    /// segment at `off`. Data is returned by [`Armci::wait`].
    pub fn nb_get(&mut self, mem: &GlobalMem, src: usize, off: usize, len: usize) -> NbHandle {
        self.rec.call_enter("ARMCI_NbGet");
        let h = self.get_inner(mem, src, off, len);
        self.rec.call_exit();
        h
    }

    /// Blocking one-sided get.
    pub fn get(&mut self, mem: &GlobalMem, src: usize, off: usize, len: usize) -> Bytes {
        self.rec.call_enter("ARMCI_Get");
        let h = self.get_inner(mem, src, off, len);
        let data = self.wait_inner(h);
        self.rec.call_exit();
        data.expect("get returns data")
    }

    /// One-sided accumulate: elementwise `f64` addition into `dst`'s
    /// segment (`ARMCI_Acc` with `ARMCI_ACC_DBL`). Blocking.
    pub fn acc(&mut self, mem: &GlobalMem, dst: usize, off: usize, vals: &[f64]) {
        self.rec.call_enter("ARMCI_Acc");
        let h = self.acc_inner(mem, dst, off, vals);
        self.wait_inner(h);
        self.rec.call_exit();
    }

    /// Non-blocking accumulate.
    pub fn nb_acc(&mut self, mem: &GlobalMem, dst: usize, off: usize, vals: &[f64]) -> NbHandle {
        self.rec.call_enter("ARMCI_NbAcc");
        let h = self.acc_inner(mem, dst, off, vals);
        self.rec.call_exit();
        h
    }

    /// Atomic fetch-and-add on a `u64` in `dst`'s segment (`ARMCI_Rmw`
    /// with `ARMCI_FETCH_AND_ADD_LONG`): adds `delta` and returns the
    /// previous value. Blocking; the update is performed at the target NIC
    /// without host involvement.
    pub fn rmw_fetch_add(&mut self, mem: &GlobalMem, dst: usize, off: usize, delta: u64) -> u64 {
        self.rec.call_enter("ARMCI_Rmw");
        self.progress();
        assert!(off + 8 <= mem.seg_len, "rmw out of segment bounds");
        assert!(off.is_multiple_of(8), "rmw offset must be 8-aligned");
        self.lib_busy(self.net.post_cost);
        let h = self.alloc_handle();
        {
            let mut w = self.world.lock();
            w.post_rdma_fetch_add(
                self.rank,
                dst,
                mem.regions[dst],
                off,
                delta,
                pack(WK_RMW, h),
            );
        }
        self.handles.insert(
            h,
            HandleState {
                done: false,
                stamp: (u64::MAX, 0),
                data: None,
                is_put: false,
            },
        );
        let data = self
            .wait_inner(NbHandle(h))
            .expect("rmw returns the old value");
        self.rec.call_exit();
        u64::from_le_bytes(data[..8].try_into().unwrap())
    }

    /// Wait for one non-blocking operation; returns fetched data for gets.
    pub fn wait(&mut self, h: NbHandle) -> Option<Bytes> {
        self.rec.call_enter("ARMCI_Wait");
        let d = self.wait_inner(h);
        self.rec.call_exit();
        d
    }

    /// Complete every outstanding put to every target (`ARMCI_AllFence`).
    pub fn all_fence(&mut self) {
        self.rec.call_enter("ARMCI_AllFence");
        let pending = std::mem::take(&mut self.outstanding_puts);
        for h in pending {
            if self.handles.contains_key(&h.0) {
                self.wait_inner(h);
            }
        }
        self.rec.call_exit();
    }

    /// Global synchronization (`armci_msg_barrier`).
    pub fn barrier(&mut self) {
        self.rec.call_enter("ARMCI_Barrier");
        self.barrier_inner();
        self.rec.call_exit();
    }

    /// Small global sum over the message layer (MG's norm reductions).
    pub fn allreduce_sum(&mut self, vals: &[f64]) -> Vec<f64> {
        self.rec.call_enter("armci_msg_dgop");
        let n = self.nranks;
        let me = self.rank;
        let mut acc = vals.to_vec();
        if n > 1 {
            let tag = self.alloc_coll_tag();
            // Binomial reduce to 0.
            let mut mask = 1usize;
            while mask < n {
                if me & mask == 0 {
                    let src = me | mask;
                    if src < n {
                        let (_, _, data) = self.msg_recv_tag(tag);
                        let other: Vec<f64> = data
                            .chunks_exact(8)
                            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                            .collect();
                        acc.iter_mut().zip(&other).for_each(|(a, b)| *a += b);
                    }
                } else {
                    let dst = me & !mask;
                    let bytes: Vec<u8> = acc.iter().flat_map(|x| x.to_le_bytes()).collect();
                    self.msg_send(dst, tag, &bytes);
                    break;
                }
                mask <<= 1;
            }
            // Binomial bcast from 0.
            let tag2 = self.alloc_coll_tag();
            let mut mask = 1usize;
            while mask < n {
                if me & mask != 0 {
                    let (_, _, data) = self.msg_recv_tag(tag2);
                    acc = data
                        .chunks_exact(8)
                        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                        .collect();
                    break;
                }
                mask <<= 1;
            }
            mask >>= 1;
            while mask > 0 {
                if me + mask < n {
                    let bytes: Vec<u8> = acc.iter().flat_map(|x| x.to_le_bytes()).collect();
                    self.msg_send(me + mask, tag2, &bytes);
                }
                mask >>= 1;
            }
        }
        self.rec.call_exit();
        acc
    }

    // ---- internals --------------------------------------------------------

    fn lib_busy(&mut self, d: Duration) {
        self.ctx.busy(d, Activity::Library);
    }

    fn alloc_handle(&mut self) -> u64 {
        let h = self.next_handle;
        self.next_handle += 1;
        h
    }

    fn alloc_coll_tag(&mut self) -> u64 {
        let t = self.coll_seq;
        self.coll_seq += 1;
        t
    }

    fn put_inner(&mut self, mem: &GlobalMem, dst: usize, off: usize, data: &[u8]) -> NbHandle {
        self.progress();
        assert!(off + data.len() <= mem.seg_len, "put out of segment bounds");
        self.lib_busy(self.net.post_cost);
        let h = self.alloc_handle();
        let xfer;
        {
            let mut w = self.world.lock();
            let x = w.alloc_xfer_id();
            xfer = x.0;
            w.post_rdma_write(
                self.rank,
                dst,
                mem.regions[dst],
                off,
                Bytes::copy_from_slice(data),
                pack(WK_PUT, h),
                None,
                Some(x),
            );
        }
        self.rec.xfer_begin(xfer, data.len() as u64);
        self.handles.insert(
            h,
            HandleState {
                done: false,
                stamp: (xfer, data.len() as u64),
                data: None,
                is_put: true,
            },
        );
        self.outstanding_puts.push(NbHandle(h));
        NbHandle(h)
    }

    fn acc_inner(&mut self, mem: &GlobalMem, dst: usize, off: usize, vals: &[f64]) -> NbHandle {
        self.progress();
        assert!(
            off + vals.len() * 8 <= mem.seg_len,
            "acc out of segment bounds"
        );
        self.lib_busy(self.net.post_cost);
        let h = self.alloc_handle();
        let xfer;
        {
            let mut w = self.world.lock();
            let x = w.alloc_xfer_id();
            xfer = x.0;
            w.post_rdma_acc_f64(
                self.rank,
                dst,
                mem.regions[dst],
                off,
                vals.to_vec(),
                pack(WK_PUT, h),
                Some(x),
            );
        }
        self.rec.xfer_begin(xfer, (vals.len() * 8) as u64);
        self.handles.insert(
            h,
            HandleState {
                done: false,
                stamp: (xfer, (vals.len() * 8) as u64),
                data: None,
                is_put: true,
            },
        );
        self.outstanding_puts.push(NbHandle(h));
        NbHandle(h)
    }

    fn get_inner(&mut self, mem: &GlobalMem, src: usize, off: usize, len: usize) -> NbHandle {
        self.progress();
        assert!(off + len <= mem.seg_len, "get out of segment bounds");
        self.lib_busy(self.net.post_cost);
        let h = self.alloc_handle();
        let xfer;
        {
            let mut w = self.world.lock();
            let x = w.alloc_xfer_id();
            xfer = x.0;
            w.post_rdma_read(
                self.rank,
                src,
                mem.regions[src],
                off,
                len,
                pack(WK_GET, h),
                None,
                Some(x),
            );
        }
        self.rec.xfer_begin(xfer, len as u64);
        self.handles.insert(
            h,
            HandleState {
                done: false,
                stamp: (xfer, len as u64),
                data: None,
                is_put: false,
            },
        );
        NbHandle(h)
    }

    fn wait_inner(&mut self, h: NbHandle) -> Option<Bytes> {
        loop {
            self.progress();
            if self.handles.get(&h.0).expect("unknown handle").done {
                let st = self.handles.remove(&h.0).unwrap();
                if st.is_put {
                    self.outstanding_puts.retain(|&p| p != h);
                }
                return st.data;
            }
            self.wait_for_event();
        }
    }

    fn wait_for_event(&mut self) {
        let has = self.world.lock().has_host_events(self.rank);
        if !has {
            self.ctx.park();
        }
    }

    fn progress(&mut self) {
        self.lib_busy(self.net.poll_cost);
        loop {
            enum Item {
                C(Completion),
                P(Packet),
            }
            let item = {
                let mut w = self.world.lock();
                if let Some(c) = w.poll_cq(self.rank) {
                    Some(Item::C(c))
                } else {
                    w.poll_rx(self.rank).map(Item::P)
                }
            };
            match item {
                None => break,
                Some(Item::C(c)) => {
                    let (kind, h) = unpack(c.user);
                    match kind {
                        WK_IGNORE => {}
                        WK_PUT | WK_GET => {
                            let st = self
                                .handles
                                .get_mut(&h)
                                .expect("completion for unknown handle");
                            st.done = true;
                            st.data = c.data;
                            let (xfer, len) = st.stamp;
                            self.rec.xfer_end(xfer, len);
                        }
                        WK_RMW => {
                            // Synchronization primitive, not a data
                            // transfer: no overlap stamps.
                            let st = self
                                .handles
                                .get_mut(&h)
                                .expect("completion for unknown handle");
                            st.done = true;
                            st.data = c.data;
                        }
                        other => panic!("unknown ARMCI completion kind {other}"),
                    }
                }
                Some(Item::P(p)) => {
                    assert_eq!(p.ty, PT_MSG, "unexpected packet type {}", p.ty);
                    self.msgs
                        .push_back((p.src, p.h[0], p.data.unwrap_or_else(Bytes::new)));
                }
            }
        }
    }

    // ---- internal message layer (setup + sync, not data transfers) -------

    fn msg_send(&mut self, dst: usize, tag: u64, data: &[u8]) {
        self.progress();
        self.lib_busy(self.net.post_cost);
        let mut w = self.world.lock();
        let pkt = Packet::with_data(
            self.rank,
            data.len() + self.net.ctrl_packet_bytes,
            PT_MSG,
            [tag, 0, 0, 0, 0, 0],
            Bytes::copy_from_slice(data),
        );
        w.post_send(self.rank, dst, pkt, pack(WK_IGNORE, 0), None);
    }

    fn msg_recv_tag(&mut self, tag: u64) -> (usize, u64, Bytes) {
        loop {
            self.progress();
            if let Some(pos) = self.msgs.iter().position(|&(_, t, _)| t == tag) {
                return self.msgs.remove(pos).unwrap();
            }
            self.wait_for_event();
        }
    }

    fn barrier_inner(&mut self) {
        let n = self.nranks;
        if n == 1 {
            return;
        }
        let base = self.alloc_coll_tag() | (1 << 48);
        let mut dist = 1;
        let mut round = 0u64;
        while dist < n {
            let to = (self.rank + dist) % n;
            let from = (self.rank + n - dist) % n;
            self.msg_send(to, base + (round << 32), &[]);
            loop {
                self.progress();
                if let Some(pos) = self
                    .msgs
                    .iter()
                    .position(|&(s, t, _)| s == from && t == base + (round << 32))
                {
                    self.msgs.remove(pos);
                    break;
                }
                self.wait_for_event();
            }
            dist *= 2;
            round += 1;
        }
    }
}
