//! Host-visible packets.
//!
//! A [`Packet`] is what a two-sided *send* operation deposits in the target
//! NIC's receive queue. The communication libraries built on `simnet` define
//! their own packet types (eager data, RTS, CTS, FIN, ...) via the `ty`
//! discriminator and the four header words; bulk payload rides in `data`.

use bytes::Bytes;

use crate::nic::CausalEdge;

/// A packet delivered to a node's receive queue, awaiting a host poll.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Originating node.
    pub src: usize,
    /// Total wire size (headers + payload), used only for cost accounting.
    pub wire_bytes: usize,
    /// Library-defined packet type discriminator.
    pub ty: u16,
    /// Library-defined header words (tags, sequence numbers, region ids...).
    pub h: [u64; 6],
    /// Optional inline payload (eager protocol data).
    pub data: Option<Bytes>,
    /// Rides a protected virtual channel: exempt from fault injection
    /// (used for reliability-layer ACK/NACK traffic, which must not itself
    /// require acknowledgment or the protocol could never terminate).
    pub protected: bool,
    /// Causal breakdown of the packet's journey, stamped by the fabric at
    /// delivery (zeroed until then). Lets *receivers* learn how much of a
    /// message's flight time was fabric contention.
    pub edge: CausalEdge,
}

/// Reserved packet-type range for NIC-offload traffic. Packets whose `ty`
/// is at or above [`hw::TY_BASE`] are consumed by the *receiving NIC's*
/// hardware tag-matching engine at delivery time — they never reach the
/// host receive queue. Libraries must keep their own `ty` values below the
/// base.
pub mod hw {
    /// First reserved type value.
    pub const TY_BASE: u16 = 0xFF00;
    /// NIC-matched eager data.
    /// `h = [tag, xfer word, has_ack, ack user, 0, 0]`, payload in `data`.
    pub const EAGER: u16 = 0xFF01;
    /// NIC-matched rendezvous request-to-send.
    /// `h = [tag, len, region, xfer, fin meta id, 0]`.
    pub const RTS: u16 = 0xFF02;
}

impl Packet {
    /// A control packet with no payload.
    pub fn control(src: usize, wire_bytes: usize, ty: u16, h: [u64; 6]) -> Self {
        Packet {
            src,
            wire_bytes,
            ty,
            h,
            data: None,
            protected: false,
            edge: CausalEdge::default(),
        }
    }

    /// A packet carrying an inline data payload.
    pub fn with_data(src: usize, wire_bytes: usize, ty: u16, h: [u64; 6], data: Bytes) -> Self {
        Packet {
            src,
            wire_bytes,
            ty,
            h,
            data: Some(data),
            protected: false,
            edge: CausalEdge::default(),
        }
    }

    /// Mark the packet as riding the protected (fault-exempt) channel.
    pub fn protect(mut self) -> Self {
        self.protected = true;
        self
    }

    /// Payload length in bytes (0 if none).
    pub fn payload_len(&self) -> usize {
        self.data.as_ref().map_or(0, |d| d.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_packets_have_no_payload() {
        let p = Packet::control(3, 64, 7, [1, 2, 3, 4, 5, 6]);
        assert_eq!(p.payload_len(), 0);
        assert_eq!(p.src, 3);
        assert_eq!(p.h[2], 3);
    }

    #[test]
    fn data_packets_report_payload_len() {
        let p = Packet::with_data(0, 1088, 1, [0; 6], Bytes::from(vec![9u8; 1024]));
        assert_eq!(p.payload_len(), 1024);
    }
}
