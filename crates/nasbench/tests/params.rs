//! Kernel parameter and geometry unit tests (class tables, decompositions,
//! variant wiring).

use nasbench::bt::BtParams;
use nasbench::cg::CgParams;
use nasbench::ep::EpParams;
use nasbench::ft::FtParams;
use nasbench::is::IsParams;
use nasbench::lu::LuParams;
use nasbench::mg::MgParams;
use nasbench::runner::NasBenchmark;
use nasbench::sp::SpParams;
use nasbench::Class;
use simmpi::RndvMode;

#[test]
fn sp_class_geometry_matches_npb() {
    assert_eq!(SpParams::original(Class::S).n(), 12);
    assert_eq!(SpParams::original(Class::W).n(), 36);
    assert_eq!(SpParams::original(Class::A).n(), 64);
    assert_eq!(SpParams::original(Class::B).n(), 102);
}

#[test]
fn sp_variants_differ_only_in_probes() {
    let o = SpParams::original(Class::A);
    let m = SpParams::modified(Class::A);
    assert_eq!(o.iprobes, 0);
    assert!(m.iprobes > 0);
    assert_eq!(o.n(), m.n());
    assert_eq!(o.iterations, m.iterations);
}

#[test]
fn bt_class_geometry_matches_npb() {
    assert_eq!(BtParams::new(Class::A).n(), 64);
    assert_eq!(BtParams::new(Class::B).n(), 102);
}

#[test]
fn cg_sizes_match_npb() {
    let a = CgParams::new(Class::A);
    assert_eq!(a.na(), 14000);
    assert_eq!(a.nonzer(), 11);
    let b = CgParams::new(Class::B);
    assert_eq!(b.na(), 75000);
    assert_eq!(b.nonzer(), 13);
}

#[test]
fn lu_class_geometry_matches_npb() {
    assert_eq!(LuParams::new(Class::W).n(), 33);
    assert_eq!(LuParams::new(Class::A).n(), 64);
}

#[test]
fn ft_dims_and_scaling() {
    let a = FtParams::new(Class::A);
    assert_eq!(a.dims(), (256, 256, 128));
    assert_eq!(a.points(), 256 * 256 * 128);
    let b = FtParams::new(Class::B);
    assert_eq!(b.dims(), (512, 256, 256));
    // Payload scaling preserves the class ordering of message sizes.
    let block = |p: &FtParams, np: usize| (p.points() * 16) / (np * np * p.vol_scale);
    assert!(block(&b, 4) > block(&a, 4));
}

#[test]
fn mg_levels_reach_coarse_grid() {
    let a = MgParams::new(Class::A);
    assert_eq!(a.n(), 256);
    assert_eq!(a.levels(), 7); // 256 -> 4 in factor-of-two steps
    let s = MgParams::new(Class::S);
    assert_eq!(s.n(), 32);
    assert_eq!(s.levels(), 4);
}

#[test]
fn ep_and_is_key_counts() {
    assert_eq!(EpParams::new(Class::A).m(), 28);
    assert_eq!(IsParams::new(Class::A).m(), 23);
    assert_eq!(IsParams::new(Class::B).m(), 25);
}

#[test]
fn paper_environments_match_section_4() {
    // BT and CG ran under Open MPI's pipelined mode; LU, FT, SP under
    // MVAPICH2 (direct read).
    assert_eq!(
        NasBenchmark::Bt.paper_env().rndv_mode,
        RndvMode::PipelinedWrite
    );
    assert_eq!(
        NasBenchmark::Cg.paper_env().rndv_mode,
        RndvMode::PipelinedWrite
    );
    for b in [
        NasBenchmark::Lu,
        NasBenchmark::Ft,
        NasBenchmark::Sp,
        NasBenchmark::SpModified,
    ] {
        assert_eq!(b.paper_env().rndv_mode, RndvMode::DirectRead);
    }
}

#[test]
fn benchmark_names_are_unique() {
    let all = [
        NasBenchmark::Bt,
        NasBenchmark::Cg,
        NasBenchmark::Lu,
        NasBenchmark::Ft,
        NasBenchmark::Sp,
        NasBenchmark::SpModified,
        NasBenchmark::MgMpi,
        NasBenchmark::MgArmciBlocking,
        NasBenchmark::MgArmciNonBlocking,
        NasBenchmark::Ep,
        NasBenchmark::Is,
    ];
    let mut names: Vec<_> = all.iter().map(|b| b.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), all.len());
}
