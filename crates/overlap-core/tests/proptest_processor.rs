//! Property tests for the bound processor over randomized, well-formed
//! event streams.

use proptest::prelude::*;

use overlap_core::{ManualClock, OverlapReport, Recorder, RecorderOpts, SizeBins, XferTimeTable};

/// One application-visible action in a generated program.
#[derive(Debug, Clone)]
enum Action {
    /// Enter a call, post a transfer begin, advance, exit.
    BeginXfer { bytes: u64, in_call_ns: u64 },
    /// User computation.
    Compute { ns: u64 },
    /// Enter a call, end the oldest pending transfer (or an end-only one),
    /// advance, exit.
    EndXfer {
        end_only_bytes: Option<u64>,
        in_call_ns: u64,
    },
    /// Begin/end a section around nothing in particular.
    Section,
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u64..1_000_000, 0u64..5_000)
            .prop_map(|(bytes, in_call_ns)| Action::BeginXfer { bytes, in_call_ns }),
        (0u64..2_000_000).prop_map(|ns| Action::Compute { ns }),
        (prop::option::of(1u64..1_000_000), 0u64..5_000).prop_map(
            |(end_only_bytes, in_call_ns)| Action::EndXfer {
                end_only_bytes,
                in_call_ns
            }
        ),
        Just(Action::Section),
    ]
}

/// Drive a recorder through a program; returns the report.
fn execute(actions: &[Action], queue_capacity: usize) -> OverlapReport {
    let clock = ManualClock::new();
    let table = XferTimeTable::sample(1, 2 << 20, |b| 5_000 + b);
    let mut rec = Recorder::new(
        7,
        Box::new(clock.clone()),
        table,
        RecorderOpts {
            queue_capacity,
            bins: SizeBins::default(),
            enabled: true,
            trace: false,
        },
    );
    let mut pending: Vec<(u64, u64)> = Vec::new(); // (id, bytes)
    let mut next_id = 0u64;
    let mut section_depth = 0u32;
    for a in actions {
        match a {
            Action::BeginXfer { bytes, in_call_ns } => {
                rec.call_enter("post");
                rec.xfer_begin(next_id, *bytes);
                pending.push((next_id, *bytes));
                next_id += 1;
                clock.advance(*in_call_ns);
                rec.call_exit();
            }
            Action::Compute { ns } => clock.advance(*ns),
            Action::EndXfer {
                end_only_bytes,
                in_call_ns,
            } => {
                rec.call_enter("complete");
                clock.advance(*in_call_ns);
                if let Some((id, bytes)) = pending.pop() {
                    rec.xfer_end(id, bytes);
                } else if let Some(bytes) = end_only_bytes {
                    rec.xfer_end(1_000_000 + next_id, *bytes);
                    next_id += 1;
                }
                rec.call_exit();
            }
            Action::Section => {
                if section_depth < 3 {
                    rec.section_begin("sec");
                    section_depth += 1;
                } else {
                    rec.section_end();
                    section_depth -= 1;
                }
            }
        }
    }
    while section_depth > 0 {
        rec.section_end();
        section_depth -= 1;
    }
    rec.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aggregate_invariants_hold(actions in prop::collection::vec(arb_action(), 0..120)) {
        let r = execute(&actions, 4096);
        prop_assert!(r.total.min_overlap <= r.total.max_overlap);
        prop_assert!(r.total.max_overlap <= r.total.data_transfer_time);
        prop_assert_eq!(r.user_compute_time + r.comm_call_time, r.elapsed);
        // Bin decomposition sums to the total.
        let bin_sum: u64 = r.by_bin.iter().map(|b| b.data_transfer_time).sum();
        prop_assert_eq!(bin_sum, r.total.data_transfer_time);
        let bin_n: u64 = r.by_bin.iter().map(|b| b.transfers).sum();
        prop_assert_eq!(bin_n, r.total.transfers);
        let case_n = r.total.case_same_call + r.total.case_split_calls + r.total.case_single_stamp;
        prop_assert_eq!(case_n, r.total.transfers);
    }

    #[test]
    fn queue_capacity_never_changes_results(
        actions in prop::collection::vec(arb_action(), 0..120),
        cap in 2usize..64,
    ) {
        let small = execute(&actions, cap);
        let large = execute(&actions, 1 << 16);
        prop_assert_eq!(small.total, large.total);
        prop_assert_eq!(small.by_bin, large.by_bin);
        prop_assert_eq!(small.user_compute_time, large.user_compute_time);
        prop_assert_eq!(small.comm_call_time, large.comm_call_time);
    }

    #[test]
    fn section_totals_bounded_by_global(actions in prop::collection::vec(arb_action(), 0..120)) {
        let r = execute(&actions, 4096);
        for sec in r.sections.values() {
            prop_assert!(sec.total.transfers <= r.total.transfers);
            prop_assert!(sec.total.data_transfer_time <= r.total.data_transfer_time);
            prop_assert!(sec.compute_time <= r.user_compute_time);
            prop_assert!(sec.call_time <= r.comm_call_time);
        }
    }

    #[test]
    fn table_lookup_is_monotonic(points in prop::collection::vec((1u64..10_000_000, 1u64..10_000_000), 1..20)) {
        // Sort-by-size with increasing times → lookup must be monotonic.
        let mut pts = points;
        pts.sort_unstable();
        pts.dedup_by_key(|p| p.0);
        let mut t = 0;
        for p in pts.iter_mut() {
            t += p.1;
            p.1 = t;
        }
        let table = XferTimeTable::from_points(pts.clone());
        let mut prev = 0;
        for bytes in (0..200).map(|i| i * 60_000) {
            let v = table.lookup(bytes);
            prop_assert!(v >= prev, "lookup({bytes}) = {v} < {prev}");
            prev = v;
        }
    }
}
