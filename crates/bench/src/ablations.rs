//! Ablation studies for the design choices called out in `DESIGN.md` §6.

use overlap_core::{RecorderOpts, SizeBins, XferTimeTable};
use simmpi::{default_xfer_table, run_mpi, run_mpi_with, MpiConfig, Src, TagSel};
use simnet::NetConfig;

use crate::{pct, Series};

/// Eager-threshold sweep: the *receiver-side* overlap cliff for a fixed
/// message size. Below the threshold the message arrives eagerly and the
/// receiver's bound allows full overlap (case 3); above it, the rendezvous
/// is only noticed inside the wait and overlap collapses to zero (case 1) —
/// the protocol-boundary effect behind the paper's short-vs-long contrasts.
pub fn ablation_eager_threshold() -> Series {
    let bytes = 32 << 10;
    let mut rows = Vec::new();
    for threshold in [4 << 10, 16 << 10, 32 << 10, 64 << 10] {
        let cfg = MpiConfig {
            eager_threshold: threshold,
            ..MpiConfig::open_mpi_leave_pinned()
        };
        let out = run_mpi(
            2,
            crate::topo::apply(NetConfig::default()),
            crate::progress::apply(cfg),
            RecorderOpts::default(),
            move |mpi| {
                for i in 0..50 {
                    if mpi.rank() == 0 {
                        mpi.send(1, i, &vec![1u8; bytes]);
                    } else {
                        let r = mpi.irecv(Src::Rank(0), TagSel::Is(i));
                        mpi.compute(200_000);
                        mpi.wait(r);
                    }
                    mpi.barrier();
                }
            },
        )
        .unwrap_or_else(|e| panic!("{}", e.one_line()));
        let r = &out.reports[1];
        rows.push(vec![
            (threshold >> 10).to_string(),
            pct(r.total.min_pct()),
            pct(r.total.max_pct()),
            format!("{:.1}", r.calls["MPI_Wait"].avg() / 1e3),
        ]);
    }
    Series {
        id: "ablation-eager",
        title: "Receiver overlap of a 32 KB message vs eager threshold".to_string(),
        columns: ["threshold_KB", "rcv_min%", "rcv_max%", "wait_us"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

/// Fragment-size sweep for the pipelined scheme: the overlappable share is
/// exactly the first fragment's fraction of the message.
pub fn ablation_fragment_size() -> Series {
    let bytes = 1 << 20;
    let mut rows = Vec::new();
    for frag in [32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10] {
        let cfg = MpiConfig {
            fragment_size: frag,
            ..MpiConfig::open_mpi_pipelined()
        };
        let out = run_mpi(
            2,
            crate::topo::apply(NetConfig::default()),
            crate::progress::apply(cfg),
            RecorderOpts::default(),
            move |mpi| {
                for i in 0..20 {
                    if mpi.rank() == 0 {
                        let r = mpi.isend(1, i, &vec![1u8; bytes]);
                        mpi.compute(2_000_000);
                        mpi.wait(r);
                    } else {
                        mpi.recv(Src::Rank(0), TagSel::Is(i));
                    }
                    mpi.barrier();
                }
            },
        )
        .unwrap_or_else(|e| panic!("{}", e.one_line()));
        rows.push(vec![
            (frag >> 10).to_string(),
            pct(out.reports[0].total.max_pct()),
            pct(100.0 * frag as f64 / bytes as f64),
        ]);
    }
    Series {
        id: "ablation-frag",
        title: "Pipelined sender max overlap vs fragment size (1 MB message)".to_string(),
        columns: ["frag_KB", "snd_max%", "first_frag_share%"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

/// Probe-frequency sweep (the SP tuning knob): receiver overlap vs number of
/// `MPI_Iprobe` calls inserted into the computation region.
pub fn ablation_iprobe_count() -> Series {
    let mut rows = Vec::new();
    for probes in [0usize, 1, 2, 4, 8, 16] {
        let out = run_mpi(
            2,
            crate::topo::apply(NetConfig::default()),
            crate::progress::apply(MpiConfig::mvapich2()),
            RecorderOpts::default(),
            move |mpi| {
                for i in 0..20 {
                    if mpi.rank() == 0 {
                        mpi.send(1, i, &vec![1u8; 1 << 20]);
                    } else {
                        let r = mpi.irecv(Src::Rank(0), TagSel::Is(i));
                        let chunk = 1_500_000 / (probes as u64 + 1);
                        for _ in 0..probes {
                            mpi.compute(chunk);
                            mpi.iprobe(Src::Any, TagSel::Any);
                        }
                        mpi.compute(chunk);
                        mpi.wait(r);
                    }
                    mpi.barrier();
                }
            },
        )
        .unwrap_or_else(|e| panic!("{}", e.one_line()));
        let r = &out.reports[1];
        rows.push(vec![
            probes.to_string(),
            pct(r.total.min_pct()),
            pct(r.total.max_pct()),
            format!("{:.1}", r.calls["MPI_Wait"].avg() / 1e3),
        ]);
    }
    Series {
        id: "ablation-iprobe",
        title: "Receiver overlap vs inserted Iprobe count (1 MB direct RDMA)".to_string(),
        columns: ["iprobes", "rcv_min%", "rcv_max%", "wait_us"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

/// Transfer-table resolution: bound tightness (max−min gap) against ground
/// truth as the a-priori table gets coarser.
pub fn ablation_table_resolution() -> Series {
    let net = crate::topo::apply(NetConfig::default());
    let dense = default_xfer_table(&net);
    let sparse = XferTimeTable::from_points(vec![
        (1, net.transfer_time(1)),
        (1 << 20, net.transfer_time(1 << 20)),
    ]);
    let constant = XferTimeTable::from_points(vec![(1, net.transfer_time(64 << 10))]);
    let mut rows = Vec::new();
    for (name, table) in [
        ("dense", dense),
        ("two-point", sparse),
        ("constant", constant),
    ] {
        let out = run_mpi_with(
            2,
            net.clone(),
            crate::progress::apply(MpiConfig::open_mpi_leave_pinned()),
            RecorderOpts::default(),
            table,
            simcore::SimOpts::default(),
            move |mpi| {
                let mut shared = 1u64;
                for i in 0..30 {
                    let bytes = [4 << 10, 64 << 10, 512 << 10][(shared % 3) as usize];
                    shared = shared.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if mpi.rank() == 0 {
                        let r = mpi.isend(1, i, &vec![1u8; bytes]);
                        mpi.compute(800_000);
                        mpi.wait(r);
                    } else {
                        let r = mpi.irecv(Src::Rank(0), TagSel::Is(i));
                        mpi.compute(400_000);
                        mpi.wait(r);
                        mpi.iprobe(Src::Any, TagSel::Any);
                    }
                    mpi.barrier();
                }
            },
        )
        .unwrap_or_else(|e| panic!("{}", e.one_line()));
        let r = &out.reports[0].total;
        let truth = out.true_overlap(0);
        rows.push(vec![
            name.to_string(),
            pct(r.min_pct()),
            pct(r.max_pct()),
            format!("{:.1}", (r.max_overlap - r.min_overlap) as f64 / 1e6),
            format!("{:.1}", truth as f64 / 1e6),
        ]);
    }
    Series {
        id: "ablation-table",
        title: "Bound tightness vs a-priori table resolution".to_string(),
        columns: ["table", "min%", "max%", "gap_ms", "true_ms"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

/// Recorder queue-capacity sweep: flush count vs identical aggregates.
pub fn ablation_queue_capacity() -> Series {
    let mut rows = Vec::new();
    for cap in [16usize, 256, 4096, 65536] {
        let rec = RecorderOpts {
            queue_capacity: cap,
            bins: SizeBins::default(),
            enabled: true,
            trace: false,
        };
        let out = run_mpi(
            2,
            crate::topo::apply(NetConfig::default()),
            crate::progress::apply(MpiConfig::default()),
            rec,
            |mpi| {
                for i in 0..200 {
                    if mpi.rank() == 0 {
                        let r = mpi.isend(1, i, &[1u8; 4096]);
                        mpi.compute(30_000);
                        mpi.wait(r);
                    } else {
                        mpi.recv(Src::Rank(0), TagSel::Is(i));
                    }
                }
            },
        )
        .unwrap_or_else(|e| panic!("{}", e.one_line()));
        let r = &out.reports[0];
        rows.push(vec![
            cap.to_string(),
            r.queue_flushes.to_string(),
            r.events_recorded.to_string(),
            pct(r.total.max_pct()),
        ]);
    }
    Series {
        id: "ablation-queue",
        title: "Event-queue capacity vs flush count (results invariant)".to_string(),
        columns: ["capacity", "flushes", "events", "snd_max%"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

/// Incast contention: `n` senders push to rank 0 simultaneously. With
/// ingress contention modeled, physical durations stretch past the idle
/// a-priori table — the `congestion_excess` slack that loosens the upper
/// bound. Demonstrates the bound semantics under load.
pub fn ablation_incast() -> Series {
    let grid: Vec<(bool, usize)> = [false, true]
        .iter()
        .flat_map(|&c| [1usize, 3, 7].map(|s| (c, s)))
        .collect();
    let rows = crate::runner::par_map(&grid, |&(contention, senders)| {
        let net = crate::topo::apply(simnet::NetConfig {
            model_ingress_contention: contention,
            ..simnet::NetConfig::infiniband_2006()
        });
        let out = run_mpi(
            senders + 1,
            net.clone(),
            crate::progress::apply(MpiConfig::mvapich2()),
            RecorderOpts::default(),
            move |mpi| {
                if mpi.rank() == 0 {
                    let reqs: Vec<_> = (1..=senders)
                        .map(|s| mpi.irecv(Src::Rank(s), TagSel::Is(7)))
                        .collect();
                    mpi.waitall(&reqs);
                } else {
                    let r = mpi.isend(0, 7, &vec![1u8; 256 << 10]);
                    mpi.compute(600_000);
                    mpi.wait(r);
                }
            },
        )
        .unwrap_or_else(|e| panic!("{}", e.one_line()));
        let table = default_xfer_table(&net);
        let slack: u64 = (1..=senders)
            .map(|r| out.congestion_excess(r, &table))
            .sum();
        let r1 = &out.reports[1];
        vec![
            if contention { "on" } else { "off" }.to_string(),
            senders.to_string(),
            pct(r1.total.min_pct()),
            pct(r1.total.max_pct()),
            format!("{:.1}", slack as f64 / 1e3),
        ]
    });
    Series {
        id: "ablation-incast",
        title: "Incast: sender bounds and congestion slack vs fan-in".to_string(),
        columns: ["ingress", "senders", "snd1_min%", "snd1_max%", "slack_us"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

/// Effective bandwidth vs message size, per protocol configuration — the
/// classic companion curve to the overlap plots (what a `perf_main`-style
/// sweep would show for the *library* rather than the raw fabric).
pub fn ablation_bandwidth() -> Series {
    let sizes: Vec<usize> = vec![1 << 10, 8 << 10, 64 << 10, 512 << 10, 4 << 20];
    let rows = crate::runner::par_map(&sizes, |&size| {
        let mut row = vec![if size >= 1 << 20 {
            format!("{}M", size >> 20)
        } else {
            format!("{}K", size >> 10)
        }];
        for cfg in [
            MpiConfig::open_mpi_pipelined(),
            MpiConfig::open_mpi_leave_pinned(),
        ] {
            let reps = 10usize;
            let out = run_mpi(
                2,
                crate::topo::apply(NetConfig::default()),
                crate::progress::apply(cfg),
                RecorderOpts::default(),
                move |mpi| {
                    // Steady-state one-way stream with a closing ack.
                    if mpi.rank() == 0 {
                        for i in 0..reps {
                            mpi.send(1, i as u64, &vec![1u8; size]);
                        }
                        mpi.recv(Src::Rank(1), TagSel::Is(999));
                    } else {
                        for i in 0..reps {
                            mpi.recv(Src::Rank(0), TagSel::Is(i as u64));
                        }
                        mpi.send(0, 999, &[0u8; 8]);
                    }
                },
            )
            .unwrap_or_else(|e| panic!("{}", e.one_line()));
            let bytes = (size * reps) as f64;
            // Exclude init/finalize sync by using the data-only span from
            // ground truth records. A run can complete zero transfers (e.g.
            // under an aggressive fault plan) — report zero goodput rather
            // than panicking on an empty span.
            let start = out.transfers.iter().map(|t| t.phys_start).min();
            let end = out.transfers.iter().map(|t| t.phys_end).max();
            let gbps = match (start, end) {
                (Some(s), Some(e)) if e > s => bytes / (e - s) as f64, // bytes per ns == GB/s
                _ => 0.0,
            };
            row.push(format!("{gbps:.3}"));
        }
        row
    });
    Series {
        id: "ablation-bandwidth",
        title: "Library streaming bandwidth vs message size (GB/s; fabric peak 1.0)".to_string(),
        columns: ["size", "pipelined", "direct_read"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

/// The message-size breakdown the paper gathered for every NAS benchmark
/// but omitted "due to space considerations" (Sec. 4): per-bin min/max
/// overlap for process 0 at class A, np = 4.
pub fn extra_nas_bins() -> Series {
    use nasbench::runner::{run_benchmark, NasBenchmark};
    use nasbench::Class;
    let mut rows = Vec::new();
    for bench in [
        NasBenchmark::Bt,
        NasBenchmark::Cg,
        NasBenchmark::Lu,
        NasBenchmark::Ft,
        NasBenchmark::Sp,
    ] {
        let art = run_benchmark(
            bench,
            Class::A,
            4,
            crate::topo::apply(NetConfig::default()),
            RecorderOpts::default(),
        );
        let r = &art.reports()[0];
        for (label, b) in r.bin_labels.iter().zip(&r.by_bin) {
            if b.transfers == 0 {
                continue;
            }
            rows.push(vec![
                bench.name().to_string(),
                label.clone(),
                b.transfers.to_string(),
                pct(b.min_pct()),
                pct(b.max_pct()),
                format!("{:.2}", b.nonoverlapped_min() as f64 / 1e6),
            ]);
        }
    }
    Series {
        id: "extra-bins",
        title: "NAS per-message-size breakdown (class A, np=4, process 0)".to_string(),
        columns: ["bench", "size_bin", "n", "min%", "max%", "non_ovl_ms"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

/// The paper's closing wish (Sec. 2.2/6): "if it were possible to obtain
/// time-stamps on data transfers from the network interface card, a more
/// precise characterization would be possible." The simulator *has* those
/// timestamps (ground truth), so this harness quantifies exactly what NIC
/// support would buy: the true overlap sits between the host-side bounds,
/// and the bound gap is the measurement uncertainty NIC timestamps would
/// remove.
pub fn extra_nic_timestamps() -> Series {
    let net = crate::topo::apply(NetConfig::default());
    let mut rows = Vec::new();
    for compute_us in [100u64, 400, 700, 1000, 1300] {
        let out = run_mpi(
            2,
            net.clone(),
            crate::progress::apply(MpiConfig::open_mpi_leave_pinned()),
            RecorderOpts::default(),
            move |mpi| {
                for i in 0..30 {
                    if mpi.rank() == 0 {
                        let r = mpi.isend(1, i, &vec![1u8; 1 << 20]);
                        mpi.compute(compute_us * 1_000);
                        mpi.wait(r);
                    } else {
                        mpi.recv(Src::Rank(0), TagSel::Is(i));
                    }
                    mpi.barrier();
                }
            },
        )
        .unwrap_or_else(|e| panic!("{}", e.one_line()));
        let r = &out.reports[0].total;
        let truth = out.true_overlap(0);
        let true_pct = 100.0 * truth as f64 / r.data_transfer_time as f64;
        rows.push(vec![
            compute_us.to_string(),
            pct(r.min_pct()),
            pct(true_pct),
            pct(r.max_pct()),
            pct(r.max_pct() - r.min_pct()),
        ]);
    }
    Series {
        id: "extra-nic-timestamps",
        title: "Host-side bounds vs NIC-timestamp ground truth (1 MB direct RDMA sender)"
            .to_string(),
        columns: ["compute_us", "min%", "TRUE%", "max%", "uncertainty%"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

/// Fault-injection sweep: overlap bounds, goodput, and retransmission work
/// as the fabric loss rate rises, per message size. The bounds must degrade
/// gracefully (flagged transfers, confidence < 1) rather than collapse, and
/// goodput should fall roughly with the retransmission volume.
pub fn ablation_faults() -> Series {
    use simnet::{FaultKind, FaultPlan};
    let grid: Vec<(u32, usize)> = [0u32, 1, 5, 10]
        .iter()
        .flat_map(|&loss| [4usize << 10, 64 << 10, 256 << 10].map(|s| (loss, s)))
        .collect();
    let rows = crate::runner::par_map(&grid, |&(loss_pct, size)| {
        let faults = if loss_pct == 0 {
            FaultPlan::none()
        } else {
            FaultPlan {
                seed: 23,
                drop_prob: loss_pct as f64 / 100.0,
                delay_prob: 0.02,
                max_extra_delay: 10_000,
                ..FaultPlan::none()
            }
        };
        let net = crate::topo::apply(NetConfig {
            faults,
            ..NetConfig::default()
        });
        let rounds = 20usize;
        let out = run_mpi(
            4,
            net,
            crate::progress::apply(MpiConfig::default()),
            crate::tracecap::rec_opts(),
            move |mpi| {
                let me = mpi.rank();
                let n = mpi.nranks();
                let dst = (me + 1) % n;
                let src = (me + n - 1) % n;
                for i in 0..rounds {
                    let r = mpi.irecv(Src::Rank(src), TagSel::Is(i as u64));
                    let s = mpi.isend(dst, i as u64, &vec![1u8; size]);
                    mpi.compute(300_000);
                    mpi.wait(s);
                    mpi.wait(r);
                }
            },
        )
        .unwrap_or_else(|e| panic!("{}", e.one_line()));
        crate::tracecap::record(
            format!("ablation-faults/loss{loss_pct}-{}K", size >> 10),
            out.traces.clone(),
            &out.faults,
        );
        let r = &out.reports[0].total;
        let retrans: u64 = out.rel_stats.iter().map(|s| s.retransmissions).sum();
        let dropped = out
            .faults
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::Dropped))
            .count();
        // Application payload delivered per wall time (bytes/ns == GB/s):
        // retransmitted wire bytes don't count, so goodput falls as the
        // loss rate climbs.
        let goodput = (size * rounds * 4) as f64 / out.end_time as f64;
        vec![
            loss_pct.to_string(),
            (size >> 10).to_string(),
            pct(r.min_pct()),
            pct(r.max_pct()),
            format!("{:.2}", r.confidence()),
            format!("{goodput:.3}"),
            dropped.to_string(),
            retrans.to_string(),
        ]
    });
    Series {
        id: "ablation-faults",
        title: "Overlap bounds and goodput vs fabric loss rate (4-rank ring)".to_string(),
        columns: [
            "loss%",
            "size_KB",
            "min%",
            "max%",
            "conf",
            "goodput_GBps",
            "drops",
            "retrans",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// Topology sweep: the same 32-rank neighbor exchange under the flat
/// crossbar, a fat-tree, and a dragonfly, with and without a co-located
/// tenant's background traffic. Hierarchical fabrics route hop-by-hop over
/// shared links, so per-hop queuing (and the tenant's injected load) shows
/// up as a `contention` slice in the wait-state attribution and as a longer
/// end-to-end runtime — the flat rows reproduce the exclusive-use model
/// exactly.
pub fn ablation_topology() -> Series {
    use simnet::{BackgroundJob, TopologySpec, TrafficPattern};
    let topos = [
        TopologySpec::Flat,
        TopologySpec::FatTree { k: 8 },
        TopologySpec::Dragonfly { a: 4, p: 2, h: 2 },
    ];
    // Background tenant: off, a light uniform load, a heavy uniform load.
    let tenants: [(&str, Option<u64>); 3] = [
        ("off", None),
        ("light", Some(400_000)),
        ("heavy", Some(50_000)),
    ];
    let grid: Vec<(TopologySpec, (&str, Option<u64>))> = topos
        .iter()
        .flat_map(|&t| tenants.map(|b| (t, b)))
        .collect();
    let ranks = 32usize;
    let bytes = 64 << 10; // above the eager threshold: direct-read rendezvous
    let rows = crate::runner::par_map(&grid, |&(spec, (bg_label, period))| {
        let net = NetConfig {
            model_ingress_contention: true,
            topology: spec,
            background: period.map(|p| {
                BackgroundJob::builder(TrafficPattern::Uniform)
                    .msg_bytes(16 << 10)
                    .period_ns(p)
                    .build()
            }),
            ..NetConfig::infiniband_2006()
        };
        let out = run_mpi(
            ranks,
            net,
            crate::progress::apply(MpiConfig::open_mpi_leave_pinned()),
            crate::tracecap::rec_opts(),
            move |mpi| {
                let me = mpi.rank();
                let n = mpi.nranks();
                // Shifted neighbor exchange: pair with ranks ±n/4 so most
                // routes cross switch boundaries on hierarchical fabrics.
                let dst = (me + n / 4) % n;
                let src = (me + n - n / 4) % n;
                for i in 0..6u64 {
                    let r = mpi.irecv(Src::Rank(src), TagSel::Is(i));
                    let s = mpi.isend(dst, i, &vec![1u8; bytes]);
                    mpi.compute(200_000);
                    mpi.wait(s);
                    mpi.wait(r);
                }
            },
        )
        .unwrap_or_else(|e| panic!("{}", e.one_line()));
        crate::tracecap::record(
            format!("ablation-topology/{}-bg-{}", spec.label(), bg_label),
            out.traces.clone(),
            &out.faults,
        );
        let r = &out.reports[0].total;
        vec![
            spec.label(),
            bg_label.to_string(),
            pct(r.min_pct()),
            pct(r.max_pct()),
            format!("{:.2}", out.end_time as f64 / 1e6),
        ]
    });
    Series {
        id: "ablation-topology",
        title: "Overlap bounds and runtime vs fabric topology and tenant load (32-rank exchange)"
            .to_string(),
        columns: ["topology", "bg", "min%", "max%", "end_ms"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

/// Datacenter-scale smoke: a 4096-rank 2-D halo exchange on a fitted
/// fat-tree with ingress contention and a background tenant, wait-state
/// tracing always on. Validates at scale that every transfer's per-cause
/// breakdown (including the new per-hop `contention` slice) reconciles
/// *exactly* against its non-overlapped time, and reports the aggregate
/// contention the fabric attributed.
pub fn halo_4k() -> Series {
    use overlap_core::attribution;
    use simnet::{BackgroundJob, TopologySpec, TrafficPattern};
    let side = 64usize; // 64 x 64 torus = 4096 ranks
    let n = side * side;
    let bytes = 16 << 10; // above the eager threshold: direct-read rendezvous
    let net = NetConfig {
        model_ingress_contention: true,
        // fat-tree:k=8 has 128 hosts; `fitted` grows it to k=26 (4394 hosts).
        topology: TopologySpec::FatTree { k: 8 },
        background: Some(
            BackgroundJob::builder(TrafficPattern::Uniform)
                .msg_bytes(8 << 10)
                .period_ns(200_000)
                .build(),
        ),
        ..NetConfig::infiniband_2006()
    };
    let rec = RecorderOpts {
        trace: true, // reconciliation is checked in-harness below
        ..RecorderOpts::default()
    };
    let out = run_mpi(
        n,
        net,
        crate::progress::apply(MpiConfig::open_mpi_leave_pinned()),
        rec,
        move |mpi| {
            let me = mpi.rank();
            let (x, y) = (me % side, me / side);
            let at = |x: usize, y: usize| (y % side) * side + (x % side);
            let neighbors = [
                at(x + 1, y),
                at(x + side - 1, y),
                at(x, y + 1),
                at(x, y + side - 1),
            ];
            for iter in 0..2u64 {
                let recvs: Vec<_> = neighbors
                    .iter()
                    .map(|&nb| mpi.irecv(Src::Rank(nb), TagSel::Is(iter)))
                    .collect();
                let sends: Vec<_> = neighbors
                    .iter()
                    .map(|&nb| mpi.isend(nb, iter, &vec![1u8; bytes]))
                    .collect();
                mpi.compute(150_000);
                mpi.waitall(&sends);
                mpi.waitall(&recvs);
            }
        },
    )
    .unwrap_or_else(|e| panic!("{}", e.one_line()));
    let mut contention_ns = 0u64;
    let mut nonoverlap_ns = 0u64;
    let mut transfers = 0usize;
    let mut mismatches = 0usize;
    for tr in &out.traces {
        let attr = attribution::attribute(tr);
        contention_ns += attr.totals.get("contention").copied().unwrap_or(0);
        for rec in &attr.records {
            transfers += 1;
            nonoverlap_ns += rec.nonoverlap;
            let sum: u64 = rec.breakdown.iter().map(|s| s.ns).sum();
            if sum != rec.nonoverlap {
                mismatches += 1;
            }
        }
    }
    let rows = vec![vec![
        n.to_string(),
        transfers.to_string(),
        format!("{:.2}", out.end_time as f64 / 1e6),
        format!("{:.2}", nonoverlap_ns as f64 / 1e6),
        format!("{:.2}", contention_ns as f64 / 1e6),
        mismatches.to_string(),
    ]];
    Series {
        id: "halo-4k",
        title: "4096-rank halo exchange on a fitted fat-tree (per-hop attribution reconciled)"
            .to_string(),
        columns: [
            "ranks",
            "transfers",
            "end_ms",
            "nonoverlap_ms",
            "contention_ms",
            "reconcile_mismatches",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// One ML-training-step iteration: per-layer backward compute immediately
/// followed by an `iallreduce` of that layer's gradient bucket, with the
/// reductions overlapping the remaining layers' compute — the
/// allreduce-heavy pattern modern data-parallel training overlaps, and the
/// one the progress-model ablation makes visible on something other than a
/// 2006 microbenchmark.
fn ml_training_step(mpi: &mut simmpi::Mpi, layers: usize, bucket: usize, compute_ns: u64) {
    let grad = vec![1.0f64; bucket];
    let mut pending = Vec::with_capacity(layers);
    for _ in 0..layers {
        mpi.compute(compute_ns);
        pending.push(mpi.iallreduce(&grad, simmpi::ReduceOp::Sum));
    }
    // Optimizer step: every bucket must be reduced before weights update.
    for h in pending {
        let _ = mpi.icoll_wait(h);
    }
}

/// Progress-model grid: model × workload × message size, wait-state tracing
/// always on. For every cell the per-transfer cause breakdown must
/// reconcile exactly (the `mismatch` column is asserted 0 in CI's
/// progress-smoke job); the `steal_us` column shows the async-rank fiber's
/// stolen cycles, and the bounds shift exactly as `docs/PROGRESS.md`
/// derives: late-posted receives stop costing overlap under `early-bird`,
/// and `hw-tag` completes transfers with zero host involvement.
pub fn ablation_progress() -> Series {
    use simmpi::ProgressModel;
    let models = [
        ProgressModel::Polling,
        ProgressModel::AsyncRank {
            poll_interval: ProgressModel::DEFAULT_POLL_INTERVAL,
        },
        ProgressModel::EarlyBird,
        ProgressModel::HwTag,
    ];
    let workloads = ["halo", "late-recv", "ml-step"];
    let sizes = [4usize << 10, 64 << 10];
    let mut grid = Vec::new();
    for model in models {
        for workload in workloads {
            for bytes in sizes {
                grid.push((model, workload, bytes));
            }
        }
    }
    let rows = crate::runner::par_map(&grid, |&(model, workload, bytes)| {
        let n = 8usize;
        let cfg = MpiConfig {
            progress: model,
            ..MpiConfig::open_mpi_leave_pinned()
        };
        let rec = RecorderOpts {
            trace: true, // reconciliation is checked per cell below
            ..RecorderOpts::default()
        };
        let out = run_mpi(
            n,
            crate::topo::apply(NetConfig::default()),
            crate::progress::apply(cfg),
            rec,
            move |mpi| match workload {
                "halo" => {
                    let me = mpi.rank();
                    let left = (me + n - 1) % n;
                    let right = (me + 1) % n;
                    for iter in 0..4u64 {
                        let recvs = [
                            mpi.irecv(Src::Rank(left), TagSel::Is(iter)),
                            mpi.irecv(Src::Rank(right), TagSel::Is(iter)),
                        ];
                        let sends = [
                            mpi.isend(left, iter, &vec![1u8; bytes]),
                            mpi.isend(right, iter, &vec![2u8; bytes]),
                        ];
                        mpi.compute(300_000);
                        for r in sends.into_iter().chain(recvs) {
                            mpi.wait(r);
                        }
                    }
                }
                // Receives post only after a barrier that follows the
                // compute block, so eager payloads are drained into the
                // unexpected queue (inside the barrier) before the matching
                // receive exists — the case early-bird's copy-at-arrival
                // accelerates: the bounce-buffer copy is absorbed into the
                // barrier wait instead of delaying the receive. Sends are
                // nonblocking and waited only after the recvs post, keeping
                // the late posting safe for rendezvous sizes too.
                "late-recv" => {
                    let me = mpi.rank();
                    let left = (me + n - 1) % n;
                    let right = (me + 1) % n;
                    for iter in 0..4u64 {
                        let sends = [
                            mpi.isend(left, iter, &vec![1u8; bytes]),
                            mpi.isend(right, iter, &vec![2u8; bytes]),
                        ];
                        mpi.compute(300_000);
                        mpi.barrier();
                        let recvs = [
                            mpi.irecv(Src::Rank(left), TagSel::Is(iter)),
                            mpi.irecv(Src::Rank(right), TagSel::Is(iter)),
                        ];
                        for r in sends.into_iter().chain(recvs) {
                            mpi.wait(r);
                        }
                    }
                }
                "ml-step" => {
                    for _ in 0..3 {
                        ml_training_step(mpi, 6, bytes / 8, 150_000);
                    }
                }
                other => panic!("unknown workload {other}"),
            },
        )
        .unwrap_or_else(|e| panic!("{}", e.one_line()));
        let mut mismatches = 0usize;
        let mut transfers = 0usize;
        for tr in &out.traces {
            let attr = overlap_core::attribution::attribute(tr);
            for rec in &attr.records {
                transfers += 1;
                let sum: u64 = rec.breakdown.iter().map(|s| s.ns).sum();
                if sum != rec.nonoverlap {
                    mismatches += 1;
                }
            }
        }
        let min: u64 = out.reports.iter().map(|r| r.total.min_overlap).sum();
        let max: u64 = out.reports.iter().map(|r| r.total.max_overlap).sum();
        let steal: u64 = out
            .reports
            .iter()
            .filter_map(|r| r.calls.get("MPI_Progress"))
            .map(|c| c.total_time)
            .sum();
        // Host time spent inside receive posting. Early-bird moves the
        // unexpected-eager bounce-buffer copy out of this call and into
        // whatever call drained the arrival, so on the late-recv workload
        // this column drops to the bare posting cost under early-bird.
        let irecv: u64 = out
            .reports
            .iter()
            .filter_map(|r| r.calls.get("MPI_Irecv"))
            .map(|c| c.total_time)
            .sum();
        vec![
            model.label().to_string(),
            workload.to_string(),
            (bytes >> 10).to_string(),
            transfers.to_string(),
            format!("{:.1}", min as f64 / 1e3),
            format!("{:.1}", max as f64 / 1e3),
            format!("{:.1}", steal as f64 / 1e3),
            format!("{:.1}", irecv as f64 / 1e3),
            format!("{:.2}", out.end_time as f64 / 1e6),
            mismatches.to_string(),
        ]
    });
    Series {
        id: "ablation-progress",
        title: "Overlap bounds vs progress model (8-rank halo, late-recv, ML step)".to_string(),
        columns: [
            "model",
            "workload",
            "size_KB",
            "transfers",
            "min_us",
            "max_us",
            "steal_us",
            "irecv_us",
            "end_ms",
            "mismatch",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// All ablations in canonical order, with the rank counts the runner's
/// `--json` report exposes.
pub fn all() -> Vec<crate::Harness> {
    use crate::{Harness, HarnessKind::Ablation};
    vec![
        Harness::new("ablation-eager", Ablation, 2, ablation_eager_threshold),
        Harness::new("ablation-faults", Ablation, 4, ablation_faults),
        Harness::new("ablation-frag", Ablation, 2, ablation_fragment_size),
        Harness::new("ablation-iprobe", Ablation, 2, ablation_iprobe_count),
        Harness::new("ablation-table", Ablation, 2, ablation_table_resolution),
        Harness::new("ablation-queue", Ablation, 2, ablation_queue_capacity),
        Harness::new("ablation-incast", Ablation, 8, ablation_incast),
        Harness::new("ablation-topology", Ablation, 32, ablation_topology),
        Harness::new("ablation-progress", Ablation, 8, ablation_progress),
        Harness::new("halo-4k", Ablation, 4096, halo_4k),
        Harness::new("ablation-bandwidth", Ablation, 2, ablation_bandwidth),
        Harness::new("extra-bins", Ablation, 4, extra_nas_bins),
        Harness::new("extra-nic-timestamps", Ablation, 2, extra_nic_timestamps),
    ]
}
