//! Scheduler and engine micro-benchmarks.
//!
//! Shared by the criterion bench target (`benches/engine.rs`) and the
//! `repro --bench-json` perf-trajectory emitter, so the number CI smoke-runs
//! is computed by exactly the code that writes `BENCH_*.json`.
//!
//! The headline measurement is a classic *hold model* over the two
//! schedulers in `simcore::sched`, each driven through the locking protocol
//! its engine generation actually used:
//!
//! * **heap** — one global `Mutex<BinaryHeapSched>`, locked once per push
//!   and once per pop: in the pre-wheel engine *every* schedule, including
//!   the run loop's own timer wakes, went through that mutex,
//! * **wheel** — a run-loop-owned `TimingWheel`: the loop's own wakes are
//!   pushed directly (no lock), and before each pop an atomic inbox mask is
//!   swapped to detect pending cross-thread insertions (the current
//!   engine's drain protocol; shard mutexes are only taken when the mask
//!   says a producer actually queued something).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;
use simcore::sched::{BinaryHeapSched, TimingWheel};
use simcore::{SimOpts, Simulation};

/// Deterministic 64-bit LCG (same constants as `rand`'s `Lcg64`): the bench
/// workload must not depend on platform RNG state.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// Maximum delay added to a popped entry's time when it is re-pushed.
const HOLD_SPREAD: u64 = 10_000;

/// Result of one scheduler hold-model comparison.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SchedThroughput {
    /// Pop-push operations timed per scheduler.
    pub events: u64,
    /// Entries kept pending throughout (the hold population).
    pub outstanding: usize,
    /// Locked `BinaryHeap` reference (pre-wheel engine protocol).
    pub heap_events_per_sec: f64,
    /// Timing wheel behind an insertion buffer (current engine protocol).
    pub wheel_events_per_sec: f64,
    /// `wheel_events_per_sec / heap_events_per_sec`.
    pub speedup: f64,
}

/// Hold-model seconds for the locked-heap protocol.
pub fn heap_hold_secs(events: u64, outstanding: usize) -> f64 {
    let q = Mutex::new(BinaryHeapSched::new());
    let mut rng = Lcg(0x5eed);
    let mut seq = 0u64;
    for _ in 0..outstanding {
        q.lock().push(rng.next() % HOLD_SPREAD, seq, ());
        seq += 1;
    }
    let start = Instant::now();
    for _ in 0..events {
        let (t, ..) = q.lock().pop().expect("hold population never empties");
        let nt = t + 1 + rng.next() % HOLD_SPREAD;
        q.lock().push(nt, seq, ());
        seq += 1;
    }
    start.elapsed().as_secs_f64()
}

/// Hold-model seconds for the wheel-plus-inbox drain protocol: re-pushes
/// are the run loop's own wakes (direct, no lock — as the engine inserts
/// its timer events), and each pop is preceded by the atomic inbox-mask
/// swap the engine uses to detect cross-thread insertions.
pub fn wheel_hold_secs(events: u64, outstanding: usize) -> f64 {
    let inbox_mask = AtomicU64::new(0);
    let inbox: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
    let mut wheel = TimingWheel::new();
    let mut rng = Lcg(0x5eed);
    let mut seq = 0u64;
    // Seed through the producer path, as ranks would.
    {
        let mut buf = inbox.lock();
        for _ in 0..outstanding {
            buf.push((rng.next() % HOLD_SPREAD, seq));
            seq += 1;
        }
    }
    inbox_mask.store(1, Ordering::Release);
    let start = Instant::now();
    for _ in 0..events {
        if inbox_mask.swap(0, Ordering::Acquire) != 0 {
            for (t, s) in inbox.lock().drain(..) {
                wheel.push(t, s, ());
            }
        }
        let (t, ..) = wheel.pop().expect("hold population never empties");
        let nt = t + 1 + rng.next() % HOLD_SPREAD;
        wheel.push(nt, seq, ());
        seq += 1;
    }
    start.elapsed().as_secs_f64()
}

/// Run the hold-model comparison at the given size.
pub fn sched_throughput(events: u64, outstanding: usize) -> SchedThroughput {
    let heap_s = heap_hold_secs(events, outstanding);
    let wheel_s = wheel_hold_secs(events, outstanding);
    let heap_eps = events as f64 / heap_s;
    let wheel_eps = events as f64 / wheel_s;
    SchedThroughput {
        events,
        outstanding,
        heap_events_per_sec: heap_eps,
        wheel_events_per_sec: wheel_eps,
        speedup: wheel_eps / heap_eps,
    }
}

/// End-to-end engine event throughput: `nranks` ranks each advancing through
/// `steps` compute slices (every slice is one scheduled wake-up), with a
/// token chain ticking alongside. Returns processed events per host second.
pub fn sim_events_per_sec(nranks: usize, steps: u64) -> f64 {
    let sim = Simulation::new(nranks);
    let handle = sim.handle();
    handle.set_token_handler(move |h, tok| {
        if tok > 0 {
            h.schedule_token(h.now() + 7, tok - 1);
        }
    });
    handle.schedule_token(1, steps);
    let start = Instant::now();
    let out = sim
        .run(SimOpts::default(), move |ctx| {
            for _ in 0..steps {
                ctx.compute(5);
            }
        })
        .expect("bench simulation completes");
    out.events_processed as f64 / start.elapsed().as_secs_f64()
}

/// Canonical hold-model size for the perf trajectory (`BENCH_*.json`) and
/// the CI bench smoke: large enough that the heap pays its `O(log n)`
/// comparisons and the wheel amortizes cascades, small enough to finish in
/// well under a second.
pub const TRAJECTORY_EVENTS: u64 = 200_000;
/// Canonical hold population for the perf trajectory.
pub const TRAJECTORY_OUTSTANDING: usize = 1 << 14;
/// Canonical rank count for the streaming-ingest probe.
pub const TRAJECTORY_INGEST_RANKS: usize = 4;
/// Canonical transfers per rank for the streaming-ingest probe (6 raw event
/// lines plus one bound and one wait line per transfer).
pub const TRAJECTORY_INGEST_TRANSFERS: usize = 2_000;

/// Result of the streaming-ingest throughput probe: how fast `overlapd`'s
/// fold ([`overlap_core::stream::SessionFold`]) consumes JSONL event lines,
/// and what it allocates per line once the session is warm.
#[derive(Debug, Clone, serde::Serialize)]
pub struct IngestBench {
    /// Raw event lines folded in the measured pass.
    pub events: u64,
    /// Folded event lines per host second (parse + fold, steady state).
    pub events_per_sec: f64,
    /// Allocation calls per folded event line during the measured pass. The
    /// session, scopes, ranks, and the name-intern pool already exist when
    /// measurement starts, so this is the steady-state number — the direct
    /// check that server memory stays bounded per event rather than growing
    /// with stream length. Reads 0 in binaries without
    /// [`crate::alloc::CountingAlloc`] installed.
    pub allocs_per_event: f64,
}

/// Deterministic synthetic event stream for the ingest probe: `ranks` ranks
/// each completing `transfers` isend/wait transfer pairs, with one bound
/// and one wait line per transfer — the exact JSONL shape the batch
/// exporter writes.
pub fn ingest_stream(ranks: usize, transfers: usize) -> String {
    use overlap_core::attribution::{WaitCause, WaitInterval};
    use overlap_core::bounds::XferCase;
    use overlap_core::trace::{jsonl, BoundRecord, RankTrace, TraceBundle};
    use overlap_core::{Event, EventKind};

    let rank_trace = |rank: usize| {
        let mut events = Vec::with_capacity(transfers * 6);
        let mut bounds = Vec::with_capacity(transfers);
        let mut waits = Vec::with_capacity(transfers);
        let mut t = 0u64;
        for i in 0..transfers {
            let id = i as u64 + 1;
            let bytes = 1u64 << (10 + (i % 6)); // walk the size bins
            events.push(Event::new(t, EventKind::CallEnter { name: "MPI_Isend" }));
            events.push(Event::new(t + 5, EventKind::XferBegin { id, bytes }));
            events.push(Event::new(t + 10, EventKind::CallExit));
            events.push(Event::new(
                t + 600,
                EventKind::CallEnter { name: "MPI_Wait" },
            ));
            events.push(Event::new(t + 900, EventKind::XferEnd { id, bytes }));
            events.push(Event::new(t + 910, EventKind::CallExit));
            bounds.push(BoundRecord {
                id: Some(id),
                bytes,
                begin_t: Some(t + 5),
                end_t: t + 900,
                xfer_time: 250,
                min: 0,
                max: 250,
                case: XferCase::SplitCalls,
                flagged: false,
                clamped: false,
            });
            waits.push(WaitInterval {
                start: t + 600,
                end: t + 900,
                cause: WaitCause::LateSender,
                xfer: Some(id),
            });
            t += 1_000;
        }
        RankTrace {
            rank,
            events,
            bounds,
            waits,
        }
    };
    jsonl(&[TraceBundle {
        scope: "ingest/probe".to_string(),
        ranks: (0..ranks).map(rank_trace).collect(),
        extras: vec![],
    }])
}

/// Run the streaming-ingest probe: fold the synthetic stream once to warm
/// the session (scopes, ranks, intern pool, ring allocations), then measure
/// a second pass of the same stream through the *same* session — the
/// steady-state regime a long-lived server lives in.
pub fn ingest_throughput(ranks: usize, transfers: usize) -> IngestBench {
    use overlap_core::stream::SessionFold;

    let text = ingest_stream(ranks, transfers);
    let mut session = SessionFold::default();
    session
        .push_text(&text)
        .expect("synthetic stream is schema-valid");
    let events = (ranks * transfers * 6) as u64;

    let a0 = crate::alloc::snapshot();
    let start = Instant::now();
    session
        .push_text(&text)
        .expect("synthetic stream is schema-valid");
    let secs = start.elapsed().as_secs_f64();
    let (calls, _) = crate::alloc::region(a0, crate::alloc::snapshot());

    IngestBench {
        events,
        events_per_sec: events as f64 / secs,
        allocs_per_event: calls as f64 / events as f64,
    }
}

/// Allocation counters captured from [`crate::alloc::snapshot`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct AllocStats {
    /// Allocation calls (alloc + realloc).
    pub calls: u64,
    /// Bytes requested across those calls.
    pub bytes: u64,
}

/// One harness line in the perf trajectory.
#[derive(Debug, Clone, serde::Serialize)]
pub struct HarnessSummary {
    /// Harness identifier (e.g. `"fig03"`).
    pub id: &'static str,
    /// Simulated ranks the harness spins up (largest configuration).
    pub ranks: usize,
    /// Host wall-clock seconds.
    pub wall_s: f64,
    /// Allocation calls during this harness's run (counter delta around the
    /// run; attributable to the harness only under `--jobs 1`, since the
    /// counters are process-wide).
    pub alloc_calls: u64,
    /// Bytes requested during this harness's run (same caveat).
    pub alloc_bytes: u64,
}

/// Engine-level throughput numbers.
#[derive(Debug, Clone, serde::Serialize)]
pub struct EngineBench {
    /// Full-`Simulation` processed events per host second.
    pub sim_events_per_sec: f64,
    /// Hold-model comparison of the two scheduler generations.
    pub sched: SchedThroughput,
    /// Streaming-ingest throughput and steady-state allocation rate.
    pub ingest: IngestBench,
}

/// Top-level perf-trajectory record written by `repro --bench-json`.
///
/// One file of this shape is committed per PR that touches the hot path
/// (`BENCH_pr4.json`, ...), seeding a comparable wall-clock/throughput
/// series across the repo's history. See `docs/BENCHMARKS.md`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BenchReport {
    /// Record-format identifier (see [`BENCH_SCHEMA`]).
    pub schema: &'static str,
    /// Worker budget the harness run used.
    pub jobs: usize,
    /// Total wall-clock seconds for the harness selection.
    pub total_wall_s: f64,
    /// Per-harness wall-clock and allocation deltas, in canonical order.
    pub harnesses: Vec<HarnessSummary>,
    /// Steady-state allocation counters: the delta across the harness-run
    /// region only, excluding process setup (harness registries, CLI
    /// parsing) and report assembly. This is the number the trajectory
    /// tracks.
    pub allocations: AllocStats,
    /// Raw cumulative process-wide counters at report time, kept for
    /// comparison against pre-v2 records (which reported only this).
    pub allocations_raw: AllocStats,
    /// Scheduler/engine micro-benchmarks at the canonical trajectory sizes.
    pub engine: EngineBench,
}

/// Record-format identifier written into [`BenchReport::schema`]. `v2` added
/// per-harness allocation deltas and split `allocations` into steady-state
/// (measured region) vs `allocations_raw` (cumulative); `v3` added the
/// streaming-ingest probe (`engine.ingest`).
pub const BENCH_SCHEMA: &str = "overlap-bench-v3";

/// Guard for `repro --bench-json <path>`: if `path` already holds a record
/// whose `schema` field differs from [`BENCH_SCHEMA`], returns that schema
/// so the caller can refuse to overwrite it (a committed `BENCH_prN.json`
/// from an earlier format generation is history, not scratch space).
/// Returns `None` when the path is absent, unreadable, not JSON, has no
/// string `schema` field, or already carries the current schema — all cases
/// where overwriting is fine.
pub fn bench_json_overwrite_conflict(path: &std::path::Path) -> Option<String> {
    let existing = std::fs::read_to_string(path).ok()?;
    let schema = serde_json::from_str::<serde_json::Value>(&existing)
        .ok()?
        .get("schema")?
        .as_str()?
        .to_string();
    (schema != BENCH_SCHEMA).then_some(schema)
}

/// Assemble the perf-trajectory record: runs the canonical hold-model
/// comparison and the full-simulation throughput probe, then snapshots the
/// allocation counters. `run_region` is the counter delta the caller
/// measured around the harness run itself (see [`crate::alloc::region`]);
/// the raw cumulative counters are snapshotted here, after the
/// micro-benchmarks, so their allocations are included in the raw number
/// (they are identical run to run) but not in the steady-state one.
pub fn bench_report(
    jobs: usize,
    total_wall_s: f64,
    harnesses: Vec<HarnessSummary>,
    run_region: AllocStats,
) -> BenchReport {
    let sched = sched_throughput(TRAJECTORY_EVENTS, TRAJECTORY_OUTSTANDING);
    let sim = sim_events_per_sec(4, 25_000);
    let ingest = ingest_throughput(TRAJECTORY_INGEST_RANKS, TRAJECTORY_INGEST_TRANSFERS);
    let (calls, bytes) = crate::alloc::snapshot();
    BenchReport {
        schema: BENCH_SCHEMA,
        jobs,
        total_wall_s,
        harnesses,
        allocations: run_region,
        allocations_raw: AllocStats { calls, bytes },
        engine: EngineBench {
            sim_events_per_sec: sim,
            sched,
            ingest,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hold_models_complete_and_report_positive_rates() {
        let r = sched_throughput(10_000, 1 << 10);
        assert_eq!(r.events, 10_000);
        assert!(r.heap_events_per_sec > 0.0);
        assert!(r.wheel_events_per_sec > 0.0);
        assert!(r.speedup > 0.0);
    }

    #[test]
    fn sim_throughput_is_positive() {
        assert!(sim_events_per_sec(2, 500) > 0.0);
    }

    #[test]
    fn ingest_probe_folds_and_reports_positive_rate() {
        let r = ingest_throughput(2, 50);
        assert_eq!(r.events, 2 * 50 * 6);
        assert!(r.events_per_sec > 0.0);
        // Without the counting allocator installed (as in `cargo test`) the
        // counter reads 0; either way the number must be finite and small
        // relative to a per-event leak.
        assert!(r.allocs_per_event.is_finite());
    }

    /// Scratch path unique to this test run (no tempfile dependency).
    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("enginebench_{}_{name}", std::process::id()))
    }

    #[test]
    fn overwrite_guard_refuses_other_schemas_only() {
        let path = scratch("guard.json");

        // Absent file: no conflict.
        let _ = std::fs::remove_file(&path);
        assert_eq!(bench_json_overwrite_conflict(&path), None);

        // Older record generation: conflict, reported by its schema.
        std::fs::write(&path, r#"{"schema": "overlap-bench-v1", "jobs": 1}"#).unwrap();
        assert_eq!(
            bench_json_overwrite_conflict(&path).as_deref(),
            Some("overlap-bench-v1")
        );

        // Current schema: regeneration is fine.
        std::fs::write(&path, format!(r#"{{"schema": {BENCH_SCHEMA:?}}}"#)).unwrap();
        assert_eq!(bench_json_overwrite_conflict(&path), None);

        // Not a bench record at all (garbage / no schema field): no claim to
        // protect, overwriting allowed.
        std::fs::write(&path, "not json").unwrap();
        assert_eq!(bench_json_overwrite_conflict(&path), None);
        std::fs::write(&path, r#"{"jobs": 1}"#).unwrap();
        assert_eq!(bench_json_overwrite_conflict(&path), None);

        let _ = std::fs::remove_file(&path);
    }
}
