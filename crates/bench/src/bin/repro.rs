//! Figure-reproduction CLI.
//!
//! ```text
//! repro                          # run every figure and ablation
//! repro fig05 fig18              # run selected harnesses
//! repro ablations                # run only the ablation studies
//! repro fig05 ablations          # a figure plus all ablations
//! repro --jobs 4                 # bound the worker pool (default: cores)
//! repro --json report.json       # also write a machine-readable report
//! repro fig03 --trace out/       # also export time-resolved traces
//! repro fig03 --critical-path cp/  # also export wait-state attribution
//! repro --bench-json BENCH.json  # also write the perf-trajectory record
//! repro --topology fat-tree:k=8 fig03  # re-run under another fabric
//! repro --progress async-rank fig03    # re-run under another progress model
//! repro serve --addr 127.0.0.1:7077    # run the streaming analysis service
//! repro push out/fig03.events.jsonl --to 127.0.0.1:7077  # upload a stream
//! repro fig03 --stream 127.0.0.1:7077  # tee captured traces to the service
//! repro list                     # list available harnesses
//! ```
//!
//! `--topology <spec>` (`flat`, `fat-tree:k=8`, `dragonfly:a=4,p=2,h=2`)
//! re-runs the selected harnesses under a hierarchical fabric with per-hop
//! contention (see `docs/TOPOLOGY.md`); the spec is fitted up to each
//! harness's rank count automatically. Unknown specs exit 2 with a one-line
//! message.
//!
//! `--progress <model>` (`polling`, `async-rank[:interval=<ns>]`,
//! `early-bird`, `hw-tag`) re-runs the selected MPI harnesses under another
//! progress model (see `docs/PROGRESS.md`); `polling` is the default and is
//! byte-identical to not passing the flag. Unknown models exit 2 with a
//! one-line message. The flag composes with `--topology` and `--jobs`.
//!
//! Harnesses run concurrently on `--jobs` workers but print in canonical
//! order, so stdout is byte-identical to a serial (`--jobs 1`) run. With
//! `--trace <dir>`, each selected harness additionally writes
//! `<dir>/<id>.trace.json` (Chrome trace event format — load in Perfetto or
//! `chrome://tracing`) and `<dir>/<id>.events.jsonl` (one JSON object per
//! event, for `jq`-style analysis); windowed time-resolved summaries are
//! merged into the `--json` report. Trace files are deterministic: the same
//! selection produces byte-identical files regardless of `--jobs`.
//!
//! With `--critical-path <dir>`, each selected harness writes
//! `<dir>/<id>.critpath.folded` (flamegraph-collapsed dominant wait chains)
//! and `<dir>/<id>.attribution.json` (per-transfer cause records reconciled
//! against the overlap bounds, plus the instrumentation self-overhead
//! meter); per-rank wait-state breakdowns are merged into the `--json`
//! report. Like traces, these artifacts are byte-identical across `--jobs`.
//! Export failures (unwritable directory, path is a file) exit with code 2
//! and a one-line message.
//!
//! With `--bench-json <path>`, the run additionally executes the scheduler
//! hold-model comparison and engine throughput probe from
//! [`bench::enginebench`] and writes a [`bench::enginebench::BenchReport`]
//! (wall-clock per harness, events/sec, allocation counts) — the
//! `BENCH_*.json` perf trajectory described in `docs/BENCHMARKS.md`.
//! Allocation counts are reported both raw (cumulative) and steady-state
//! (the harness-run region only), plus per-harness deltas that are
//! attributable under `--jobs 1`. If `<path>` already holds a record with a
//! different `schema` field, the run refuses to overwrite it and exits 2.

use std::collections::BTreeMap;

use bench::runner;
use overlap_core::trace::{chrome_json, default_window_width, jsonl, windowed, TraceBundle};

/// Counting allocator so `--bench-json` can report allocation pressure.
#[global_allocator]
static ALLOC: bench::alloc::CountingAlloc = bench::alloc::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // `repro explore ...`, `repro serve ...` and `repro push ...` are
    // subcommands with their own flags; dispatch before harness-selection
    // parsing sees them.
    match args.first().map(String::as_str) {
        Some("explore") => std::process::exit(bench::explore::cli_main(&args[1..])),
        Some("serve") => std::process::exit(bench::serve::serve_main(&args[1..])),
        Some("push") => std::process::exit(bench::serve::push_main(&args[1..])),
        _ => {}
    }

    let figures = bench::figures::all();
    let ablations = bench::ablations::all();

    let cli = match runner::parse_cli(&args, &figures, &ablations) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("repro: {msg}");
            std::process::exit(2);
        }
    };

    if cli.list {
        println!("figures:");
        for h in &figures {
            println!("  {}", h.id);
        }
        println!("ablations:");
        for h in &ablations {
            println!("  {}", h.id);
        }
        return;
    }

    if let Some(spec) = cli.topology {
        bench::topo::set(spec);
    }

    if let Some(model) = cli.progress {
        bench::progress::set(model);
    }

    if cli.trace.is_some() || cli.critical_path.is_some() {
        bench::tracecap::enable();
    }

    if let Some(addr) = &cli.stream {
        bench::tracecap::set_stream(addr.clone());
    }

    // Refuse to clobber a bench record written under a different schema
    // (e.g. regenerating over a committed BENCH_pr4.json) before any work
    // runs — same exit-2 + one-line convention as the export failures.
    if let Some(path) = &cli.bench_json {
        if let Some(schema) = bench::enginebench::bench_json_overwrite_conflict(path) {
            eprintln!(
                "repro: refusing to overwrite {} (existing schema {:?} != {:?}); \
                 pick a new path or delete it first",
                path.display(),
                schema,
                bench::enginebench::BENCH_SCHEMA,
            );
            std::process::exit(2);
        }
    }

    runner::set_jobs(cli.jobs);
    let alloc0 = bench::alloc::snapshot();
    let t0 = std::time::Instant::now();
    // A harness whose simulation deadlocks panics with the engine's
    // one-line diagnostic (including the wait-for cycle when known);
    // surface that as exit code 3 instead of a raw panic trace.
    let runs = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        runner::run_harnesses(&cli.selection, |run| {
            print!("{}", run.series.render());
            println!();
        })
    })) {
        Ok(runs) => runs,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("harness panicked");
            if msg.contains("simulated deadlock") {
                eprintln!("repro: {msg}");
                std::process::exit(3);
            }
            std::panic::resume_unwind(payload);
        }
    };
    // Steady-state region: the harness runs only, before the exporters and
    // report assembly below allocate on top.
    let run_region = bench::alloc::region(alloc0, bench::alloc::snapshot());

    // Drain the capture once; both exporters read from it. The store is
    // scope-ordered, so grouping and file contents are deterministic.
    let captured: Vec<(String, TraceBundle)> = if cli.trace.is_some() || cli.critical_path.is_some()
    {
        bench::tracecap::drain().into_iter().collect()
    } else {
        Vec::new()
    };

    let mut trace_windows = Vec::new();
    if let Some(dir) = &cli.trace {
        ensure_dir(dir);
        // Group captured scopes by harness id (the part before the first
        // '/'): one Chrome-trace + JSONL file pair per harness.
        let mut by_id: BTreeMap<String, Vec<TraceBundle>> = BTreeMap::new();
        for (scope, bundle) in &captured {
            let width = default_window_width(bundle);
            trace_windows.push(runner::ScopeWindows {
                scope: scope.clone(),
                window_ns: width,
                windows: windowed(bundle, width),
            });
            let id = scope.split('/').next().unwrap_or(scope).to_string();
            by_id.entry(id).or_default().push(bundle.clone());
        }
        for (id, bundles) in &by_id {
            for (suffix, contents) in [
                ("trace.json", chrome_json(bundles)),
                ("events.jsonl", jsonl(bundles)),
            ] {
                write_or_die(&dir.join(format!("{id}.{suffix}")), &contents);
            }
        }
        eprintln!(
            "wrote traces for {} harness(es) to {}",
            by_id.len(),
            dir.display()
        );
    }

    let mut wait_states = Vec::new();
    if let Some(dir) = &cli.critical_path {
        ensure_dir(dir);
        let cp0 = std::time::Instant::now();
        let mut by_id: BTreeMap<String, Vec<(String, &TraceBundle)>> = BTreeMap::new();
        for (scope, bundle) in &captured {
            wait_states.push(bench::critpath::wait_states(scope, bundle));
            let id = scope.split('/').next().unwrap_or(scope).to_string();
            by_id.entry(id).or_default().push((scope.clone(), bundle));
        }
        let mut intervals = 0u64;
        for (id, scoped) in &by_id {
            let artifact = bench::critpath::attribution_artifact(id, scoped);
            intervals += artifact.overhead.wait_intervals;
            let json =
                serde_json::to_string_pretty(&artifact).expect("attribution artifact serializes");
            write_or_die(&dir.join(format!("{id}.attribution.json")), &json);
            write_or_die(
                &dir.join(format!("{id}.critpath.folded")),
                &bench::critpath::collapsed(scoped),
            );
        }
        // Self-overhead: wall-clock is nondeterministic, so it goes to
        // stderr only — artifacts carry the deterministic counters.
        eprintln!(
            "wrote critical-path artifacts for {} harness(es) to {} \
             ({} wait intervals attributed in {:.1} ms)",
            by_id.len(),
            dir.display(),
            intervals,
            cp0.elapsed().as_secs_f64() * 1e3,
        );
    }

    let total_wall_s = t0.elapsed().as_secs_f64();

    if let Some(path) = &cli.bench_json {
        let harnesses = runs
            .iter()
            .map(|r| bench::enginebench::HarnessSummary {
                id: r.id,
                ranks: r.ranks,
                wall_s: r.wall_s,
                alloc_calls: r.alloc_calls,
                alloc_bytes: r.alloc_bytes,
            })
            .collect();
        let report = bench::enginebench::bench_report(
            cli.jobs,
            total_wall_s,
            harnesses,
            bench::enginebench::AllocStats {
                calls: run_region.0,
                bytes: run_region.1,
            },
        );
        let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("repro: cannot write {path:?}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote {} (sched speedup {:.2}x)",
            path.display(),
            report.engine.sched.speedup
        );
    }

    if let Some(path) = &cli.json {
        let report = runner::RunReport {
            schema_version: bench::explore::SCHEMA_VERSION,
            jobs: cli.jobs,
            total_wall_s,
            harnesses: runs,
            trace_windows,
            wait_states,
        };
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("repro: cannot write {path:?}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
}

/// Create an export directory, or exit 2 with a one-line message (covers
/// unwritable parents and the path already existing as a file).
fn ensure_dir(dir: &std::path::Path) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("repro: cannot create directory {}: {e}", dir.display());
        std::process::exit(2);
    }
}

/// Write an export file, or exit 2 with a one-line message.
fn write_or_die(path: &std::path::Path, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("repro: cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
}
