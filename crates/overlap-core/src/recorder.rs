//! The per-process instrumentation facade.
//!
//! A communication library owns one [`Recorder`] per process and calls into
//! it from its instrumented entry points. The recorder stamps events with its
//! [`Clock`], logs them into the fixed-size [`crate::queue::EventRing`], and
//! folds the ring into the [`crate::processor::Processor`] whenever it fills
//! — mirroring the paper's data collection / data processing split. With
//! `enabled = false` every operation is a branch-and-return, which is how the
//! instrumentation-overhead experiment (paper Figure 20) compares runs.

use crate::attribution::{self, WaitCause, WaitInterval};
use crate::bins::SizeBins;
use crate::clock::Clock;
use crate::event::{Event, EventKind};
use crate::observer::EventObserver;
use crate::processor::Processor;
use crate::queue::EventRing;
use crate::report::OverlapReport;
use crate::xfer_table::XferTimeTable;

/// Recorder configuration.
#[derive(Debug, Clone)]
pub struct RecorderOpts {
    /// Capacity of the circular event queue.
    pub queue_capacity: usize,
    /// Message-size bins for the breakdown report.
    pub bins: SizeBins,
    /// Master switch; when false the recorder is a no-op.
    pub enabled: bool,
    /// Capture a time-resolved [`crate::trace::RankTrace`] alongside the
    /// aggregates (raw events + per-transfer bound records, copied at fold
    /// time). Off by default: a trace grows with run length, which is
    /// exactly the overhead the paper's aggregate-only design avoids.
    /// Retrieve the capture with [`Recorder::finish_traced`].
    pub trace: bool,
}

impl Default for RecorderOpts {
    fn default() -> Self {
        RecorderOpts {
            queue_capacity: 4096,
            bins: SizeBins::default(),
            enabled: true,
            trace: false,
        }
    }
}

/// Per-process overlap instrumentation.
pub struct Recorder {
    clock: Box<dyn Clock>,
    ring: EventRing,
    proc: Processor,
    enabled: bool,
    trace: bool,
    rank: usize,
    events: u64,
    flushes: u64,
    observer: Option<Box<dyn EventObserver>>,
    bins: SizeBins,
    waits: Vec<WaitInterval>,
}

impl Recorder {
    /// Create a recorder for `rank` with the given clock, a-priori transfer
    /// time table, and options.
    pub fn new(
        rank: usize,
        clock: Box<dyn Clock>,
        table: XferTimeTable,
        opts: RecorderOpts,
    ) -> Self {
        let bins = opts.bins.clone();
        let mut proc = Processor::new(table, opts.bins);
        if opts.trace {
            proc.enable_trace();
        }
        Recorder {
            clock,
            ring: EventRing::new(opts.queue_capacity),
            proc,
            enabled: opts.enabled,
            trace: opts.trace,
            rank,
            events: 0,
            flushes: 0,
            observer: None,
            bins,
            waits: Vec::new(),
        }
    }

    /// Subscribe an external observer to the raw event stream (PERUSE-style;
    /// see [`crate::observer`]). At most one observer; replaces any prior.
    pub fn set_observer(&mut self, obs: Box<dyn EventObserver>) {
        self.observer = Some(obs);
    }

    /// Remove and return the observer (e.g. to recover a `TraceSink`).
    pub fn take_observer(&mut self) -> Option<Box<dyn EventObserver>> {
        self.observer.take()
    }

    /// Whether instrumentation is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Suspend event recording (the paper's application-level control over
    /// which code regions are monitored). While paused, the gap in the event
    /// stream is indistinguishable from user computation, so pause/resume
    /// must bracket whole call-free regions — pausing *inside* a library
    /// call would corrupt depth tracking (debug-asserted by the processor on
    /// the next event).
    pub fn pause(&mut self) {
        self.enabled = false;
    }

    /// Resume event recording after [`Recorder::pause`].
    pub fn resume(&mut self) {
        self.enabled = true;
    }

    /// Current time from the recorder's clock.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    #[inline]
    fn push(&mut self, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let t = self.clock.now();
        let e = Event::new(t, kind);
        if let Some(obs) = &mut self.observer {
            obs.on_event(&e);
        }
        if let Err(crate::queue::RingFull(e)) = self.ring.push(e) {
            // Ring at capacity: fold the backlog into the processor and
            // retry. Capacity is at least 2, so the retry cannot fail.
            self.flush();
            self.ring.push(e).expect("ring has room after flush");
        }
        self.events += 1;
    }

    fn flush(&mut self) {
        for e in self.ring.drain() {
            self.proc.process(e);
        }
        self.flushes += 1;
    }

    /// Application entered the communication library.
    pub fn call_enter(&mut self, name: &'static str) {
        self.push(EventKind::CallEnter { name });
    }

    /// Application left the communication library.
    pub fn call_exit(&mut self) {
        self.push(EventKind::CallExit);
    }

    /// The library posted the operation that approximately starts the
    /// physical transfer of user message `id` (`bytes` payload).
    pub fn xfer_begin(&mut self, id: u64, bytes: u64) {
        self.push(EventKind::XferBegin { id, bytes });
    }

    /// The library observed completion of transfer `id`. For transfers with
    /// no observable begin (e.g. eager receives) this is the only stamp.
    pub fn xfer_end(&mut self, id: u64, bytes: u64) {
        self.push(EventKind::XferEnd { id, bytes });
    }

    /// The library learned that transfer `id` was disturbed by the fabric
    /// (retransmission after loss, duplicate delivery, ...). The processor
    /// degrades that transfer's bounds to stay sound; flags for transfers
    /// that already completed are counted as anomalies instead.
    pub fn xfer_flag(&mut self, id: u64) {
        self.push(EventKind::XferFlag { id });
    }

    /// True when the library should classify and record its blocking
    /// intervals: a time-resolved trace is being captured and instrumentation
    /// is active. Cheap enough to gate the classification work itself.
    pub fn wait_tracing(&self) -> bool {
        self.trace && self.enabled
    }

    /// Record one classified blocking (or stall) interval
    /// `[start, end)` with its cause, and the transfer it was blocked on if
    /// a single one was identifiable. No-op unless
    /// [`Recorder::wait_tracing`] and `end > start` — recording costs zero
    /// virtual time either way, so traced and untraced runs stay
    /// time-identical.
    pub fn wait_state(&mut self, start: u64, end: u64, cause: WaitCause, xfer: Option<u64>) {
        if !self.wait_tracing() || end <= start {
            return;
        }
        self.waits.push(WaitInterval {
            start,
            end,
            cause,
            xfer,
        });
    }

    /// The library learned (from the fabric's causal edge on a completion or
    /// packet) that `ns` of transfer `xfer`'s flight time was fabric
    /// *contention* — queuing behind other traffic on shared links or the
    /// ingress engine — rather than propagation/serialization. Relabels the
    /// trailing portion of already-recorded [`WaitCause::WireDrain`] time
    /// pinned to that transfer as [`WaitCause::Contention`], splitting an
    /// interval when the budget ends inside it. Contention that exceeds the
    /// recorded wire-drain wait was hidden by compute (overlapped) and is
    /// dropped, keeping the reconciliation sum exact. No-op unless
    /// [`Recorder::wait_tracing`].
    ///
    /// Works because the library records its blocking waits *before* it
    /// processes the completion carrying the edge, so the relevant
    /// `WireDrain` intervals are already present.
    pub fn note_contention(&mut self, xfer: u64, ns: u64) {
        if !self.wait_tracing() || ns == 0 {
            return;
        }
        let mut budget = ns;
        // Latest-first: contention delays the tail of the drain.
        for i in (0..self.waits.len()).rev() {
            if budget == 0 {
                break;
            }
            let w = self.waits[i];
            if w.cause != WaitCause::WireDrain || w.xfer != Some(xfer) {
                continue;
            }
            let len = w.end - w.start;
            if len <= budget {
                self.waits[i].cause = WaitCause::Contention;
                budget -= len;
            } else {
                let split = w.end - budget;
                self.waits[i].end = split;
                self.waits.push(WaitInterval {
                    start: split,
                    end: w.end,
                    cause: WaitCause::Contention,
                    xfer: w.xfer,
                });
                budget = 0;
            }
        }
    }

    /// Application-level begin of a monitored code section.
    pub fn section_begin(&mut self, name: &'static str) {
        self.push(EventKind::SectionBegin { name });
    }

    /// Application-level end of the innermost monitored section.
    pub fn section_end(&mut self) {
        self.push(EventKind::SectionEnd);
    }

    /// Finish instrumentation and produce the per-process report (written to
    /// the per-process output file by the caller if desired).
    pub fn finish(self) -> OverlapReport {
        self.finish_traced().0
    }

    /// [`Recorder::finish`], additionally returning the time-resolved
    /// [`crate::trace::RankTrace`] when [`RecorderOpts::trace`] was set
    /// (`None` otherwise).
    /// The trace additionally carries the recorded wait-state intervals, and
    /// the report's metrics registry gains the per-cause attribution
    /// counters/histograms (`attr_ns/...`, `attr_ns_hist/...`).
    pub fn finish_traced(mut self) -> (OverlapReport, Option<crate::trace::RankTrace>) {
        let end = self.clock.now();
        self.flush();
        let (mut report, trace) =
            self.proc
                .finish_traced(end, self.rank, self.events, self.flushes);
        let trace = trace.map(|mut tr| {
            tr.waits = std::mem::take(&mut self.waits);
            let attr = attribution::attribute(&tr);
            attribution::fold_metrics(&attr, &self.bins, &mut report.metrics);
            tr
        });
        (report, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn recorder(clock: &ManualClock, capacity: usize) -> Recorder {
        let table = XferTimeTable::from_points(vec![(1, 400)]);
        Recorder::new(
            0,
            Box::new(clock.clone()),
            table,
            RecorderOpts {
                queue_capacity: capacity,
                ..Default::default()
            },
        )
    }

    #[test]
    fn end_to_end_isend_wait_pattern() {
        let clock = ManualClock::new();
        let mut r = recorder(&clock, 64);
        r.call_enter("Isend");
        r.xfer_begin(1, 100);
        clock.advance(10);
        r.call_exit();
        clock.advance(1000);
        r.call_enter("Wait");
        clock.advance(20);
        r.xfer_end(1, 100);
        r.call_exit();
        let report = r.finish();
        assert_eq!(report.total.transfers, 1);
        assert_eq!(report.total.max_overlap, 400);
        assert_eq!(report.total.min_overlap, 400 - 30);
        assert_eq!(report.user_compute_time, 1000);
        assert_eq!(report.comm_call_time, 30);
        assert_eq!(report.events_recorded, 6);
    }

    #[test]
    fn queue_flushes_preserve_results() {
        // Force many flushes with a tiny ring; aggregates must match a run
        // with a huge ring.
        let run = |capacity: usize| {
            let clock = ManualClock::new();
            let mut r = recorder(&clock, capacity);
            for i in 0..100u64 {
                r.call_enter("Isend");
                r.xfer_begin(i, 100);
                clock.advance(5);
                r.call_exit();
                clock.advance(500);
                r.call_enter("Wait");
                clock.advance(10);
                r.xfer_end(i, 100);
                r.call_exit();
                clock.advance(50);
            }
            r.finish()
        };
        let small = run(2);
        let large = run(1 << 16);
        assert!(small.queue_flushes > large.queue_flushes);
        assert_eq!(small.total, large.total);
        assert_eq!(small.user_compute_time, large.user_compute_time);
        assert_eq!(small.comm_call_time, large.comm_call_time);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let clock = ManualClock::new();
        let table = XferTimeTable::from_points(vec![(1, 400)]);
        let mut r = Recorder::new(
            0,
            Box::new(clock.clone()),
            table,
            RecorderOpts {
                enabled: false,
                ..Default::default()
            },
        );
        r.call_enter("Isend");
        r.xfer_begin(1, 100);
        clock.advance(100);
        r.xfer_end(1, 100);
        r.call_exit();
        let report = r.finish();
        assert_eq!(report.events_recorded, 0);
        assert_eq!(report.total.transfers, 0);
    }

    #[test]
    fn pause_excludes_a_region_from_monitoring() {
        let clock = ManualClock::new();
        let mut r = recorder(&clock, 64);
        // Monitored exchange.
        r.call_enter("Recv");
        clock.advance(10);
        r.xfer_end(1, 100);
        r.call_exit();
        // Unmonitored exchange.
        r.pause();
        r.call_enter("Recv");
        clock.advance(10);
        r.xfer_end(2, 100);
        r.call_exit();
        r.resume();
        // Monitored again.
        r.call_enter("Recv");
        clock.advance(10);
        r.xfer_end(3, 100);
        r.call_exit();
        let report = r.finish();
        assert_eq!(report.total.transfers, 2, "paused transfer must not count");
        assert_eq!(report.calls["Recv"].count, 2);
    }

    #[test]
    fn sections_flow_through_recorder() {
        let clock = ManualClock::new();
        let mut r = recorder(&clock, 8);
        r.section_begin("x_solve");
        r.call_enter("Recv");
        clock.advance(100);
        r.xfer_end(1, 64);
        r.call_exit();
        r.section_end();
        let report = r.finish();
        assert_eq!(report.sections["x_solve"].total.transfers, 1);
    }
}

#[cfg(test)]
mod observer_tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::observer::TraceSink;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn observer_sees_events_in_order() {
        let clock = ManualClock::new();
        let table = XferTimeTable::from_points(vec![(1, 100)]);
        let mut rec = Recorder::new(0, Box::new(clock.clone()), table, RecorderOpts::default());
        let seen: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let seen_in = Rc::clone(&seen);
        rec.set_observer(Box::new(move |e: &crate::event::Event| {
            seen_in.borrow_mut().push(e.t);
        }));
        rec.call_enter("X");
        clock.advance(5);
        rec.xfer_end(1, 10);
        clock.advance(5);
        rec.call_exit();
        let _ = rec.finish();
        assert_eq!(&*seen.borrow(), &[0, 5, 10]);
    }

    #[test]
    fn trace_sink_recoverable_after_run() {
        let clock = ManualClock::new();
        let table = XferTimeTable::from_points(vec![(1, 100)]);
        let mut rec = Recorder::new(0, Box::new(clock.clone()), table, RecorderOpts::default());
        rec.set_observer(Box::new(TraceSink::new(Vec::new())));
        rec.call_enter("Y");
        rec.call_exit();
        let obs = rec.take_observer().unwrap();
        // The report still aggregates normally alongside the trace.
        let report = rec.finish();
        assert_eq!(report.events_recorded, 2);
        drop(obs);
    }
}
