//! The "overlap doctor": run a workload, feed the per-process report to the
//! analyzer (paper Sec. 2.3's interpretation guidance as code), apply its
//! advice, and show the improvement.
//!
//! ```text
//! cargo run --release --example overlap_doctor
//! ```

use overlap_core::{analyze, AdviceOpts};
use overlap_suite::prelude::*;

/// A problematic app: rendezvous-sized halo pushes with an overlap attempt
/// that doesn't work (no progress during compute), plus a blocking tail.
fn before(mpi: &mut Mpi) {
    let other = 1 - mpi.rank();
    let big = vec![1u8; 800 << 10];
    for i in 0..15 {
        if mpi.rank() == 0 {
            mpi.section_begin("halo_push");
            let r = mpi.irecv(Src::Rank(other), TagSel::Is(1000 + i));
            let s = mpi.isend(other, i, &big);
            mpi.compute(ms(2));
            mpi.waitall(&[s, r]);
            mpi.section_end();
        } else {
            mpi.section_begin("halo_push");
            let r = mpi.irecv(Src::Rank(other), TagSel::Is(i));
            let s = mpi.isend(other, 1000 + i, &big);
            mpi.compute(ms(2));
            mpi.waitall(&[s, r]);
            mpi.section_end();
        }
    }
}

/// The same app after following the analyzer's advice: probes drive the
/// progress engine inside the computation window.
fn after(mpi: &mut Mpi) {
    let other = 1 - mpi.rank();
    let big = vec![1u8; 800 << 10];
    for i in 0..15 {
        let (stag, rtag) = if mpi.rank() == 0 {
            (i, 1000 + i)
        } else {
            (1000 + i, i)
        };
        mpi.section_begin("halo_push");
        let r = mpi.irecv(Src::Rank(other), TagSel::Is(rtag));
        let s = mpi.isend(other, stag, &big);
        for _ in 0..4 {
            mpi.compute(ms(2) / 5);
            mpi.iprobe(Src::Any, TagSel::Any);
        }
        mpi.compute(ms(2) / 5);
        mpi.waitall(&[s, r]);
        mpi.section_end();
    }
}

fn main() {
    let cfg = || MpiConfig::mvapich2();
    let run = |name: &str, body: fn(&mut Mpi)| {
        let out = run_mpi(
            2,
            NetConfig::default(),
            cfg(),
            RecorderOpts::default(),
            body,
        )
        .expect("simulation failed");
        let r = &out.reports[0];
        println!("== {name} ==");
        println!(
            "elapsed {:.2} ms | overlap min {:.1}% max {:.1}% | comm {:.2} ms",
            r.elapsed as f64 / 1e6,
            r.total.min_pct(),
            r.total.max_pct(),
            r.comm_call_time as f64 / 1e6,
        );
        println!(
            "{}",
            overlap_core::advice::render(&analyze(r, &AdviceOpts::default()))
        );
        r.clone()
    };

    let b = run("before (irecv + compute + waitall)", before);
    let a = run("after (probes drive the progress engine)", after);
    println!(
        "communication call time: {:.2} ms -> {:.2} ms ({:.0}% less)",
        b.comm_call_time as f64 / 1e6,
        a.comm_call_time as f64 / 1e6,
        100.0 * (b.comm_call_time - a.comm_call_time) as f64 / b.comm_call_time as f64,
    );
}
