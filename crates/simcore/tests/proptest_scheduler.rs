//! Property-based equivalence between the hierarchical timing wheel and the
//! reference `BinaryHeapSched`.
//!
//! The engine only ever schedules at or after the current virtual time (its
//! monotonicity invariant), so the workloads here maintain a pop floor and
//! push at `floor + delay`. Under that invariant the wheel must pop the
//! exact `(time, seq)` sequence the heap does — including FIFO tie-breaking
//! among entries that share a timestamp, which is what makes the scheduler
//! swap invisible in `repro` output.

use proptest::prelude::*;
use simcore::sched::{BinaryHeapSched, TimingWheel};

/// Pop both schedulers until empty, requiring identical results.
fn drain_matches(
    wheel: &mut TimingWheel<u64>,
    heap: &mut BinaryHeapSched<u64>,
) -> Result<(), proptest::TestCaseError> {
    loop {
        let w = wheel.pop();
        let h = heap.pop();
        prop_assert_eq!(&w, &h, "wheel {:?} != heap {:?}", w, h);
        if w.is_none() {
            prop_assert_eq!(wheel.len(), 0);
            return Ok(());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wheel_matches_heap_on_interleaved_ops(
        ops in prop::collection::vec((0u64..5_000, 0usize..4), 1..250),
    ) {
        let mut wheel = TimingWheel::new();
        let mut heap = BinaryHeapSched::new();
        let mut floor = 0u64;
        for (seq, &(delay, pops)) in ops.iter().enumerate() {
            let seq = seq as u64;
            let t = floor + delay;
            wheel.push(t, seq, seq);
            heap.push(t, seq, seq);
            for _ in 0..pops {
                let w = wheel.pop();
                let h = heap.pop();
                prop_assert_eq!(&w, &h, "wheel {:?} != heap {:?}", w, h);
                match w {
                    Some((t, ..)) => floor = t,
                    None => break,
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
        drain_matches(&mut wheel, &mut heap)?;
    }

    #[test]
    fn wheel_matches_heap_across_distant_deadlines(
        delays in prop::collection::vec(0u64..(1 << 40), 1..100),
        pop_every in 1usize..8,
    ) {
        // Huge delays land in the wheel's upper levels and must cascade back
        // down through intermediate slots before popping.
        let mut wheel = TimingWheel::new();
        let mut heap = BinaryHeapSched::new();
        let mut floor = 0u64;
        for (i, &d) in delays.iter().enumerate() {
            let seq = i as u64;
            wheel.push(floor + d, seq, seq);
            heap.push(floor + d, seq, seq);
            if (i + 1) % pop_every == 0 {
                let w = wheel.pop();
                let h = heap.pop();
                prop_assert_eq!(&w, &h, "wheel {:?} != heap {:?}", w, h);
                if let Some((t, ..)) = w {
                    floor = t;
                }
            }
        }
        drain_matches(&mut wheel, &mut heap)?;
    }

    #[test]
    fn same_timestamp_entries_pop_fifo(
        times in prop::collection::vec(0u64..8, 2..64),
    ) {
        // Timestamps drawn from a tiny range guarantee heavy collisions;
        // ties must come back in push (seq) order from both schedulers.
        let mut wheel = TimingWheel::new();
        let mut heap = BinaryHeapSched::new();
        for (i, &t) in times.iter().enumerate() {
            wheel.push(t, i as u64, i as u64);
            heap.push(t, i as u64, i as u64);
        }
        let mut prev: Option<(u64, u64)> = None;
        loop {
            let w = wheel.pop();
            let h = heap.pop();
            prop_assert_eq!(&w, &h, "wheel {:?} != heap {:?}", w, h);
            let Some((t, s, _)) = w else { break };
            if let Some((pt, ps)) = prev {
                prop_assert!(
                    (t, s) > (pt, ps),
                    "non-monotonic pop: ({}, {}) after ({}, {})", t, s, pt, ps
                );
            }
            prev = Some((t, s));
        }
    }

    #[test]
    fn reinsertion_at_the_current_tick_stays_ordered(
        reinserts in prop::collection::vec(0u64..3, 1..80),
    ) {
        // The engine's zero-delay wakes push at exactly the popped time;
        // those must queue behind nothing earlier and in seq order.
        let mut wheel = TimingWheel::new();
        let mut heap = BinaryHeapSched::new();
        let mut seq = 0u64;
        wheel.push(0, seq, seq);
        heap.push(0, seq, seq);
        seq += 1;
        for &extra in &reinserts {
            let w = wheel.pop();
            let h = heap.pop();
            prop_assert_eq!(&w, &h, "wheel {:?} != heap {:?}", w, h);
            let Some((t, ..)) = w else { break };
            for d in 0..=extra {
                wheel.push(t + d, seq, seq);
                heap.push(t + d, seq, seq);
                seq += 1;
            }
        }
        drain_matches(&mut wheel, &mut heap)?;
    }
}
