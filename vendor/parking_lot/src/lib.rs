//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` with the `parking_lot` calling convention:
//! `lock()` returns the guard directly and poisoning is ignored.

use std::fmt;
use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never fails.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
