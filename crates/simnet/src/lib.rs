#![warn(missing_docs)]

//! # simnet — simulated RDMA-capable cluster fabric
//!
//! Models the communication hardware the paper's instrumented libraries ran
//! on: per-node NICs with serializing egress DMA engines, a switched fabric
//! with a latency + bandwidth cost model, two-sided *send* packets (consumed
//! by the remote host), and one-sided *RDMA Read / RDMA Write* operations
//! that move data between registered memory regions **without remote host
//! involvement** — the property that makes computation-communication overlap
//! possible in the first place.
//!
//! Host-visible outcomes (completion-queue entries and received packets) are
//! only observed when the host *polls*; data placement happens in background
//! virtual time. The split between "NIC did it" and "host noticed it" is
//! exactly what the paper's min/max overlap bounds are about.
//!
//! Every data operation is recorded with its physical `[start, end)` interval
//! so tests can compare the instrumentation's bounds against ground truth.

pub mod arena;
pub mod cluster;
pub mod config;
pub mod fault;
pub mod memory;
pub mod nic;
pub mod packet;
pub mod topology;
pub mod truth;
pub mod world;

pub use cluster::{Cluster, ClusterOutcome};
pub use config::NetConfig;
pub use fault::{FaultEvent, FaultKind, FaultPlan, LinkDegradation, NicStall};
pub use memory::RegionId;
pub use nic::{CausalEdge, Completion, WrId};
pub use packet::Packet;
pub use topology::{
    BackgroundJob, BackgroundJobBuilder, Dragonfly, FatTree, FlatCrossbar, Hop, Topology,
    TopologySpec, TrafficPattern, LINK_DEDICATED,
};
pub use truth::{TransferKind, TransferRecord};
pub use world::{NicStats, SharedWorld, World, XferId};
