//! Non-blocking collectives.
//!
//! The paper's FT analysis (Sec. 4.2) shows a blocking `Alltoall` moving
//! long messages with *zero* opportunity for overlap — the whole transpose
//! happens inside one library call. The remedy the MPI community eventually
//! standardized (MPI-3) is non-blocking collectives: initiate, compute,
//! complete. This module implements them as *schedules advanced by the
//! polling progress engine*: each active collective is a small state machine
//! whose rounds post ordinary (instrumented) point-to-point operations, so
//! the overlap framework observes their transfers exactly like any others.
//!
//! Implemented: [`Mpi::ibarrier`], [`Mpi::ibcast`], [`Mpi::ialltoall`],
//! [`Mpi::iallreduce`] (ring algorithm: reduce-scatter + allgather).
//!
//! Like blocking collectives, all members must initiate the same collectives
//! in the same order per communicator.

use crate::comm::Comm;
use crate::mpi::Mpi;
use crate::types::{bytes_to_f64s, f64s_to_bytes, ReduceOp, Request, Src, TagSel};

/// Handle to an in-flight non-blocking collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CollHandle(pub(crate) u64);

/// Result of a completed non-blocking collective.
#[derive(Debug)]
pub enum CollResult {
    /// Barrier: nothing.
    Empty,
    /// Broadcast: the propagated payload.
    Data(Vec<u8>),
    /// Alltoall: one block per communicator rank.
    Blocks(Vec<Vec<u8>>),
    /// Allreduce: the reduced vector.
    Vals(Vec<f64>),
}

impl CollResult {
    /// Unwrap a broadcast payload.
    pub fn into_data(self) -> Vec<u8> {
        match self {
            CollResult::Data(d) => d,
            other => panic!("expected Data, got {other:?}"),
        }
    }

    /// Unwrap alltoall blocks.
    pub fn into_blocks(self) -> Vec<Vec<u8>> {
        match self {
            CollResult::Blocks(b) => b,
            other => panic!("expected Blocks, got {other:?}"),
        }
    }

    /// Unwrap reduced values.
    pub fn into_vals(self) -> Vec<f64> {
        match self {
            CollResult::Vals(v) => v,
            other => panic!("expected Vals, got {other:?}"),
        }
    }
}

pub(crate) struct ICollState {
    pub(crate) done: bool,
    result: Option<CollResult>,
    kind: Kind,
}

impl ICollState {
    pub(crate) fn take_result(mut self) -> CollResult {
        self.result.take().expect("collective incomplete")
    }
}

enum Kind {
    Barrier {
        comm: Comm,
        tag: u64,
        dist: usize,
        round: u64,
        inflight: Option<(Request, Request)>,
    },
    Bcast {
        comm: Comm,
        root: usize,
        tag: u64,
        data: Option<Vec<u8>>,
        recv: Option<Request>,
        sends: Option<Vec<Request>>,
    },
    Alltoall {
        recvs: Vec<(usize, Request)>,
        sends: Vec<Request>,
        out: Vec<Option<Vec<u8>>>,
    },
    Allreduce {
        comm: Comm,
        tag: u64,
        op: ReduceOp,
        chunks: Vec<Vec<f64>>,
        /// 0 = reduce-scatter ring, 1 = allgather ring, 2 = finished.
        phase: u8,
        step: usize,
        inflight: Option<(Request, Request, usize)>,
    },
}

impl Mpi<'_> {
    /// Non-blocking barrier.
    pub fn ibarrier(&mut self) -> CollHandle {
        self.rec.call_enter("MPI_Ibarrier");
        let comm = self.comm_world();
        let tag = self.coll_tag(&comm);
        let state = ICollState {
            done: comm.size() <= 1,
            result: Some(CollResult::Empty),
            kind: Kind::Barrier {
                comm,
                tag,
                dist: 1,
                round: 0,
                inflight: None,
            },
        };
        let h = self.icoll_insert(state);
        self.progress();
        self.rec.call_exit();
        h
    }

    /// Non-blocking broadcast from `root` (binomial tree). The root passes
    /// the payload; other ranks pass `None`.
    pub fn ibcast(&mut self, root: usize, data: Option<Vec<u8>>) -> CollHandle {
        self.rec.call_enter("MPI_Ibcast");
        let comm = self.comm_world();
        let tag = self.coll_tag(&comm);
        let me = comm.rank();
        assert_eq!(me == root, data.is_some(), "exactly the root supplies data");
        let state = ICollState {
            done: false,
            result: None,
            kind: Kind::Bcast {
                comm,
                root,
                tag,
                data,
                recv: None,
                sends: None,
            },
        };
        let h = self.icoll_insert(state);
        self.progress();
        self.rec.call_exit();
        h
    }

    /// Non-blocking all-to-all: all sends and receives are posted
    /// immediately (single round), so the transfers proceed while the
    /// application computes — the cure for FT's blocking transpose.
    pub fn ialltoall(&mut self, blocks: &[Vec<u8>]) -> CollHandle {
        self.rec.call_enter("MPI_Ialltoall");
        let comm = self.comm_world();
        let n = comm.size();
        assert_eq!(blocks.len(), n, "ialltoall needs one block per rank");
        let me = comm.rank();
        let tag = self.coll_tag(&comm);
        let mut out: Vec<Option<Vec<u8>>> = vec![None; n];
        out[me] = Some(blocks[me].clone());
        let mut recvs = Vec::with_capacity(n - 1);
        let mut sends = Vec::with_capacity(n - 1);
        for k in 1..n {
            let to = comm.world_rank((me + k) % n);
            let from_idx = (me + n - k) % n;
            let from = comm.world_rank(from_idx);
            recvs.push((
                from_idx,
                self.irecv_raw(Src::Rank(from), TagSel::Is(tag + k as u64)),
            ));
            sends.push(self.isend_raw(to, tag + k as u64, &blocks[(me + k) % n], true, false));
        }
        let state = ICollState {
            done: n <= 1,
            result: (n <= 1).then(|| CollResult::Blocks(vec![blocks[0].clone()])),
            kind: Kind::Alltoall { recvs, sends, out },
        };
        let h = self.icoll_insert(state);
        self.progress();
        self.rec.call_exit();
        h
    }

    /// Non-blocking allreduce (ring algorithm: a reduce-scatter ring
    /// followed by an allgather ring, `2(n−1)` rounds).
    pub fn iallreduce(&mut self, vals: &[f64], op: ReduceOp) -> CollHandle {
        self.rec.call_enter("MPI_Iallreduce");
        let comm = self.comm_world();
        let n = comm.size();
        let tag = self.coll_tag(&comm);
        // Split into n chunks (possibly empty at the tail).
        let per = vals.len().div_ceil(n.max(1)).max(1);
        let chunks: Vec<Vec<f64>> = (0..n)
            .map(|c| {
                let lo = (c * per).min(vals.len());
                let hi = ((c + 1) * per).min(vals.len());
                vals[lo..hi].to_vec()
            })
            .collect();
        let state = ICollState {
            done: n <= 1,
            result: (n <= 1).then(|| CollResult::Vals(vals.to_vec())),
            kind: Kind::Allreduce {
                comm,
                tag,
                op,
                chunks,
                phase: 0,
                step: 0,
                inflight: None,
            },
        };
        let h = self.icoll_insert(state);
        self.progress();
        self.rec.call_exit();
        h
    }

    /// Non-blocking test of a collective.
    pub fn icoll_test(&mut self, h: CollHandle) -> bool {
        self.rec.call_enter("MPI_Test");
        self.progress();
        let done = self.icoll_done(h);
        self.rec.call_exit();
        done
    }

    /// Complete a non-blocking collective and return its result.
    pub fn icoll_wait(&mut self, h: CollHandle) -> CollResult {
        self.rec.call_enter("MPI_Wait");
        loop {
            self.progress();
            if self.icoll_done(h) {
                break;
            }
            self.icoll_park();
        }
        let result = self.icoll_take(h);
        self.rec.call_exit();
        result
    }

    // ---- machine advancement (called from `progress`) ---------------------

    pub(crate) fn advance_collectives_impl(&mut self) {
        let ids = self.icoll_ids();
        for id in ids {
            let Some(mut st) = self.icoll_remove(id) else {
                continue;
            };
            if !st.done {
                self.advance_one(&mut st);
            }
            self.icoll_put_back(id, st);
        }
    }

    fn advance_one(&mut self, st: &mut ICollState) {
        match &mut st.kind {
            Kind::Barrier {
                comm,
                tag,
                dist,
                round,
                inflight,
            } => {
                let n = comm.size();
                loop {
                    if let Some((s, r)) = *inflight {
                        if self.req_done(s) && self.req_done(r) {
                            self.take_status(s);
                            self.take_status(r);
                            *inflight = None;
                            *dist *= 2;
                            *round += 1;
                        } else {
                            return;
                        }
                    }
                    if *dist >= n {
                        st.done = true;
                        st.result = Some(CollResult::Empty);
                        return;
                    }
                    let to = comm.world_rank((comm.rank() + *dist) % n);
                    let from = comm.world_rank((comm.rank() + n - *dist) % n);
                    let t = *tag + *round;
                    let s = self.isend_raw(to, t, &[], false, false);
                    let r = self.irecv_raw(Src::Rank(from), TagSel::Is(t));
                    *inflight = Some((s, r));
                }
            }
            Kind::Bcast {
                comm,
                root,
                tag,
                data,
                recv,
                sends,
            } => {
                let n = comm.size();
                let vrank = (comm.rank() + n - *root) % n;
                // Phase 1: non-roots receive from their parent.
                if data.is_none() {
                    if recv.is_none() {
                        let parent_v = vrank - lowest_set_bit(vrank);
                        let parent = comm.world_rank((parent_v + *root) % n);
                        *recv = Some(self.irecv_raw(Src::Rank(parent), TagSel::Is(*tag)));
                    }
                    let r = recv.unwrap();
                    if !self.req_done(r) {
                        return;
                    }
                    *data = Some(self.take_status(r).into_data().to_vec());
                }
                // Phase 2: send to children.
                if sends.is_none() {
                    let payload = data.clone().unwrap();
                    let start_mask = if vrank == 0 {
                        n.next_power_of_two()
                    } else {
                        lowest_set_bit(vrank)
                    };
                    let mut reqs = Vec::new();
                    let mut mask = start_mask >> 1;
                    while mask > 0 {
                        if vrank + mask < n {
                            let child = comm.world_rank((vrank + mask + *root) % n);
                            reqs.push(self.isend_raw(child, *tag, &payload, true, false));
                        }
                        mask >>= 1;
                    }
                    *sends = Some(reqs);
                }
                let all_sent = sends.as_ref().unwrap().iter().all(|&s| self.req_done(s));
                if all_sent {
                    for s in sends.take().unwrap() {
                        self.take_status(s);
                    }
                    st.done = true;
                    st.result = Some(CollResult::Data(data.take().unwrap()));
                }
            }
            Kind::Alltoall { recvs, sends, out } => {
                recvs.retain(|&(idx, r)| {
                    if self.req_done(r) {
                        let st = self.take_status(r);
                        out[idx] = Some(st.into_data().to_vec());
                        false
                    } else {
                        true
                    }
                });
                sends.retain(|&s| {
                    if self.req_done(s) {
                        self.take_status(s);
                        false
                    } else {
                        true
                    }
                });
                if recvs.is_empty() && sends.is_empty() {
                    st.done = true;
                    st.result = Some(CollResult::Blocks(
                        out.iter_mut().map(|o| o.take().unwrap()).collect(),
                    ));
                }
            }
            Kind::Allreduce {
                comm,
                tag,
                op,
                chunks,
                phase,
                step,
                inflight,
            } => {
                let n = comm.size();
                let me = comm.rank();
                let right = comm.world_rank((me + 1) % n);
                let left = comm.world_rank((me + n - 1) % n);
                loop {
                    if let Some((s, r, recv_chunk)) = *inflight {
                        if self.req_done(s) && self.req_done(r) {
                            self.take_status(s);
                            let incoming = bytes_to_f64s(&self.take_status(r).into_data());
                            if *phase == 0 {
                                op.apply(&mut chunks[recv_chunk], &incoming);
                            } else {
                                chunks[recv_chunk] = incoming;
                            }
                            *inflight = None;
                            *step += 1;
                            if *step == n - 1 {
                                *step = 0;
                                *phase += 1;
                            }
                        } else {
                            return;
                        }
                    }
                    if *phase >= 2 {
                        st.done = true;
                        st.result = Some(CollResult::Vals(chunks.concat()));
                        return;
                    }
                    let (send_chunk, recv_chunk) = if *phase == 0 {
                        ((me + n - *step) % n, (me + n - *step - 1) % n)
                    } else {
                        ((me + 1 + n - *step) % n, (me + n - *step) % n)
                    };
                    let t = *tag + (*phase as u64) * 1000 + *step as u64;
                    let payload = f64s_to_bytes(&chunks[send_chunk]);
                    let s = self.isend_raw(right, t, &payload, true, false);
                    let r = self.irecv_raw(Src::Rank(left), TagSel::Is(t));
                    *inflight = Some((s, r, recv_chunk));
                }
            }
        }
    }
}

fn lowest_set_bit(v: usize) -> usize {
    v & v.wrapping_neg()
}
