//! The deadlock detector must do better than "it hung": its error names
//! every blocked rank and what each was blocked on (last library call,
//! pending request counts) so a wedged protocol can be diagnosed from the
//! error alone.

use overlap_core::RecorderOpts;
use simcore::SimError;
use simmpi::{MpiConfig, Src, TagSel};
use simnet::NetConfig;

#[test]
fn mismatched_recv_reports_blocked_ranks_and_state() {
    // Rank 0 posts a recv nobody will ever satisfy (the matching send does
    // not exist); rank 1 proceeds straight to finalize. Rank 0 wedges in
    // MPI_Recv, which in turn wedges rank 1 in the finalize barrier.
    let err = simmpi::run_mpi(
        2,
        NetConfig::default(),
        MpiConfig::default(),
        RecorderOpts::default(),
        |mpi| {
            if mpi.rank() == 0 {
                let _ = mpi.recv(Src::Rank(1), TagSel::Is(77));
            }
        },
    )
    .unwrap_err();

    let SimError::Deadlock { parked, diags, .. } = &err else {
        panic!("expected deadlock, got {err}");
    };
    assert_eq!(parked, &[0, 1], "both ranks should be stuck");
    assert_eq!(diags.len(), 2, "one diagnostic per parked rank");

    let d0 = &diags[0];
    assert_eq!(d0.rank, 0);
    assert_eq!(d0.last_call.as_deref(), Some("MPI_Recv"));
    let blocked = d0.blocked_on.as_deref().expect("rank 0 left a note");
    assert!(
        blocked.contains("1 posted recvs"),
        "note should count the unmatched recv: {blocked}"
    );

    let d1 = &diags[1];
    assert_eq!(d1.rank, 1);
    assert_eq!(d1.last_call.as_deref(), Some("MPI_Finalize"));
    assert!(d1.blocked_on.is_some(), "rank 1 left a note");

    // The rendered error is the first thing a user sees: it must name the
    // ranks, their blocked-on state, and their last calls.
    let msg = err.to_string();
    assert!(msg.contains("ranks [0, 1]"), "missing rank list: {msg}");
    assert!(
        msg.contains("rank 0: blocked on"),
        "missing rank 0 state: {msg}"
    );
    assert!(
        msg.contains("last call MPI_Recv"),
        "missing last call: {msg}"
    );
    assert!(
        msg.contains("last call MPI_Finalize"),
        "missing rank 1 call: {msg}"
    );
}

#[test]
fn head_to_head_blocking_sends_name_the_send_call() {
    let err = simmpi::run_mpi(
        2,
        NetConfig::default(),
        MpiConfig::mvapich2(),
        RecorderOpts::default(),
        |mpi| {
            let other = 1 - mpi.rank();
            let big = vec![0u8; 1 << 20];
            mpi.send(other, 1, &big);
            let _ = mpi.recv(Src::Rank(other), TagSel::Is(1));
        },
    )
    .unwrap_err();
    let SimError::Deadlock { diags, .. } = &err else {
        panic!("expected deadlock, got {err}");
    };
    for d in diags {
        assert_eq!(d.last_call.as_deref(), Some("MPI_Send"));
        let note = d.blocked_on.as_deref().expect("note present");
        assert!(
            note.contains("incomplete requests"),
            "note should summarize pending state: {note}"
        );
    }
}
