//! System-level integration: the perf_main-style table methodology, report
//! persistence, determinism, and cross-library consistency.

use overlap_suite::prelude::*;
use simcore::SimOpts;

/// The paper measures the a-priori `xfer_time` table with a ping-pong
/// microbenchmark (`perf_main`). Reproduce that: measure one-way transfer
/// times in the simulator via ping-pong halving and compare with the
/// analytic table the harness uses — they must agree closely, validating
/// the methodology end to end.
#[test]
fn measured_ping_pong_matches_analytic_table() {
    use std::sync::{Arc, Mutex};
    let net = NetConfig::default();
    let analytic = default_xfer_table(&net);
    let measured: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let measured_in = Arc::clone(&measured);
    // Use raw RDMA writes (what perf_main exercises), not the MPI layer, so
    // no protocol overhead pollutes the measurement.
    let cluster = simnet::Cluster::new(2, net.clone());
    cluster
        .run(SimOpts::default(), move |ctx, world| {
            if ctx.rank() != 0 {
                // Passive target: register landing regions up front.
                let mut w = world.lock();
                for (i, &sz) in [1usize << 10, 16 << 10, 128 << 10, 1 << 20]
                    .iter()
                    .enumerate()
                {
                    let r = w.register(1, vec![0u8; sz]);
                    assert_eq!(r.0, i as u64, "deterministic region ids");
                }
                return;
            }
            ctx.compute(1_000_000); // let the target register
            for (i, &sz) in [1usize << 10, 16 << 10, 128 << 10, 1 << 20]
                .iter()
                .enumerate()
            {
                let t0 = ctx.now();
                {
                    let mut w = world.lock();
                    w.post_rdma_write(
                        0,
                        1,
                        simnet::RegionId(i as u64),
                        0,
                        bytes::Bytes::from(vec![1u8; sz]),
                        0,
                        None,
                        None,
                    );
                }
                // Wait for the local completion (placement time).
                loop {
                    if world.lock().poll_cq(0).is_some() {
                        break;
                    }
                    ctx.park();
                }
                measured_in
                    .lock()
                    .unwrap()
                    .push((sz as u64, ctx.now() - t0));
            }
        })
        .unwrap();
    for (sz, t) in measured.lock().unwrap().iter() {
        let a = analytic.lookup(*sz);
        let rel = (*t as f64 - a as f64).abs() / a as f64;
        assert!(
            rel < 0.02,
            "size {sz}: measured {t} vs analytic {a} ({:.1}% off)",
            rel * 100.0
        );
    }
}

#[test]
fn reports_roundtrip_through_json_files() {
    let out = run_mpi(
        2,
        NetConfig::default(),
        MpiConfig::mvapich2(),
        RecorderOpts::default(),
        |mpi| {
            mpi.section_begin("solve");
            for i in 0..10 {
                if mpi.rank() == 0 {
                    let r = mpi.isend(1, i, &vec![2u8; 64 << 10]);
                    mpi.compute(us(100));
                    mpi.wait(r);
                } else {
                    mpi.recv(Src::Rank(0), TagSel::Is(i));
                }
            }
            mpi.section_end();
        },
    )
    .unwrap();
    let dir = std::env::temp_dir().join("overlap_suite_reports");
    std::fs::create_dir_all(&dir).unwrap();
    // The paper: "an output file is generated for each process".
    for r in &out.reports {
        let path = dir.join(format!("overlap.rank{}.json", r.rank));
        r.save_json(&path).unwrap();
        let loaded = OverlapReport::load_json(&path).unwrap();
        assert_eq!(loaded.rank, r.rank);
        assert_eq!(loaded.total, r.total);
        assert_eq!(loaded.sections.len(), r.sections.len());
        assert_eq!(loaded.calls["MPI_Init"], r.calls["MPI_Init"]);
        // Text rendering works on the loaded report.
        let text = loaded.render_text();
        assert!(text.contains("overlap report"));
        assert!(text.contains("solve"));
    }
}

#[test]
fn xfer_table_roundtrips_through_disk_and_drives_bounds() {
    let net = NetConfig::default();
    let table = default_xfer_table(&net);
    let path = std::env::temp_dir().join("overlap_suite_xfer_table.json");
    table.save(&path).unwrap();
    let loaded = XferTimeTable::load(&path).unwrap();
    let out = simmpi::run_mpi_with(
        2,
        net,
        MpiConfig::default(),
        RecorderOpts::default(),
        loaded,
        SimOpts::default(),
        |mpi| {
            if mpi.rank() == 0 {
                let r = mpi.isend(1, 0, &[1u8; 10 << 10]);
                mpi.compute(ms(1));
                mpi.wait(r);
            } else {
                mpi.recv(Src::Rank(0), TagSel::Is(0));
            }
        },
    )
    .unwrap();
    // Sender fully overlapped a 10 KB eager transfer under 1 ms of compute.
    assert!(out.reports[0].total.min_pct() > 95.0);
}

#[test]
fn identical_runs_are_bit_identical() {
    let run_once = || {
        run_mpi(
            4,
            NetConfig::default(),
            MpiConfig::open_mpi_pipelined(),
            RecorderOpts::default(),
            |mpi| {
                let n = mpi.nranks();
                for i in 0..8 {
                    let next = (mpi.rank() + 1) % n;
                    let prev = (mpi.rank() + n - 1) % n;
                    let s = mpi.isend(next, i, &vec![5u8; 150 << 10]);
                    let r = mpi.irecv(Src::Rank(prev), TagSel::Is(i));
                    mpi.compute(us(321));
                    mpi.waitall(&[s, r]);
                    mpi.allreduce(&[1.0], ReduceOp::Sum);
                }
            },
        )
        .unwrap()
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.events_processed, b.events_processed);
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.total, rb.total);
        assert_eq!(ra.user_compute_time, rb.user_compute_time);
        assert_eq!(ra.comm_call_time, rb.comm_call_time);
    }
    for (ta, tb) in a.transfers.iter().zip(&b.transfers) {
        assert_eq!(ta.phys_start, tb.phys_start);
        assert_eq!(ta.phys_end, tb.phys_end);
    }
}

#[test]
fn mpi_and_armci_agree_on_fabric_accounting() {
    // Move the same bytes with both libraries; ground-truth byte counts and
    // transfer-time sums must agree (the fabric model is library-agnostic).
    let volume = 512usize << 10;
    let reps = 8;
    let mpi_out = run_mpi(
        2,
        NetConfig::default(),
        MpiConfig::open_mpi_leave_pinned(),
        RecorderOpts::default(),
        move |mpi| {
            for i in 0..reps {
                if mpi.rank() == 0 {
                    mpi.send(1, i as u64, &vec![1u8; volume]);
                } else {
                    mpi.recv(Src::Rank(0), TagSel::Is(i as u64));
                }
            }
        },
    )
    .unwrap();
    let armci_out = run_armci(2, NetConfig::default(), RecorderOpts::default(), move |a| {
        let mem = a.malloc(volume);
        a.barrier();
        if a.rank() == 0 {
            for _ in 0..reps {
                a.put(&mem, 1, 0, &vec![1u8; volume]);
            }
        }
        a.barrier();
    })
    .unwrap();
    let sum = |ts: &[simnet::TransferRecord]| -> (usize, u64) {
        (
            ts.iter().map(|t| t.bytes).sum(),
            ts.iter().map(|t| t.duration()).sum(),
        )
    };
    let (mpi_bytes, mpi_dur) = sum(&mpi_out.transfers);
    let (armci_bytes, armci_dur) = sum(&armci_out.transfers);
    assert_eq!(mpi_bytes, armci_bytes);
    // Same payloads, same fabric: durations within 1% (protocol timing
    // differs slightly in when DMAs start, not how long they take).
    let rel = (mpi_dur as f64 - armci_dur as f64).abs() / mpi_dur as f64;
    assert!(rel < 0.01, "durations diverge: {mpi_dur} vs {armci_dur}");
}

#[test]
fn switch_topology_shapes_latency() {
    // 2 nodes on the same leaf vs across leaves: the cross-switch pair pays
    // the extra hop on every message, visible in the wait-time stats.
    let run_pair = |a: usize, b: usize| {
        let net = NetConfig {
            switch_radix: Some(2),
            ..NetConfig::default()
        };
        let out = run_mpi(
            4,
            net,
            MpiConfig::default(),
            RecorderOpts::default(),
            move |mpi| {
                if mpi.rank() == a {
                    for i in 0..10 {
                        let r = mpi.irecv(Src::Rank(b), TagSel::Is(i));
                        mpi.send(b, 100 + i, &[1u8; 64]);
                        mpi.wait(r);
                    }
                } else if mpi.rank() == b {
                    for i in 0..10 {
                        let r = mpi.irecv(Src::Rank(a), TagSel::Is(100 + i));
                        mpi.wait(r);
                        mpi.send(a, i, &[1u8; 64]);
                    }
                }
            },
        )
        .unwrap();
        out.reports[a].calls["MPI_Wait"].avg()
    };
    let same_leaf = run_pair(0, 1); // nodes 0,1 share a radix-2 switch
    let cross_leaf = run_pair(0, 2); // nodes 0,2 are on different switches
                                     // Each round trip crosses the fabric twice; 2 us extra per direction.
    assert!(
        cross_leaf > same_leaf + 3_000.0,
        "cross-switch wait should include extra hops: {same_leaf} vs {cross_leaf}"
    );
}

#[test]
fn cluster_summary_merges_a_real_run() {
    use overlap_core::ClusterSummary;
    let out = run_mpi(
        4,
        NetConfig::default(),
        MpiConfig::default(),
        RecorderOpts::default(),
        |mpi| {
            let n = mpi.nranks();
            for i in 0..5 {
                let next = (mpi.rank() + 1) % n;
                let prev = (mpi.rank() + n - 1) % n;
                let s = mpi.isend(next, i, &[1u8; 8192]);
                let r = mpi.irecv(Src::Rank(prev), TagSel::Is(i));
                mpi.compute(us(100));
                mpi.waitall(&[s, r]);
            }
        },
    )
    .unwrap();
    let sum = ClusterSummary::merge(&out.reports);
    assert_eq!(sum.ranks, 4);
    // Every rank sent and received 5 messages: 10 accounted per rank.
    assert_eq!(sum.total.transfers, 40);
    let per_rank: u64 = out.reports.iter().map(|r| r.total.transfers).sum();
    assert_eq!(sum.total.transfers, per_rank);
    assert!(sum.worst_max_pct <= sum.best_max_pct);
}
