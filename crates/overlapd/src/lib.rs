#![warn(missing_docs)]

//! # overlapd — streaming overlap-analysis service
//!
//! A single-binary server (exposed through `repro serve`) that accepts
//! concurrent **event streams** — the same JSONL schema the batch pipeline
//! exports as `<id>.events.jsonl` — and computes overlap bounds and
//! wait-state attribution *incrementally*, with bounded memory, while runs
//! are still in flight. See `docs/SERVICE.md` for the wire protocol, the
//! memory model, and the equivalence guarantee.
//!
//! * [`service::Service`] — the multi-session registry: one
//!   [`overlap_core::stream::SessionFold`] per pushed stream, plus the
//!   merged cross-session fleet view,
//! * [`server::Server`] — the TCP front end: length-framed ingest
//!   (`OVLP1`) and a minimal HTTP/1.1 read side on one port, with graceful
//!   shutdown,
//! * [`client`] — the `repro push` / `--stream` client half of the framed
//!   protocol.
//!
//! **Equivalence.** For the same event stream, every artifact this service
//! serves is byte-identical to the batch pipeline's: the attribution JSON
//! and collapsed flamegraph text come from the shared constructors in
//! [`overlap_core::artifact`], the windowed series from
//! [`overlap_core::trace::windowed_parts`], and the per-rank summaries from
//! the same fold the in-process recorder runs.
//!
//! **Memory.** Raw events are folded at ring capacity and never retained;
//! server memory is O(sessions × ranks × ring) plus the derived records
//! (bounds, call spans, waits) the served artifacts require — never
//! O(raw events). Ingest applies frames under the session lock, so TCP flow
//! control is the backpressure: a fast client blocks on a busy session
//! instead of growing a queue, and no frame may exceed
//! [`server::MAX_FRAME`].

pub mod client;
pub mod http;
pub mod server;
pub mod service;

pub use client::{push_file, push_text, PushError};
pub use server::Server;
pub use service::{FleetView, Service, SessionInfo};
