//! NAS benchmark CLI.
//!
//! ```text
//! cargo run --release -p nasbench --bin nas -- <bench> [class] [np]
//! cargo run --release -p nasbench --bin nas -- sp-mod A 9
//! cargo run --release -p nasbench --bin nas -- list
//! ```
//!
//! Prints the process-0 overlap report (the paper's per-process output
//! file) plus the cluster-wide summary.

use nasbench::runner::{run_benchmark, summarize, NasBenchmark};
use nasbench::Class;
use overlap_core::{ClusterSummary, RecorderOpts};
use simnet::NetConfig;

fn parse_bench(s: &str) -> Option<NasBenchmark> {
    Some(match s.to_ascii_lowercase().as_str() {
        "bt" => NasBenchmark::Bt,
        "cg" => NasBenchmark::Cg,
        "lu" => NasBenchmark::Lu,
        "ft" => NasBenchmark::Ft,
        "ft-nb" | "ftnb" => NasBenchmark::FtNb,
        "sp" => NasBenchmark::Sp,
        "sp-mod" | "spmod" => NasBenchmark::SpModified,
        "mg" | "mg-mpi" => NasBenchmark::MgMpi,
        "mg-armci-bl" => NasBenchmark::MgArmciBlocking,
        "mg-armci-nb" => NasBenchmark::MgArmciNonBlocking,
        "ep" => NasBenchmark::Ep,
        "is" => NasBenchmark::Is,
        _ => return None,
    })
}

fn parse_class(s: &str) -> Option<Class> {
    Some(match s.to_ascii_uppercase().as_str() {
        "S" => Class::S,
        "W" => Class::W,
        "A" => Class::A,
        "B" => Class::B,
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "list" {
        println!("benchmarks: bt cg lu ft ft-nb sp sp-mod mg-mpi mg-armci-bl mg-armci-nb ep is");
        println!("classes:    S W A B");
        println!("usage:      nas <bench> [class=A] [np=4]");
        return;
    }
    let bench = parse_bench(&args[0]).unwrap_or_else(|| {
        eprintln!("unknown benchmark '{}' (try: nas list)", args[0]);
        std::process::exit(2);
    });
    let class = args
        .get(1)
        .map(|s| {
            parse_class(s).unwrap_or_else(|| {
                eprintln!("unknown class '{s}'");
                std::process::exit(2);
            })
        })
        .unwrap_or(Class::A);
    let np: usize = args
        .get(2)
        .map(|s| s.parse().expect("np must be a number"))
        .unwrap_or(4);

    eprintln!("running {} class {class} on {np} ranks...", bench.name());
    let art = run_benchmark(
        bench,
        class,
        np,
        NetConfig::default(),
        RecorderOpts::default(),
    );
    let s = summarize(bench, class, np, &art);
    println!(
        "{} class {} np {}: elapsed {:.2} ms | overlap min {:.1}% max {:.1}%\n",
        s.name, s.class, s.np, s.elapsed_ms, s.min_pct, s.max_pct
    );
    print!("{}", art.reports()[0].render_text());
    println!();
    print!("{}", ClusterSummary::merge(art.reports()).render_text());
}
