//! The parallel runner's contract: worker count changes wall-clock only.
//! Output must be byte-identical across `--jobs` values, and the CLI must
//! reject unknown harness ids instead of silently skipping them.

use bench::{runner, Harness};

fn pick(ids: &[&str]) -> Vec<Harness> {
    bench::figures::all()
        .into_iter()
        .chain(bench::ablations::all())
        .filter(|h| ids.contains(&h.id))
        .collect()
}

fn render_all(selection: &[Harness], jobs: usize) -> String {
    runner::set_jobs(jobs);
    let mut out = String::new();
    let runs = runner::run_harnesses(selection, |run| {
        out.push_str(&run.series.render());
        out.push('\n');
    });
    assert_eq!(runs.len(), selection.len());
    for (run, h) in runs.iter().zip(selection) {
        assert_eq!(run.id, h.id, "results must arrive in canonical order");
        assert!(run.wall_s >= 0.0);
    }
    out
}

/// `--jobs 8` output is byte-identical to `--jobs 1` for a figure and an
/// ablation (single test fn: the worker budget is a process-wide global).
#[test]
fn parallel_output_is_byte_identical_to_serial() {
    // fig03 exercises the parallel micro sweep inside a harness; the queue
    // ablation is a plain serial harness. Both are cheap.
    let selection = pick(&["fig03", "ablation-queue"]);
    assert_eq!(selection.len(), 2);
    let serial = render_all(&selection, 1);
    let parallel = render_all(&selection, 8);
    assert_eq!(serial, parallel, "worker count leaked into the output");
    assert!(serial.contains("== fig03"));
    assert!(serial.contains("== ablation-queue"));
}

#[test]
fn par_map_preserves_input_order() {
    runner::set_jobs(4);
    let items: Vec<u64> = (0..64).collect();
    let doubled = runner::par_map(&items, |&x| x * 2);
    assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
}

#[test]
fn cli_rejects_unknown_ids() {
    let figures = bench::figures::all();
    let ablations = bench::ablations::all();
    let err = runner::parse_cli(&["fig99".to_string()], &figures, &ablations).unwrap_err();
    assert!(
        err.contains("fig99"),
        "error must name the unknown id: {err}"
    );
    let err = runner::parse_cli(
        &[
            "fig05".to_string(),
            "fig99".to_string(),
            "bogus".to_string(),
        ],
        &figures,
        &ablations,
    )
    .unwrap_err();
    assert!(err.contains("fig99") && err.contains("bogus"));
}

#[test]
fn cli_explicit_figure_composes_with_ablations_group() {
    let figures = bench::figures::all();
    let ablations = bench::ablations::all();
    let cli = runner::parse_cli(
        &["fig05".to_string(), "ablations".to_string()],
        &figures,
        &ablations,
    )
    .unwrap();
    let ids: Vec<&str> = cli.selection.iter().map(|h| h.id).collect();
    assert!(
        ids.contains(&"fig05"),
        "explicit figure must not be skipped"
    );
    assert_eq!(
        ids.iter().filter(|id| id.starts_with("fig")).count(),
        1,
        "only the requested figure"
    );
    assert_eq!(ids.len(), 1 + ablations.len(), "plus every ablation");
    assert_eq!(ids[0], "fig05", "canonical order: figures first");
}

#[test]
fn cli_flags_parse_and_default() {
    let figures = bench::figures::all();
    let ablations = bench::ablations::all();
    let args: Vec<String> = ["--jobs", "3", "--json", "out.json", "fig04"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let cli = runner::parse_cli(&args, &figures, &ablations).unwrap();
    assert_eq!(cli.jobs, 3);
    assert_eq!(cli.json.as_deref(), Some(std::path::Path::new("out.json")));
    assert_eq!(cli.selection.len(), 1);

    let cli = runner::parse_cli(&["--jobs=5".to_string()], &figures, &ablations).unwrap();
    assert_eq!(cli.jobs, 5);
    assert_eq!(
        cli.selection.len(),
        figures.len() + ablations.len(),
        "no ids and no groups selects everything"
    );

    let args: Vec<String> = ["--critical-path", "cp", "fig04"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let cli = runner::parse_cli(&args, &figures, &ablations).unwrap();
    assert_eq!(
        cli.critical_path.as_deref(),
        Some(std::path::Path::new("cp"))
    );
    assert!(cli.trace.is_none());

    let cli = runner::parse_cli(
        &["--critical-path=cp/dir".to_string()],
        &figures,
        &ablations,
    )
    .unwrap();
    assert_eq!(
        cli.critical_path.as_deref(),
        Some(std::path::Path::new("cp/dir"))
    );

    let args: Vec<String> = ["--topology", "fat-tree:k=8", "fig04"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let cli = runner::parse_cli(&args, &figures, &ablations).unwrap();
    assert_eq!(cli.topology, Some(simnet::TopologySpec::FatTree { k: 8 }));

    let cli = runner::parse_cli(
        &["--topology=dragonfly:a=4,p=2,h=2".to_string()],
        &figures,
        &ablations,
    )
    .unwrap();
    assert_eq!(
        cli.topology,
        Some(simnet::TopologySpec::Dragonfly { a: 4, p: 2, h: 2 })
    );

    let cli = runner::parse_cli(&["fig04".to_string()], &figures, &ablations).unwrap();
    assert_eq!(cli.topology, None, "no flag, no override");

    // Unknown specs are an error (the repro binary turns this into the
    // one-line exit-2 message), as are malformed parameters.
    let err =
        runner::parse_cli(&["--topology=bogus".to_string()], &figures, &ablations).unwrap_err();
    assert!(err.contains("bogus"), "error must name the spec: {err}");
    assert!(runner::parse_cli(
        &["--topology".to_string(), "fat-tree:k=7".to_string()],
        &figures,
        &ablations
    )
    .is_err());
    assert!(runner::parse_cli(&["--topology".to_string()], &figures, &ablations).is_err());

    assert!(runner::parse_cli(&["--critical-path".to_string()], &figures, &ablations).is_err());
    assert!(runner::parse_cli(&["--jobs".to_string()], &figures, &ablations).is_err());
    assert!(runner::parse_cli(
        &["--jobs".to_string(), "0".to_string()],
        &figures,
        &ablations
    )
    .is_err());
    assert!(runner::parse_cli(&["--frobnicate".to_string()], &figures, &ablations).is_err());
}
