//! NAS SP (scalar pentadiagonal) — the paper's tuning case study (Sec. 4.3).
//!
//! Multipartition decomposition over a square process grid (`np = q²`).
//! Each iteration:
//!
//! 1. `copy_faces` — bulk halo exchange with the four grid neighbors, no
//!    computation to overlap (this is what caps whole-code gains in the
//!    paper's Figures 16–17),
//! 2. `x_solve`, `y_solve`, `z_solve` — `q`-stage Thomas-algorithm sweeps.
//!    At each stage the code *attempts overlap*: it posts an `Irecv` for the
//!    incoming boundary plane, computes the local LHS factorization, then
//!    waits — the "overlapping section" the paper monitors,
//! 3. `add` — local update.
//!
//! The **modified** variant (paper Sec. 4.3) sprinkles `MPI_Iprobe` calls
//! through the overlap-section computation so the polling progress engine
//! observes the rendezvous RTS early and starts the RDMA Read while
//! computation continues.

use simmpi::{Mpi, Src, TagSel};

use crate::class::Class;
use crate::grid::square_side;
use crate::model::{flops_ns, SP_LHS_FLOPS, SP_RHS_FLOPS, SP_SOLVE_FLOPS};

/// SP workload parameters.
#[derive(Debug, Clone)]
pub struct SpParams {
    /// Problem class (grid is `n³`).
    pub class: Class,
    /// Iterations (scaled down from NPB's 400; overlap percentages are
    /// steady-state per-iteration quantities).
    pub iterations: usize,
    /// Number of `MPI_Iprobe` calls inserted per overlap-section compute
    /// phase; `0` is the original benchmark.
    pub iprobes: usize,
}

impl SpParams {
    /// Original SP at the given class.
    pub fn original(class: Class) -> Self {
        SpParams {
            class,
            iterations: 5,
            iprobes: 0,
        }
    }

    /// The paper's modified SP: probes inserted in the overlap sections.
    pub fn modified(class: Class) -> Self {
        SpParams {
            iprobes: 3,
            ..SpParams::original(class)
        }
    }

    /// Grid points per side for the class (NPB 3.x geometry).
    pub fn n(&self) -> usize {
        match self.class {
            Class::S => 12,
            Class::W => 36,
            Class::A => 64,
            Class::B => 102,
        }
    }
}

/// Name of the monitored overlap section (paper Figures 14–15).
pub const SP_OVERLAP_SECTION: &str = "solve_overlap";

/// Run SP on the given MPI endpoint. `mpi.nranks()` must be a square.
pub fn run_sp(mpi: &mut Mpi, p: &SpParams) {
    let n = p.n();
    let q = square_side(mpi.nranks());
    let me = mpi.rank();
    let (row, col) = (me / q, me % q);
    let cell = n.div_ceil(q); // cell points per dimension
    let cell_points = (cell * cell * cell) as f64;
    let local_points = cell_points * q as f64; // q cells per process

    // Boundary plane between successive solve stages: cell face x 5 solution
    // components x f64.
    let plane_bytes = cell * cell * 5 * 8;
    // copy_faces volume per neighbor: every cell's face.
    let face_bytes = plane_bytes * q;

    let rhs_ns = flops_ns(local_points * SP_RHS_FLOPS);
    let lhs_ns = flops_ns(cell_points * SP_LHS_FLOPS);
    let solve_ns = flops_ns(cell_points * SP_SOLVE_FLOPS);

    let right = row * q + (col + 1) % q;
    let left = row * q + (col + q - 1) % q;
    let down = ((row + 1) % q) * q + col;
    let up = ((row + q - 1) % q) * q + col;

    let face = vec![me as u8; face_bytes];
    let plane = vec![(me as u8).wrapping_add(1); plane_bytes];

    for iter in 0..p.iterations {
        let tag_base = (iter as u64) << 32;

        // -- copy_faces: all four directions, no overlap attempted ---------
        if q > 1 {
            let reqs = [
                mpi.irecv(Src::Rank(left), TagSel::Is(tag_base + 1)),
                mpi.irecv(Src::Rank(right), TagSel::Is(tag_base + 2)),
                mpi.irecv(Src::Rank(up), TagSel::Is(tag_base + 3)),
                mpi.irecv(Src::Rank(down), TagSel::Is(tag_base + 4)),
            ];
            let s1 = mpi.isend(right, tag_base + 1, &face);
            let s2 = mpi.isend(left, tag_base + 2, &face);
            let s3 = mpi.isend(down, tag_base + 3, &face);
            let s4 = mpi.isend(up, tag_base + 4, &face);
            mpi.waitall(&reqs);
            mpi.waitall(&[s1, s2, s3, s4]);
        }
        // compute_rhs
        mpi.compute(rhs_ns);

        // -- the three solve sweeps ----------------------------------------
        for (dir, (next, prev)) in [(right, left), (down, up), (right, left)]
            .into_iter()
            .enumerate()
        {
            let tag = tag_base + 10 + dir as u64;
            // Boundary sends complete at the end of the sweep (waiting
            // inline would deadlock: the downstream rank posts its receive
            // only at its next stage).
            let mut pending = Vec::new();
            for stage in 0..q {
                if q > 1 && stage > 0 {
                    // The overlapping section: Irecv the boundary produced by
                    // the upstream rank's previous stage, compute, Wait.
                    mpi.section_begin(SP_OVERLAP_SECTION);
                    let r = mpi.irecv(Src::Rank(prev), TagSel::Is(tag));
                    if p.iprobes == 0 {
                        mpi.compute(lhs_ns);
                    } else {
                        let chunk = lhs_ns / (p.iprobes as u64 + 1);
                        for _ in 0..p.iprobes {
                            mpi.compute(chunk.max(1));
                            mpi.iprobe(Src::Any, TagSel::Any);
                        }
                        mpi.compute(chunk.max(1));
                    }
                    mpi.wait(r);
                    mpi.section_end();
                } else {
                    // First stage starts on this process's own cell.
                    mpi.compute(lhs_ns);
                }
                // Forward elimination / back substitution for this cell.
                mpi.compute(solve_ns);
                if q > 1 && stage < q - 1 {
                    pending.push(mpi.isend(next, tag, &plane));
                }
            }
            mpi.waitall(&pending);
        }

        // -- add: local update ----------------------------------------------
        mpi.compute(flops_ns(local_points * 8.0));
    }
}
