//! Collective operations, built over the instrumented point-to-point layer.
//!
//! Every collective exists in two forms: the world-scoped convenience
//! (`bcast`, `reduce`, ...) and a communicator-scoped variant
//! (`bcast_comm`, ...) operating on a subgroup from [`Mpi::comm_split`] —
//! the row/column communicators NAS-style codes use.
//!
//! The internal sends/receives do not emit `CALL_ENTER`/`CALL_EXIT` events
//! (they never cross the application/library boundary — only the collective
//! itself does), but their message transfers *are* stamped, so the framework
//! observes collective payload traffic exactly as the paper describes for
//! NAS FT's `Alltoall` and the short `Reduce`/`Bcast` messages.

use bytes::Bytes;

use crate::comm::Comm;
use crate::mpi::Mpi;
use crate::types::{bytes_to_f64s, f64s_to_bytes, ReduceOp, Src, Status, TagSel};

const COLL_TAG_BASE: u64 = 1 << 40;
/// Tag block per communicator.
const COMM_BLOCK: u64 = 1 << 28;
/// Tag block per collective invocation within a communicator.
const OP_BLOCK: u64 = 1 << 16;

impl Mpi<'_> {
    /// The world communicator (all ranks, identity numbering). Cached at
    /// init; this is a refcount bump, called once per collective.
    pub fn comm_world(&self) -> Comm {
        self.world_comm.clone()
    }

    /// Split the world into sub-communicators (`MPI_Comm_split` over
    /// `MPI_COMM_WORLD`): processes with the same `color` land in the same
    /// communicator, ordered by `(key, world rank)`. Collective over all
    /// world ranks.
    pub fn comm_split(&mut self, color: u64, key: u64) -> Comm {
        assert!(color < 4096, "color must be < 4096");
        self.call_enter("MPI_Comm_split");
        // Allgather (color, key) over the world.
        let mut mine = Vec::with_capacity(16);
        mine.extend_from_slice(&color.to_le_bytes());
        mine.extend_from_slice(&key.to_le_bytes());
        let world = self.comm_world();
        let all = self.allgather_in(&world, &mine);
        let split_seq = self.next_split_seq();
        let mut members: Vec<(u64, usize)> = Vec::new(); // (key, world rank)
        for (world_rank, blob) in all.iter().enumerate() {
            let c = u64::from_le_bytes(blob[0..8].try_into().unwrap());
            let k = u64::from_le_bytes(blob[8..16].try_into().unwrap());
            if c == color {
                members.push((k, world_rank));
            }
        }
        members.sort_unstable();
        let ranks: Vec<usize> = members.iter().map(|&(_, r)| r).collect();
        let my_idx = ranks
            .iter()
            .position(|&r| r == self.rank())
            .expect("caller must be a member of its own color");
        self.rec.call_exit();
        Comm {
            id: 1 + split_seq * 4096 + color,
            ranks: ranks.into(),
            my_idx,
        }
    }

    /// Base tag for the next collective on `comm`. Members agree because
    /// they invoke the communicator's collectives in the same order.
    pub(crate) fn coll_tag(&mut self, comm: &Comm) -> u64 {
        let seq = self.next_comm_seq(comm.id);
        COLL_TAG_BASE + comm.id * COMM_BLOCK + (seq % (COMM_BLOCK / OP_BLOCK)) * OP_BLOCK
    }

    // ---- world-scoped conveniences ---------------------------------------

    /// Synchronize all ranks (dissemination algorithm, zero-payload
    /// packets — not counted as data transfers).
    pub fn barrier(&mut self) {
        self.call_enter("MPI_Barrier");
        self.barrier_inner();
        self.rec.call_exit();
    }

    /// Broadcast `data` from `root` to every rank (binomial tree).
    pub fn bcast(&mut self, root: usize, data: &mut Vec<u8>) {
        self.call_enter("MPI_Bcast");
        let comm = self.comm_world();
        self.bcast_in(&comm, root, data);
        self.rec.call_exit();
    }

    /// Reduce `data` elementwise onto `root` (binomial tree). Returns the
    /// result on the root, `None` elsewhere.
    pub fn reduce(&mut self, root: usize, data: &[f64], op: ReduceOp) -> Option<Vec<f64>> {
        self.call_enter("MPI_Reduce");
        let comm = self.comm_world();
        let out = self.reduce_in(&comm, root, data, op);
        self.rec.call_exit();
        out
    }

    /// Allreduce = reduce to rank 0 followed by a broadcast, matching the
    /// Reduce/Bcast structure the paper observes in NAS FT.
    pub fn allreduce(&mut self, data: &[f64], op: ReduceOp) -> Vec<f64> {
        self.call_enter("MPI_Allreduce");
        let comm = self.comm_world();
        let out = self.allreduce_in(&comm, data, op);
        self.rec.call_exit();
        out
    }

    /// All-to-all personalized exchange: `blocks[i]` goes to rank `i`;
    /// returns the blocks received from each rank. Pairwise-exchange
    /// schedule (`n`−1 rounds of `sendrecv`), the classic long-message
    /// algorithm whose transfers dominate NAS FT. Blocks may have different
    /// lengths, so this doubles as `MPI_Alltoallv`.
    pub fn alltoall(&mut self, blocks: &[Vec<u8>]) -> Vec<Vec<u8>> {
        self.call_enter("MPI_Alltoall");
        let comm = self.comm_world();
        let out = self.alltoall_in(&comm, blocks);
        self.rec.call_exit();
        out
    }

    /// Variable-block all-to-all (alias of [`Mpi::alltoall`], which already
    /// permits per-destination lengths; named for API parity).
    pub fn alltoallv(&mut self, blocks: &[Vec<u8>]) -> Vec<Vec<u8>> {
        self.call_enter("MPI_Alltoallv");
        let comm = self.comm_world();
        let out = self.alltoall_in(&comm, blocks);
        self.rec.call_exit();
        out
    }

    /// All-gather via a ring: `n`−1 steps, each forwarding the block
    /// received in the previous step.
    pub fn allgather(&mut self, mine: &[u8]) -> Vec<Vec<u8>> {
        self.call_enter("MPI_Allgather");
        let comm = self.comm_world();
        let out = self.allgather_in(&comm, mine);
        self.rec.call_exit();
        out
    }

    /// Gather every rank's block at `root` (direct algorithm). Returns the
    /// blocks in rank order on the root, `None` elsewhere.
    pub fn gather(&mut self, root: usize, mine: &[u8]) -> Option<Vec<Vec<u8>>> {
        self.call_enter("MPI_Gather");
        let comm = self.comm_world();
        let out = self.gather_in(&comm, root, mine);
        self.rec.call_exit();
        out
    }

    /// Scatter `blocks[i]` from `root` to rank `i`; returns this rank's
    /// block.
    pub fn scatter(&mut self, root: usize, blocks: Option<&[Vec<u8>]>) -> Vec<u8> {
        self.call_enter("MPI_Scatter");
        let comm = self.comm_world();
        let out = self.scatter_in(&comm, root, blocks);
        self.rec.call_exit();
        out
    }

    /// Reduce-scatter: elementwise-reduce `data` (length must be a multiple
    /// of the communicator size) and return this rank's slice of the result.
    pub fn reduce_scatter(&mut self, data: &[f64], op: ReduceOp) -> Vec<f64> {
        self.call_enter("MPI_Reduce_scatter");
        let comm = self.comm_world();
        let out = self.reduce_scatter_in(&comm, data, op);
        self.rec.call_exit();
        out
    }

    /// Inclusive prefix reduction (`MPI_Scan`): rank `i` receives the
    /// reduction of ranks `0..=i`.
    pub fn scan(&mut self, data: &[f64], op: ReduceOp) -> Vec<f64> {
        self.call_enter("MPI_Scan");
        let comm = self.comm_world();
        let out = self.scan_in(&comm, data, op);
        self.rec.call_exit();
        out
    }

    // ---- communicator-scoped variants ------------------------------------

    /// Barrier over a communicator.
    pub fn barrier_comm(&mut self, comm: &Comm) {
        self.call_enter("MPI_Barrier");
        self.barrier_comm_inner(comm);
        self.rec.call_exit();
    }

    /// Broadcast over a communicator; `root` is a communicator rank.
    pub fn bcast_comm(&mut self, comm: &Comm, root: usize, data: &mut Vec<u8>) {
        self.call_enter("MPI_Bcast");
        self.bcast_in(comm, root, data);
        self.rec.call_exit();
    }

    /// Reduce over a communicator; `root` is a communicator rank.
    pub fn reduce_comm(
        &mut self,
        comm: &Comm,
        root: usize,
        data: &[f64],
        op: ReduceOp,
    ) -> Option<Vec<f64>> {
        self.call_enter("MPI_Reduce");
        let out = self.reduce_in(comm, root, data, op);
        self.rec.call_exit();
        out
    }

    /// Allreduce over a communicator.
    pub fn allreduce_comm(&mut self, comm: &Comm, data: &[f64], op: ReduceOp) -> Vec<f64> {
        self.call_enter("MPI_Allreduce");
        let out = self.allreduce_in(comm, data, op);
        self.rec.call_exit();
        out
    }

    /// Allgather over a communicator.
    pub fn allgather_comm(&mut self, comm: &Comm, mine: &[u8]) -> Vec<Vec<u8>> {
        self.call_enter("MPI_Allgather");
        let out = self.allgather_in(comm, mine);
        self.rec.call_exit();
        out
    }

    /// All-to-all over a communicator.
    pub fn alltoall_comm(&mut self, comm: &Comm, blocks: &[Vec<u8>]) -> Vec<Vec<u8>> {
        self.call_enter("MPI_Alltoall");
        let out = self.alltoall_in(comm, blocks);
        self.rec.call_exit();
        out
    }

    // ---- algorithms -------------------------------------------------------

    fn bcast_in(&mut self, comm: &Comm, root: usize, data: &mut Vec<u8>) {
        let n = comm.size();
        if n <= 1 {
            return;
        }
        let tag = self.coll_tag(comm);
        let vrank = (comm.rank() + n - root) % n;
        let unmap = |v: usize| comm.world_rank((v + root) % n);
        let mut mask = 1usize;
        while mask < n {
            if vrank & mask != 0 {
                let st = self.recv_internal(Src::Rank(unmap(vrank - mask)), TagSel::Is(tag));
                *data = st.into_data().to_vec();
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < n {
                let d = data.clone();
                self.send_internal(unmap(vrank + mask), tag, &d);
            }
            mask >>= 1;
        }
    }

    fn reduce_in(
        &mut self,
        comm: &Comm,
        root: usize,
        data: &[f64],
        op: ReduceOp,
    ) -> Option<Vec<f64>> {
        let n = comm.size();
        let mut acc = data.to_vec();
        if n > 1 {
            let tag = self.coll_tag(comm);
            let vrank = (comm.rank() + n - root) % n;
            let unmap = |v: usize| comm.world_rank((v + root) % n);
            let mut mask = 1usize;
            while mask < n {
                if vrank & mask == 0 {
                    let src_v = vrank | mask;
                    if src_v < n {
                        let st = self.recv_internal(Src::Rank(unmap(src_v)), TagSel::Is(tag));
                        let other = bytes_to_f64s(&st.into_data());
                        op.apply(&mut acc, &other);
                    }
                } else {
                    let dst = unmap(vrank & !mask);
                    let bytes = f64s_to_bytes(&acc);
                    self.send_internal(dst, tag, &bytes);
                    break;
                }
                mask <<= 1;
            }
        }
        (comm.rank() == root).then_some(acc)
    }

    fn allreduce_in(&mut self, comm: &Comm, data: &[f64], op: ReduceOp) -> Vec<f64> {
        let reduced = self.reduce_in(comm, 0, data, op);
        let mut buf = reduced.map(|v| f64s_to_bytes(&v)).unwrap_or_default();
        self.bcast_in(comm, 0, &mut buf);
        bytes_to_f64s(&buf)
    }

    fn alltoall_in(&mut self, comm: &Comm, blocks: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let n = comm.size();
        assert_eq!(blocks.len(), n, "alltoall needs one block per rank");
        let me = comm.rank();
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
        out[me] = blocks[me].clone();
        let tag = self.coll_tag(comm);
        for k in 1..n {
            let to = comm.world_rank((me + k) % n);
            let from_idx = (me + n - k) % n;
            let from = comm.world_rank(from_idx);
            let sr = self.isend_inner(to, tag + k as u64, &blocks[(me + k) % n], true);
            let rr = self.irecv_inner(Src::Rank(from), TagSel::Is(tag + k as u64));
            self.wait_inner(sr);
            let st = self.wait_inner(rr);
            out[from_idx] = st.into_data().to_vec();
        }
        out
    }

    fn allgather_in(&mut self, comm: &Comm, mine: &[u8]) -> Vec<Vec<u8>> {
        let n = comm.size();
        let me = comm.rank();
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
        out[me] = mine.to_vec();
        if n > 1 {
            let tag = self.coll_tag(comm);
            let right = comm.world_rank((me + 1) % n);
            let left = comm.world_rank((me + n - 1) % n);
            for step in 0..n - 1 {
                let send_block = (me + n - step) % n;
                let recv_block = (me + n - step - 1) % n;
                let payload = out[send_block].clone();
                let sr = self.isend_inner(right, tag + step as u64, &payload, true);
                let rr = self.irecv_inner(Src::Rank(left), TagSel::Is(tag + step as u64));
                self.wait_inner(sr);
                let st = self.wait_inner(rr);
                out[recv_block] = st.into_data().to_vec();
            }
        }
        out
    }

    fn gather_in(&mut self, comm: &Comm, root: usize, mine: &[u8]) -> Option<Vec<Vec<u8>>> {
        let n = comm.size();
        let me = comm.rank();
        let tag = self.coll_tag(comm);
        if me == root {
            let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
            out[me] = mine.to_vec();
            for (src, slot) in out.iter_mut().enumerate() {
                if src != me {
                    let st = self.recv_internal(Src::Rank(comm.world_rank(src)), TagSel::Is(tag));
                    *slot = st.into_data().to_vec();
                }
            }
            Some(out)
        } else {
            self.send_internal(comm.world_rank(root), tag, mine);
            None
        }
    }

    fn scatter_in(&mut self, comm: &Comm, root: usize, blocks: Option<&[Vec<u8>]>) -> Vec<u8> {
        let n = comm.size();
        let me = comm.rank();
        let tag = self.coll_tag(comm);
        if me == root {
            let blocks = blocks.expect("root must supply blocks");
            assert_eq!(blocks.len(), n, "scatter needs one block per rank");
            for (dst, b) in blocks.iter().enumerate() {
                if dst != me {
                    self.send_internal(comm.world_rank(dst), tag, b);
                }
            }
            blocks[me].clone()
        } else {
            let st = self.recv_internal(Src::Rank(comm.world_rank(root)), TagSel::Is(tag));
            st.into_data().to_vec()
        }
    }

    fn reduce_scatter_in(&mut self, comm: &Comm, data: &[f64], op: ReduceOp) -> Vec<f64> {
        let n = comm.size();
        assert_eq!(
            data.len() % n,
            0,
            "reduce_scatter length must divide evenly"
        );
        let chunk = data.len() / n;
        // Reduce to communicator rank 0, then scatter the slices.
        let full = self.reduce_in(comm, 0, data, op);
        let blocks: Option<Vec<Vec<u8>>> =
            full.map(|v| v.chunks_exact(chunk).map(f64s_to_bytes).collect());
        let mine = self.scatter_in(comm, 0, blocks.as_deref());
        bytes_to_f64s(&mine)
    }

    fn scan_in(&mut self, comm: &Comm, data: &[f64], op: ReduceOp) -> Vec<f64> {
        // Linear pipeline: receive the prefix from the left neighbor, fold,
        // forward to the right.
        let n = comm.size();
        let me = comm.rank();
        let mut acc = data.to_vec();
        if n > 1 {
            let tag = self.coll_tag(comm);
            if me > 0 {
                let st = self.recv_internal(Src::Rank(comm.world_rank(me - 1)), TagSel::Is(tag));
                let prefix = bytes_to_f64s(&st.into_data());
                // acc = op(prefix, mine)
                let mine = acc.clone();
                acc = prefix;
                op.apply(&mut acc, &mine);
            }
            if me + 1 < n {
                let bytes = f64s_to_bytes(&acc);
                self.send_internal(comm.world_rank(me + 1), tag, &bytes);
            }
        }
        acc
    }

    /// Dissemination barrier over a communicator's members (zero-payload
    /// packets, not counted as data transfers).
    pub(crate) fn barrier_comm_inner(&mut self, comm: &Comm) {
        let n = comm.size();
        if n <= 1 {
            return;
        }
        let base = self.coll_tag(comm);
        let mut dist = 1;
        let mut round = 0u64;
        while dist < n {
            let to = comm.world_rank((comm.rank() + dist) % n);
            let from = comm.world_rank((comm.rank() + n - dist) % n);
            let tag = base + round;
            let s = self.isend_inner(to, tag, &[], false);
            let r = self.irecv_inner(Src::Rank(from), TagSel::Is(tag));
            self.wait_inner(s);
            self.wait_inner(r);
            dist *= 2;
            round += 1;
        }
    }

    // Internal blocking helpers without CALL events (the collective itself
    // is the library call).
    fn send_internal(&mut self, dst: usize, tag: u64, data: &[u8]) {
        let r = self.isend_inner(dst, tag, data, true);
        self.wait_inner(r);
    }

    fn recv_internal(&mut self, src: Src, tag: TagSel) -> Status {
        let r = self.irecv_inner(src, tag);
        self.wait_inner(r)
    }
}

/// Flatten helper used by benchmark kernels: concatenate received blocks.
pub fn concat_blocks(blocks: &[Vec<u8>]) -> Bytes {
    let mut out = Vec::with_capacity(blocks.iter().map(Vec::len).sum());
    for b in blocks {
        out.extend_from_slice(b);
    }
    Bytes::from(out)
}
