//! The shared fabric state and its operations.
//!
//! # Locking invariant (critical)
//!
//! `World` lives behind `Arc<Mutex<_>>` ([`SharedWorld`]) and is mutated both
//! by rank threads (posting work requests, polling) and by engine callbacks
//! (deliveries, completions). Because the engine suspends a rank thread
//! mid-call when it yields, **library code must never hold the world lock
//! across `RankCtx::busy` / `RankCtx::park`** — the engine would then run a
//! delivery callback that blocks on the lock forever. Every method here is a
//! short lock-scoped state transition; time costs are charged by the caller
//! outside the lock.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use simcore::{EngineHandle, Time};

use crate::arena::Slab;
use crate::config::NetConfig;
use crate::fault::{FaultEvent, FaultKind, FaultRng};
use crate::memory::{NodeMemory, RegionId};
use crate::nic::{CausalEdge, Completion, HwPosted, HwUnexpected, Nic, WrId};
use crate::packet::Packet;
use crate::topology::{Hop, Topology, TrafficPattern, LINK_DEDICATED};
use crate::truth::{TransferKind, TransferRecord};

/// Fabric-assigned id for one data transfer operation. The instrumentation
/// layer uses the same id, so per-transfer bounds can be joined with
/// per-transfer ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XferId(pub u64);

/// Shared handle to the fabric.
pub type SharedWorld = Arc<Mutex<World>>;

/// Snapshot of one NIC's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicStats {
    /// Packets delivered into this NIC's receive queue.
    pub packets_delivered: u64,
    /// Completions pushed to this NIC's CQ.
    pub completions_generated: u64,
    /// Virtual time until which the egress DMA engine is reserved.
    pub dma_busy_until: Time,
    /// Packets awaiting a host poll.
    pub rx_backlog: usize,
    /// Completions awaiting a host poll.
    pub cq_backlog: usize,
}

/// One accepted-but-not-yet-applied fabric operation, parked in the
/// [`World::pending`] arena until its scheduled virtual time. The arena key
/// is the engine scheduling token, so dispatching an event is an arena
/// `remove` plus a state transition — no per-message closure boxing.
enum Pending {
    /// Two-sided send reaching `dst`: packet into the receive queue, local
    /// completion into `src`'s CQ.
    SendDeliver {
        src: usize,
        dst: usize,
        wr: WrId,
        user: u64,
        packet: Packet,
        edge: CausalEdge,
    },
    /// A send whose packet the fault injector dropped: only the local
    /// completion fires (the NIC just saw the bytes leave).
    SendDropComplete {
        src: usize,
        wr: WrId,
        user: u64,
        edge: CausalEdge,
    },
    /// Fault-injected duplicate copy trailing the original delivery.
    DupDeliver { dst: usize, packet: Packet },
    /// RDMA Write placement: bytes into `dst`'s registered memory, local
    /// completion, optional notify packet after the data.
    WriteApply {
        src: usize,
        dst: usize,
        region: RegionId,
        off: usize,
        data: Bytes,
        wr: WrId,
        user: u64,
        notify: Option<Packet>,
        edge: CausalEdge,
    },
    /// NIC-atomic elementwise `f64` accumulate into `dst`'s memory.
    AccApply {
        src: usize,
        dst: usize,
        region: RegionId,
        off: usize,
        data: Vec<f64>,
        wr: WrId,
        user: u64,
        edge: CausalEdge,
    },
    /// Fetch-and-add request arriving at the target NIC; performs the atomic
    /// and schedules the reply leg.
    FetchAddRequest {
        initiator: usize,
        target: usize,
        region: RegionId,
        off: usize,
        delta: u64,
        wr: WrId,
        user: u64,
    },
    /// Fetch-and-add reply delivering the previous value to the initiator.
    FetchAddReply {
        initiator: usize,
        target: usize,
        wr: WrId,
        user: u64,
        old: u64,
        edge: CausalEdge,
    },
    /// RDMA Read request arriving at the target NIC; snapshots the region
    /// and schedules the response leg.
    ReadRequest {
        initiator: usize,
        target: usize,
        region: RegionId,
        off: usize,
        len: usize,
        wr: WrId,
        user: u64,
        imm: [u64; 3],
        notify: Option<Packet>,
        xfer: Option<XferId>,
    },
    /// RDMA Read response delivering the snapshot to the initiator's CQ,
    /// with an optional notify packet for the target.
    ReadReply {
        initiator: usize,
        target: usize,
        wr: WrId,
        user: u64,
        imm: [u64; 3],
        snapshot: Bytes,
        notify: Option<Packet>,
        edge: CausalEdge,
    },
    /// NIC-side match notification (hw tag matching): a bare completion
    /// delivered to `to`'s CQ one control latency after the matching NIC
    /// (`from`) resolved a synchronous send.
    HwAck {
        from: usize,
        to: usize,
        wr: WrId,
        user: u64,
    },
}

/// Per-directed-link delivery batching state (see [`World::schedule_pending`]).
///
/// At most one *time-cohort* of a link's events sits in the engine wheel at
/// once; the rest wait here in a time-sorted queue with their sequence
/// numbers already claimed, and are promoted cohort-by-cohort as the link's
/// in-wheel events dispatch. A burst of back-to-back sends therefore costs
/// one wheel insertion at a time — each entering close to its due tick, so
/// it lands in a low wheel level and never cascades — instead of scattering
/// the whole burst across high wheel levels up front.
///
/// Determinism invariant: every deferred time is strictly greater than
/// `wheel_max` (the latest in-wheel time of this link), so a promotion —
/// which happens while dispatching an in-wheel event — always inserts
/// entries *before* their due tick, and the engine's `(time, seq)` dispatch
/// order (including event-tie candidate sets seen by the schedule oracle) is
/// byte-identical to eager scheduling.
#[derive(Default)]
struct LinkState {
    /// This link's entries currently in the engine wheel.
    in_wheel: u32,
    /// Latest due time among the in-wheel entries.
    wheel_max: Time,
    /// Deferred `(time, seq, token)` entries, sorted by time (stable for
    /// equal times, which preserves program-order seq within a cohort).
    deferred: std::collections::VecDeque<(Time, u64, u64)>,
}

/// Per-shared-link channel: virtual-time occupancy reservations plus the
/// lazily-replayed background-tenant injection schedule (see
/// [`crate::topology::BackgroundJob`]). One per directed topology link —
/// flat crossbars have none.
#[derive(Debug, Clone, Copy, Default)]
struct LinkChan {
    /// Virtual time until which the link is occupied.
    free_at: Time,
    /// Next background injection not yet replayed (meaningful only when
    /// `bg_period > 0`).
    bg_next: Time,
    /// Inter-injection gap of the background flows crossing this link;
    /// `0` = no background traffic here.
    bg_period: u64,
    /// Link occupancy per background injection, ns.
    bg_busy: u64,
}

/// All fabric state: NICs, registered memory, ground-truth transfer log.
pub struct World {
    cfg: NetConfig,
    handle: EngineHandle,
    nics: Vec<Nic>,
    mem: Vec<NodeMemory>,
    next_wr: u64,
    next_region: u64,
    next_xfer: u64,
    transfers: Vec<TransferRecord>,
    /// Free-list arena of in-flight operations, keyed by scheduling token.
    pending: Slab<Pending>,
    /// Delivery batching per directed `(src, dst)` link; sparse, since most
    /// rank pairs never talk.
    links: std::collections::HashMap<(usize, usize), LinkState>,
    /// The fabric topology, shared (`Arc`) so per-rank state stays lean.
    topo: Arc<dyn Topology>,
    /// Per-shared-link occupancy channels, indexed by topology link id.
    chans: Vec<LinkChan>,
    /// Reused hop buffer — steady-state routing allocates nothing.
    route_buf: Vec<Hop>,
    /// Cached `!cfg.faults.is_empty()` — the fault-free fast path must not
    /// even inspect the plan per packet.
    faulty: bool,
    fault_rng: FaultRng,
    fault_events: Vec<FaultEvent>,
    /// FIN templates for in-flight hw rendezvous RTS packets, keyed by the
    /// meta id the RTS carries (the template cannot ride in the packet's
    /// fixed header words).
    hw_fin_meta: std::collections::HashMap<u64, Packet>,
    next_hw_meta: u64,
}

impl World {
    /// Build the fabric for `nnodes` nodes on the given engine.
    ///
    /// Registers itself as the engine's token handler (the fabric owns the
    /// simulation's token namespace — tokens are keys into its pending-work
    /// arena), so this must run before `Simulation::run` and nothing else on
    /// the same engine may call `set_token_handler`.
    pub fn new_shared(cfg: NetConfig, handle: EngineHandle, nnodes: usize) -> SharedWorld {
        let faulty = !cfg.faults.is_empty();
        let fault_rng = FaultRng::new(cfg.faults.seed);
        let topo = cfg.build_topology(nnodes);
        let chans = Self::init_link_chans(&cfg, topo.as_ref(), nnodes);
        let world = Arc::new(Mutex::new(World {
            cfg,
            handle: handle.clone(),
            nics: (0..nnodes).map(|_| Nic::new()).collect(),
            mem: (0..nnodes).map(|_| NodeMemory::new()).collect(),
            next_wr: 0,
            next_region: 0,
            next_xfer: 0,
            transfers: Vec::new(),
            pending: Slab::new(),
            links: std::collections::HashMap::new(),
            topo,
            chans,
            route_buf: Vec::new(),
            faulty,
            fault_rng,
            fault_events: Vec::new(),
            hw_fin_meta: std::collections::HashMap::new(),
            next_hw_meta: 0,
        }));
        // Weak capture: a strong one would cycle (World holds the engine
        // handle, the engine holds the handler).
        let weak = Arc::downgrade(&world);
        handle.set_token_handler(move |h, token| {
            if let Some(w) = weak.upgrade() {
                World::dispatch(&w, h, token);
            }
        });
        world
    }

    /// Redeem `token` from the pending arena and apply the operation.
    /// Ranks are woken after the world lock is released (the engine's lock
    /// ordering rule), in the same order the closure-based paths used.
    fn dispatch(world: &SharedWorld, h: &EngineHandle, token: u64) {
        let mut w = world.lock();
        let op = w.pending.remove(token as usize);
        w.link_dispatched(Self::link_of(&op));
        match op {
            Pending::SendDeliver {
                src,
                dst,
                wr,
                user,
                mut packet,
                edge,
            } => {
                packet.edge = edge;
                if packet.ty >= crate::packet::hw::TY_BASE {
                    // NIC-offload traffic: consumed by the receiving NIC's
                    // matching engine, never surfaced to the host rx queue.
                    w.hw_deliver(dst, packet);
                } else {
                    w.nics[dst].rx.push_back(packet);
                    w.nics[dst].packets_delivered += 1;
                }
                w.nics[src].cq.push_back(Completion {
                    wr_id: wr,
                    user,
                    data: None,
                    imm: [0; 3],
                    edge,
                });
                w.nics[src].completions_generated += 1;
                drop(w);
                h.wake_rank(dst);
                h.wake_rank(src);
            }
            Pending::SendDropComplete {
                src,
                wr,
                user,
                edge,
            } => {
                w.nics[src].cq.push_back(Completion {
                    wr_id: wr,
                    user,
                    data: None,
                    imm: [0; 3],
                    edge,
                });
                w.nics[src].completions_generated += 1;
                drop(w);
                h.wake_rank(src);
            }
            Pending::DupDeliver { dst, packet } => {
                w.nics[dst].rx.push_back(packet);
                w.nics[dst].packets_delivered += 1;
                drop(w);
                h.wake_rank(dst);
            }
            Pending::WriteApply {
                src,
                dst,
                region,
                off,
                data,
                wr,
                user,
                notify,
                edge,
            } => {
                let mem = w.mem[dst]
                    .get_mut(region)
                    .expect("RDMA write to unknown region");
                mem[off..off + data.len()].copy_from_slice(&data);
                w.nics[src].cq.push_back(Completion {
                    wr_id: wr,
                    user,
                    data: None,
                    imm: [0; 3],
                    edge,
                });
                w.nics[src].completions_generated += 1;
                let wake_dst = if let Some(mut p) = notify {
                    p.edge = edge;
                    w.nics[dst].rx.push_back(p);
                    w.nics[dst].packets_delivered += 1;
                    true
                } else {
                    false
                };
                drop(w);
                h.wake_rank(src);
                if wake_dst {
                    h.wake_rank(dst);
                }
            }
            Pending::AccApply {
                src,
                dst,
                region,
                off,
                data,
                wr,
                user,
                edge,
            } => {
                let mem = w.mem[dst]
                    .get_mut(region)
                    .expect("RDMA accumulate into unknown region");
                for (i, v) in data.iter().enumerate() {
                    let o = off + i * 8;
                    let cur = f64::from_le_bytes(mem[o..o + 8].try_into().unwrap());
                    mem[o..o + 8].copy_from_slice(&(cur + v).to_le_bytes());
                }
                w.nics[src].cq.push_back(Completion {
                    wr_id: wr,
                    user,
                    data: None,
                    imm: [0; 3],
                    edge,
                });
                w.nics[src].completions_generated += 1;
                drop(w);
                h.wake_rank(src);
            }
            Pending::FetchAddRequest {
                initiator,
                target,
                region,
                off,
                delta,
                wr,
                user,
            } => {
                let busy = w.cfg.serialize(8);
                let now = h.now();
                let dma_start = w.nics[target].reserve_dma(now, busy);
                let mem = w.mem[target]
                    .get_mut(region)
                    .expect("fetch-add on unknown region");
                let old = u64::from_le_bytes(mem[off..off + 8].try_into().unwrap());
                mem[off..off + 8].copy_from_slice(&(old.wrapping_add(delta)).to_le_bytes());
                let back = w.latency(target, initiator);
                let arrival = dma_start + busy + back;
                let edge = CausalEdge {
                    dma_queue_ns: dma_start - now,
                    serialize_ns: busy,
                    ..CausalEdge::default()
                };
                w.schedule_pending(
                    arrival,
                    Pending::FetchAddReply {
                        initiator,
                        target,
                        wr,
                        user,
                        old,
                        edge,
                    },
                );
            }
            Pending::FetchAddReply {
                initiator,
                target: _,
                wr,
                user,
                old,
                edge,
            } => {
                w.nics[initiator].cq.push_back(Completion {
                    wr_id: wr,
                    user,
                    data: Some(Bytes::copy_from_slice(&old.to_le_bytes())),
                    imm: [0; 3],
                    edge,
                });
                w.nics[initiator].completions_generated += 1;
                drop(w);
                h.wake_rank(initiator);
            }
            Pending::ReadRequest {
                initiator,
                target,
                region,
                off,
                len,
                wr,
                user,
                imm,
                notify,
                xfer,
            } => {
                let busy = w.cfg.serialize(len);
                let now = h.now();
                let dma_start = w.nics[target].reserve_dma(now, busy);
                let snapshot = Bytes::copy_from_slice(
                    &w.mem[target]
                        .get(region)
                        .expect("RDMA read of unknown region")[off..off + len],
                );
                // The response stream is subject to the initiator's ingress
                // contention, like any other inbound data.
                let (arrival, ingress_queue, hop_queue) =
                    w.fabric_arrival(target, initiator, dma_start, len, true);
                let edge = CausalEdge {
                    dma_queue_ns: dma_start - now,
                    serialize_ns: busy,
                    ingress_queue_ns: ingress_queue,
                    hop_queue_ns: hop_queue,
                    fault_extra_ns: 0,
                };
                if let Some(id) = xfer {
                    w.transfers.push(TransferRecord {
                        xfer_id: id.0,
                        src: target,
                        dst: initiator,
                        bytes: len,
                        phys_start: dma_start,
                        phys_end: arrival,
                        kind: TransferKind::RdmaRead,
                        edge,
                    });
                }
                w.schedule_pending(
                    arrival,
                    Pending::ReadReply {
                        initiator,
                        target,
                        wr,
                        user,
                        imm,
                        snapshot,
                        notify,
                        edge,
                    },
                );
            }
            Pending::ReadReply {
                initiator,
                target,
                wr,
                user,
                imm,
                snapshot,
                notify,
                edge,
            } => {
                w.nics[initiator].cq.push_back(Completion {
                    wr_id: wr,
                    user,
                    data: Some(snapshot),
                    imm,
                    edge,
                });
                w.nics[initiator].completions_generated += 1;
                let wake_target = if let Some(mut p) = notify {
                    p.edge = edge;
                    w.nics[target].rx.push_back(p);
                    w.nics[target].packets_delivered += 1;
                    true
                } else {
                    false
                };
                drop(w);
                h.wake_rank(initiator);
                if wake_target {
                    h.wake_rank(target);
                }
            }
            Pending::HwAck {
                from: _,
                to,
                wr,
                user,
            } => {
                w.nics[to].cq.push_back(Completion {
                    wr_id: wr,
                    user,
                    data: None,
                    imm: [0; 3],
                    edge: CausalEdge::default(),
                });
                w.nics[to].completions_generated += 1;
                drop(w);
                h.wake_rank(to);
            }
        }
    }

    /// Fabric configuration.
    pub fn cfg(&self) -> &NetConfig {
        &self.cfg
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.handle.now()
    }

    /// Number of nodes.
    pub fn nnodes(&self) -> usize {
        self.nics.len()
    }

    /// Allocate a transfer id for an upcoming data operation.
    pub fn alloc_xfer_id(&mut self) -> XferId {
        let id = XferId(self.next_xfer);
        self.next_xfer += 1;
        id
    }

    fn alloc_wr(&mut self) -> WrId {
        let id = WrId(self.next_wr);
        self.next_wr += 1;
        id
    }

    /// Register (pin) a memory region on `node`. The *host cost* of pinning
    /// (`cfg().reg_cost`) must be charged by the caller.
    pub fn register(&mut self, node: usize, data: Vec<u8>) -> RegionId {
        let id = RegionId(self.next_region);
        self.next_region += 1;
        self.mem[node].insert(id, data);
        id
    }

    /// Deregister a region, returning its contents.
    pub fn deregister(&mut self, node: usize, id: RegionId) -> Vec<u8> {
        self.mem[node]
            .remove(id)
            .expect("deregister of unknown region")
    }

    /// Registered memory of `node`.
    pub fn mem(&self, node: usize) -> &NodeMemory {
        &self.mem[node]
    }

    /// Mutable registered memory of `node`.
    pub fn mem_mut(&mut self, node: usize) -> &mut NodeMemory {
        &mut self.mem[node]
    }

    /// One-way propagation latency for control legs (requests, replies): the
    /// canonical route's latency, with no link occupancy charged — control
    /// packets are small enough that the model treats them as fluid.
    fn latency(&self, src: usize, dst: usize) -> u64 {
        if src == dst {
            self.cfg.loopback_latency
        } else {
            self.topo.path_latency(src, dst)
        }
    }

    /// Build per-link channels, seeding the background tenant's injection
    /// schedules: walk every background flow's canonical route once and
    /// turn the per-link flow count into a periodic occupancy replay (see
    /// [`crate::topology::BackgroundJob`] for the fluid model).
    fn init_link_chans(cfg: &NetConfig, topo: &dyn Topology, nnodes: usize) -> Vec<LinkChan> {
        let mut chans = vec![LinkChan::default(); topo.links()];
        let Some(job) = cfg.background else {
            return chans;
        };
        if chans.is_empty() || nnodes < 2 {
            return chans; // crossbar or single rank: nothing to share
        }
        // Per-link flow weight in 1/SCALE flow units (uniform sampling
        // makes a few routes stand in for many flows).
        const SCALE: u64 = 64;
        let mut weight = vec![0u64; topo.links()];
        let mut route = Vec::new();
        let mut flows: Vec<(usize, usize, u64)> = Vec::new();
        let n = nnodes;
        match job.pattern {
            TrafficPattern::Uniform => {
                // Each src injects one message per period to a uniform
                // destination; a few sampled routes stand in for the
                // destination spread, splitting the src's unit rate.
                let samples = (n - 1).min(8);
                let w = (SCALE / samples as u64).max(1);
                for src in 0..n {
                    for k in 0..samples {
                        let r = crate::topology::mix64(job.seed ^ ((src as u64) << 20) ^ k as u64);
                        let dst = (src + 1 + (r % (n as u64 - 1)) as usize) % n;
                        flows.push((src, dst, w));
                    }
                }
            }
            TrafficPattern::Incast { victim } => {
                let v = victim % n;
                for src in (0..n).filter(|&s| s != v) {
                    flows.push((src, v, SCALE));
                }
            }
            TrafficPattern::Permutation => {
                for src in 0..n {
                    let dst = (src + n / 2) % n;
                    if dst != src {
                        flows.push((src, dst, SCALE));
                    }
                }
            }
        }
        for (src, dst, w) in flows {
            topo.route_into(src, dst, 0, &mut route);
            for hop in &route {
                if hop.link != LINK_DEDICATED {
                    weight[hop.link as usize] += w;
                }
            }
        }
        let busy = cfg.serialize(job.msg_bytes).max(1);
        for (l, &w) in weight.iter().enumerate() {
            if w == 0 {
                continue;
            }
            // w/SCALE flows cross this link, each injecting every
            // `period_ns`: the link sees one injection every `gap` ns.
            let gap = (job.period_ns.max(1).saturating_mul(SCALE) / w).max(1);
            chans[l] = LinkChan {
                free_at: 0,
                bg_next: crate::topology::mix64(job.seed ^ 0x6261_636b ^ l as u64) % gap,
                bg_period: gap,
                bg_busy: busy,
            };
        }
        chans
    }

    /// Reserve shared link `link` for `busy` ns starting no earlier than
    /// `t`, first replaying any background-tenant injections that arrived
    /// by `t`; returns the actual start time.
    fn reserve_link(&mut self, link: u32, t: Time, busy: u64) -> Time {
        // Finite switch buffer for the background tenant: an injection that
        // would queue longer than this many serializations is dropped, so an
        // oversubscribed tenant saturates the link instead of running its
        // backlog (and the foreground's arrival times) away unboundedly.
        const BG_BACKLOG_CAP: u64 = 16;
        let ch = &mut self.chans[link as usize];
        if ch.bg_period > 0 && ch.bg_next <= t {
            if ch.bg_busy <= ch.bg_period && ch.free_at <= ch.bg_next {
                // Undersubscribed and idle: no injection queues on another,
                // so the replay collapses to its last injection (O(1)).
                let k = (t - ch.bg_next) / ch.bg_period;
                ch.bg_next += k * ch.bg_period;
                ch.free_at = ch.bg_next + ch.bg_busy;
                ch.bg_next += ch.bg_period;
            } else {
                // Injections arriving after `t` are ignored (fluid
                // approximation), which bounds the replay by arrival time.
                while ch.bg_next <= t {
                    let s = ch.free_at.max(ch.bg_next);
                    if s - ch.bg_next <= BG_BACKLOG_CAP * ch.bg_busy {
                        ch.free_at = s + ch.bg_busy;
                    }
                    ch.bg_next += ch.bg_period;
                }
            }
        }
        let start = ch.free_at.max(t);
        ch.free_at = start + busy;
        start
    }

    /// Pick which equal-cost candidate route a message takes: a schedule
    /// choice point when the topology offers alternatives, so the explorer
    /// can search routing nondeterminism. Flat fabrics (one path) never
    /// consult — or record — anything.
    fn route_choice(&mut self, src: usize, dst: usize) -> usize {
        let n = self.topo.paths(src, dst);
        if n <= 1 {
            return 0;
        }
        match self.handle.oracle() {
            Some(orc) => orc.choose(simcore::ChoicePoint::Route { src, dst, n }),
            None => 0,
        }
    }

    /// Arrival (placement) time for `bytes` that left `src`'s DMA at
    /// `dma_start`, heading to `dst` across the topology, plus the queuing
    /// split the causal edge carries: `(arrival, ingress_queue, hop_queue)`.
    ///
    /// The route is walked hop-by-hop (virtual cut-through: serialization is
    /// paid once, at the tail; each hop adds propagation latency plus any
    /// wait for its shared link). On the flat crossbar this reduces exactly
    /// to the pre-topology `dma_start + serialize + latency` formula —
    /// dedicated hops never queue. Ingress contention (`apply_ingress` and
    /// the config model both set) then serializes concurrent streams into
    /// the destination NIC, as before.
    fn fabric_arrival(
        &mut self,
        src: usize,
        dst: usize,
        dma_start: Time,
        bytes: usize,
        apply_ingress: bool,
    ) -> (Time, u64, u64) {
        let busy = self.cfg.serialize(bytes);
        if src == dst {
            return (dma_start + busy + self.cfg.loopback_latency, 0, 0);
        }
        let choice = self.route_choice(src, dst);
        let mut route = std::mem::take(&mut self.route_buf);
        self.topo.route_into(src, dst, choice, &mut route);
        let mut head = dma_start;
        let mut hop_queue = 0u64;
        for hop in &route {
            if hop.link != LINK_DEDICATED {
                let start = self.reserve_link(hop.link, head, busy);
                hop_queue += start - head;
                head = start;
            }
            head += hop.latency;
        }
        self.route_buf = route;
        let wire = head + busy;
        if apply_ingress && self.cfg.model_ingress_contention {
            let arrival = self.nics[dst].reserve_ingress(head, busy).max(wire);
            (arrival, arrival - wire, hop_queue)
        } else {
            (wire, 0, hop_queue)
        }
    }

    /// The directed link an operation's scheduled event travels, used as the
    /// delivery-batching key. Local-only events (e.g. a drop's completion)
    /// use the self-link.
    fn link_of(op: &Pending) -> (usize, usize) {
        match op {
            Pending::SendDeliver { src, dst, .. } => (*src, *dst),
            Pending::SendDropComplete { src, .. } => (*src, *src),
            Pending::DupDeliver { dst, packet } => (packet.src, *dst),
            Pending::WriteApply { src, dst, .. } => (*src, *dst),
            Pending::AccApply { src, dst, .. } => (*src, *dst),
            Pending::FetchAddRequest {
                initiator, target, ..
            } => (*initiator, *target),
            Pending::FetchAddReply {
                initiator, target, ..
            } => (*target, *initiator),
            Pending::ReadRequest {
                initiator, target, ..
            } => (*initiator, *target),
            Pending::ReadReply {
                initiator, target, ..
            } => (*target, *initiator),
            Pending::HwAck { from, to, .. } => (*from, *to),
        }
    }

    /// Park `op` in the pending arena and schedule its token for `at` —
    /// either straight into the engine wheel or, when every in-wheel event
    /// of its link is strictly earlier, into the link's deferred queue with
    /// its sequence number pre-claimed (see [`LinkState`] for why dispatch
    /// order is unchanged).
    fn schedule_pending(&mut self, at: Time, op: Pending) {
        let link = Self::link_of(&op);
        let token = self.pending.insert(op) as u64;
        // Claim the entry's place in the global program order now; whether
        // it reaches the wheel eagerly or via a later promotion, it
        // dispatches at the same point.
        let seq = self.handle.alloc_seq();
        let st = self.links.entry(link).or_default();
        if st.in_wheel > 0 && at > st.wheel_max {
            // Time-sorted insert, from the back: arrivals on a link are
            // monotone except under fault delays, so this is O(1) appends in
            // the common case. Equal times keep insertion (= seq) order.
            let mut pos = st.deferred.len();
            while pos > 0 && st.deferred[pos - 1].0 > at {
                pos -= 1;
            }
            st.deferred.insert(pos, (at, seq, token));
        } else {
            st.in_wheel += 1;
            st.wheel_max = st.wheel_max.max(at);
            self.handle.schedule_token_seq(at, seq, token);
        }
    }

    /// Account for one of `link`'s in-wheel events having dispatched; once
    /// the link's wheel occupancy drains, promote the next deferred
    /// time-cohort (every entry sharing the earliest deferred time enters
    /// together, so event-tie candidate sets match eager scheduling).
    fn link_dispatched(&mut self, link: (usize, usize)) {
        let Some(st) = self.links.get_mut(&link) else {
            return;
        };
        debug_assert!(st.in_wheel > 0, "dispatch for link with empty wheel share");
        st.in_wheel -= 1;
        if st.in_wheel > 0 {
            return;
        }
        let Some(&(t0, _, _)) = st.deferred.front() else {
            st.wheel_max = 0;
            return;
        };
        st.wheel_max = t0;
        while let Some(&(t, seq, tok)) = st.deferred.front() {
            if t != t0 {
                break;
            }
            st.deferred.pop_front();
            st.in_wheel += 1;
            self.handle.schedule_token_seq(t, seq, tok);
        }
    }

    /// Post a two-sided send. The packet lands in `dst`'s receive queue and a
    /// completion lands in `src`'s CQ once the transfer (serialization + wire
    /// latency) finishes; both hosts are woken then. If `xfer` is given, the
    /// payload movement is recorded as a ground-truth data transfer.
    ///
    /// When the config carries a non-empty [`crate::fault::FaultPlan`], the
    /// packet may be dropped, duplicated, or delayed between the DMA and the
    /// remote receive queue. The sender's completion fires regardless — the
    /// NIC only knows the bytes left the node — so software above must detect
    /// loss itself (the point of the `simmpi` reliability layer). Every fault
    /// decision is recorded as a [`FaultEvent`] in the ground truth. Packets
    /// marked [`Packet::protect`] (reliability control traffic) bypass the
    /// injector entirely.
    pub fn post_send(
        &mut self,
        src: usize,
        dst: usize,
        packet: Packet,
        user: u64,
        xfer: Option<XferId>,
    ) -> WrId {
        let wr = self.alloc_wr();
        let now = self.now();
        let busy = self.cfg.serialize(packet.wire_bytes);
        let dma_start = self.nics[src].reserve_dma(now, busy);
        let (mut arrival, ingress_queue, hop_queue) =
            self.fabric_arrival(src, dst, dma_start, packet.wire_bytes, true);
        let mut edge = CausalEdge {
            dma_queue_ns: dma_start - now,
            serialize_ns: busy,
            ingress_queue_ns: ingress_queue,
            hop_queue_ns: hop_queue,
            fault_extra_ns: 0,
        };
        let mut deliver = true;
        let mut dup_arrival = None;
        if self.faulty && src != dst && !packet.protected {
            let plan = &self.cfg.faults;
            if self.fault_rng.chance(plan.drop_prob) {
                deliver = false;
                self.fault_events.push(FaultEvent {
                    at: now,
                    src,
                    dst,
                    packet_ty: packet.ty,
                    kind: FaultKind::Dropped,
                });
            } else {
                if self.fault_rng.chance(plan.delay_prob) {
                    let extra = self.fault_rng.below_inclusive(plan.max_extra_delay);
                    if extra > 0 {
                        arrival += extra;
                        edge.fault_extra_ns += extra;
                        self.fault_events.push(FaultEvent {
                            at: now,
                            src,
                            dst,
                            packet_ty: packet.ty,
                            kind: FaultKind::Delayed { extra },
                        });
                    }
                }
                if plan.explore_jitter_ns > 0 {
                    // Schedule exploration: the oracle picks a discrete
                    // offset inside the bounded jitter window. Without an
                    // installed oracle (or with the canonical one, which
                    // always answers 0) the arrival is untouched.
                    if let Some(orc) = self.handle.oracle() {
                        let step = orc.choose(simcore::ChoicePoint::FaultJitter {
                            src,
                            dst,
                            n: plan.jitter_steps() as usize,
                        });
                        let extra = plan.jitter_delay(step as u32);
                        if extra > 0 {
                            arrival += extra;
                            edge.fault_extra_ns += extra;
                            self.fault_events.push(FaultEvent {
                                at: now,
                                src,
                                dst,
                                packet_ty: packet.ty,
                                kind: FaultKind::Delayed { extra },
                            });
                        }
                    }
                }
                let deg = plan.degradation_delay(src, dst, dma_start);
                if deg > 0 {
                    arrival += deg;
                    edge.fault_extra_ns += deg;
                    self.fault_events.push(FaultEvent {
                        at: now,
                        src,
                        dst,
                        packet_ty: packet.ty,
                        kind: FaultKind::LinkDegraded { extra: deg },
                    });
                }
                let released = plan.stall_release(dst, arrival);
                if released > arrival {
                    edge.fault_extra_ns += released - arrival;
                    arrival = released;
                    self.fault_events.push(FaultEvent {
                        at: now,
                        src,
                        dst,
                        packet_ty: packet.ty,
                        kind: FaultKind::NicStalled {
                            released_at: released,
                        },
                    });
                }
                if self.fault_rng.chance(plan.duplicate_prob) {
                    // The copy trails the original by one serialization slot.
                    dup_arrival = Some(arrival + busy.max(1));
                    self.fault_events.push(FaultEvent {
                        at: now,
                        src,
                        dst,
                        packet_ty: packet.ty,
                        kind: FaultKind::Duplicated,
                    });
                }
            }
        }
        if deliver {
            if let Some(id) = xfer {
                self.transfers.push(TransferRecord {
                    xfer_id: id.0,
                    src,
                    dst,
                    bytes: packet.payload_len(),
                    phys_start: dma_start,
                    phys_end: arrival,
                    kind: TransferKind::Send,
                    edge,
                });
            }
        }
        if let Some(dup_at) = dup_arrival {
            let copy = packet.clone();
            self.schedule_pending(dup_at, Pending::DupDeliver { dst, packet: copy });
        }
        if deliver {
            self.schedule_pending(
                arrival,
                Pending::SendDeliver {
                    src,
                    dst,
                    wr,
                    user,
                    packet,
                    edge,
                },
            );
        } else {
            // Dropped in the fabric: the send still completes locally.
            self.schedule_pending(
                arrival,
                Pending::SendDropComplete {
                    src,
                    wr,
                    user,
                    edge,
                },
            );
        }
        wr
    }

    /// Post a one-sided RDMA Write of `data` into `(dst, dst_region)` at
    /// `dst_off`. The destination **host is not involved and not woken**; the
    /// bytes simply appear in its registered memory. A completion (with
    /// `user` correlation) lands in `src`'s CQ at remote placement time. An
    /// optional `notify` packet is delivered to `dst` *after* the data — the
    /// usual "write then tell them" idiom.
    #[allow(clippy::too_many_arguments)]
    pub fn post_rdma_write(
        &mut self,
        src: usize,
        dst: usize,
        dst_region: RegionId,
        dst_off: usize,
        data: Bytes,
        user: u64,
        notify: Option<Packet>,
        xfer: Option<XferId>,
    ) -> WrId {
        let wr = self.alloc_wr();
        let now = self.now();
        let len = data.len();
        let busy = self.cfg.serialize(len);
        let dma_start = self.nics[src].reserve_dma(now, busy);
        let (arrival, ingress_queue, hop_queue) =
            self.fabric_arrival(src, dst, dma_start, len, true);
        let edge = CausalEdge {
            dma_queue_ns: dma_start - now,
            serialize_ns: busy,
            ingress_queue_ns: ingress_queue,
            hop_queue_ns: hop_queue,
            fault_extra_ns: 0,
        };
        if let Some(id) = xfer {
            self.transfers.push(TransferRecord {
                xfer_id: id.0,
                src,
                dst,
                bytes: len,
                phys_start: dma_start,
                phys_end: arrival,
                kind: TransferKind::RdmaWrite,
                edge,
            });
        }
        self.schedule_pending(
            arrival,
            Pending::WriteApply {
                src,
                dst,
                region: dst_region,
                off: dst_off,
                data,
                wr,
                user,
                notify,
                edge,
            },
        );
        wr
    }

    /// Post a one-sided accumulate: elementwise `f64` addition of `data`
    /// into `(dst, dst_region)` at byte offset `dst_off`, performed at the
    /// destination NIC without host involvement (the NIC-atomic model used
    /// by one-sided libraries for `ARMCI_Acc`-style operations). Timing and
    /// completion semantics match [`World::post_rdma_write`].
    #[allow(clippy::too_many_arguments)]
    pub fn post_rdma_acc_f64(
        &mut self,
        src: usize,
        dst: usize,
        dst_region: RegionId,
        dst_off: usize,
        data: Vec<f64>,
        user: u64,
        xfer: Option<XferId>,
    ) -> WrId {
        let wr = self.alloc_wr();
        let now = self.now();
        let len = data.len() * 8;
        let busy = self.cfg.serialize(len);
        let dma_start = self.nics[src].reserve_dma(now, busy);
        // NIC-atomic streams contend on fabric links but bypass the ingress
        // engine (they terminate in the remote NIC, not host memory paths).
        let (arrival, _, hop_queue) = self.fabric_arrival(src, dst, dma_start, len, false);
        let edge = CausalEdge {
            dma_queue_ns: dma_start - now,
            serialize_ns: busy,
            hop_queue_ns: hop_queue,
            ..CausalEdge::default()
        };
        if let Some(id) = xfer {
            self.transfers.push(TransferRecord {
                xfer_id: id.0,
                src,
                dst,
                bytes: len,
                phys_start: dma_start,
                phys_end: arrival,
                kind: TransferKind::RdmaWrite,
                edge,
            });
        }
        self.schedule_pending(
            arrival,
            Pending::AccApply {
                src,
                dst,
                region: dst_region,
                off: dst_off,
                data,
                wr,
                user,
                edge,
            },
        );
        wr
    }

    /// Post a one-sided fetch-and-add on a `u64` at byte offset `off` of
    /// `(target, region)`: atomically adds `delta` at the target NIC and
    /// returns the *previous* value in the completion's data (8 LE bytes).
    /// The model for `ARMCI_Rmw` / network atomics. Timing matches an RDMA
    /// Read of 8 bytes.
    pub fn post_rdma_fetch_add(
        &mut self,
        initiator: usize,
        target: usize,
        region: RegionId,
        off: usize,
        delta: u64,
        user: u64,
    ) -> WrId {
        let wr = self.alloc_wr();
        let now = self.now();
        let request_at = now + self.latency(initiator, target);
        self.schedule_pending(
            request_at,
            Pending::FetchAddRequest {
                initiator,
                target,
                region,
                off,
                delta,
                wr,
                user,
            },
        );
        wr
    }

    /// Post a one-sided RDMA Read of `len` bytes from `(target, region)` at
    /// `off`. The request travels one latency to the target, whose NIC
    /// serves it **without host involvement**; the data arrives back at the
    /// initiator in the CQ completion (`Completion::data`). An optional
    /// `notify` packet is delivered to the target after its NIC finishes
    /// serving (used for FIN notifications in rendezvous protocols).
    #[allow(clippy::too_many_arguments)]
    pub fn post_rdma_read(
        &mut self,
        initiator: usize,
        target: usize,
        region: RegionId,
        off: usize,
        len: usize,
        user: u64,
        notify_target: Option<Packet>,
        xfer: Option<XferId>,
    ) -> WrId {
        self.rdma_read_imm(
            initiator,
            target,
            region,
            off,
            len,
            user,
            [0; 3],
            notify_target,
            xfer,
        )
    }

    /// [`World::post_rdma_read`] with immediate data attached to the
    /// eventual completion (used by the hw tag-matching pull, whose
    /// completion must carry the matched envelope).
    #[allow(clippy::too_many_arguments)]
    fn rdma_read_imm(
        &mut self,
        initiator: usize,
        target: usize,
        region: RegionId,
        off: usize,
        len: usize,
        user: u64,
        imm: [u64; 3],
        notify_target: Option<Packet>,
        xfer: Option<XferId>,
    ) -> WrId {
        let wr = self.alloc_wr();
        let now = self.now();
        let request_at = now + self.latency(initiator, target);
        self.schedule_pending(
            request_at,
            Pending::ReadRequest {
                initiator,
                target,
                region,
                off,
                len,
                wr,
                user,
                imm,
                notify: notify_target,
                xfer,
            },
        );
        wr
    }

    // ---- hardware tag matching (hw-tag progress model) -------------------

    /// Post an eager send resolved by the *receiving NIC's* tag matcher: the
    /// payload travels like any two-sided send (DMA, fabric, optional
    /// ground-truth record under `xfer`), but at arrival the NIC matches it
    /// against [`World::hw_post_recv`] descriptors and completes the matched
    /// receive directly — the destination host never sees a packet. The
    /// local wire completion carries `wire_user`. When `ack_user` is given
    /// (synchronous sends), the matching NIC schedules a bare completion
    /// with that word back to this node one control latency after the match.
    ///
    /// Offload traffic rides the fabric's reliable transport: it is exempt
    /// from fault injection, like reliability-layer control traffic.
    #[allow(clippy::too_many_arguments)]
    pub fn hw_send(
        &mut self,
        src: usize,
        dst: usize,
        tag: u64,
        data: Bytes,
        wire_bytes: usize,
        xfer_word: u64,
        wire_user: u64,
        ack_user: Option<u64>,
        xfer: Option<XferId>,
    ) -> WrId {
        let pkt = Packet::with_data(
            src,
            wire_bytes,
            crate::packet::hw::EAGER,
            [
                tag,
                xfer_word,
                ack_user.is_some() as u64,
                ack_user.unwrap_or(0),
                0,
                0,
            ],
            data,
        )
        .protect();
        self.post_send(src, dst, pkt, wire_user, xfer)
    }

    /// Post a rendezvous send resolved by the receiving NIC: an RTS control
    /// packet advertises `(tag, len, region)`; when the remote NIC matches
    /// it, the NIC itself pulls the region with an RDMA Read (recorded as
    /// transfer `xfer`) and delivers `fin` back to this node after the pull
    /// — zero involvement from either host past the post. The matched
    /// receive completes with the pulled bytes and `(src, tag, xfer)`
    /// immediate data.
    #[allow(clippy::too_many_arguments)]
    pub fn hw_send_rndv(
        &mut self,
        src: usize,
        dst: usize,
        tag: u64,
        len: usize,
        region: RegionId,
        xfer: XferId,
        rts_user: u64,
        fin: Packet,
    ) -> WrId {
        let meta = self.next_hw_meta;
        self.next_hw_meta += 1;
        self.hw_fin_meta.insert(meta, fin);
        let pkt = Packet::control(
            src,
            self.cfg.ctrl_packet_bytes,
            crate::packet::hw::RTS,
            [tag, len as u64, region.0, xfer.0, meta, 0],
        )
        .protect();
        self.post_send(src, dst, pkt, rts_user, None)
    }

    /// Post a receive descriptor into `node`'s NIC matching table (`None`
    /// selectors are wildcards). If a parked unexpected arrival already
    /// matches, the NIC resolves it immediately: eager payloads complete
    /// right away, rendezvous RTSs start their pull. The eventual completion
    /// echoes `user` and carries `(src, tag, xfer word)` immediate data.
    pub fn hw_post_recv(&mut self, node: usize, src: Option<usize>, tag: Option<u64>, user: u64) {
        let pos = self.nics[node]
            .hw_unexpected
            .iter()
            .position(|u| u.matches(src, tag));
        let Some(pos) = pos else {
            self.nics[node]
                .hw_posted
                .push_back(HwPosted { src, tag, user });
            return;
        };
        match self.nics[node].hw_unexpected.remove(pos).unwrap() {
            HwUnexpected::Eager {
                src: s,
                tag: t,
                xfer,
                data,
                edge,
                ack,
            } => {
                self.hw_complete_recv(node, user, data, edge, [s as u64, t, xfer]);
                if let Some(u) = ack {
                    self.hw_schedule_ack(node, s, u);
                }
            }
            HwUnexpected::Rndv {
                src: s,
                tag: t,
                len,
                region,
                xfer,
                fin,
            } => {
                self.hw_start_pull(node, s, region, len, xfer, t, user, fin);
            }
        }
    }

    /// Envelope of the first arrival in `node`'s NIC unexpected queue
    /// matching the selectors, if any (the hw analogue of scanning the
    /// host-side unexpected queue for `MPI_Probe`).
    pub fn hw_probe(
        &self,
        node: usize,
        src: Option<usize>,
        tag: Option<u64>,
    ) -> Option<(usize, u64)> {
        self.nics[node]
            .hw_unexpected
            .iter()
            .find(|u| u.matches(src, tag))
            .map(|u| u.envelope())
    }

    /// NIC-side resolution of an offload packet at delivery time.
    fn hw_deliver(&mut self, dst: usize, packet: Packet) {
        let src = packet.src;
        let edge = packet.edge;
        self.nics[dst].packets_delivered += 1;
        match packet.ty {
            t if t == crate::packet::hw::EAGER => {
                let tag = packet.h[0];
                let xfer_word = packet.h[1];
                let ack = (packet.h[2] != 0).then_some(packet.h[3]);
                let data = packet.data.unwrap_or_default();
                if let Some(pos) = self.nics[dst].hw_match(src, tag) {
                    let e = self.nics[dst].hw_posted.remove(pos).unwrap();
                    self.hw_complete_recv(dst, e.user, data, edge, [src as u64, tag, xfer_word]);
                    if let Some(u) = ack {
                        self.hw_schedule_ack(dst, src, u);
                    }
                } else {
                    self.nics[dst].hw_unexpected.push_back(HwUnexpected::Eager {
                        src,
                        tag,
                        xfer: xfer_word,
                        data,
                        edge,
                        ack,
                    });
                }
            }
            t if t == crate::packet::hw::RTS => {
                let tag = packet.h[0];
                let len = packet.h[1] as usize;
                let region = RegionId(packet.h[2]);
                let xfer = packet.h[3];
                let fin = self
                    .hw_fin_meta
                    .remove(&packet.h[4])
                    .expect("hw RTS without FIN template");
                if let Some(pos) = self.nics[dst].hw_match(src, tag) {
                    let e = self.nics[dst].hw_posted.remove(pos).unwrap();
                    self.hw_start_pull(dst, src, region, len, xfer, tag, e.user, fin);
                } else {
                    self.nics[dst].hw_unexpected.push_back(HwUnexpected::Rndv {
                        src,
                        tag,
                        len,
                        region,
                        xfer,
                        fin,
                    });
                }
            }
            other => panic!("unknown hw packet type {other}"),
        }
    }

    /// Push a matched-receive completion into `node`'s CQ.
    fn hw_complete_recv(
        &mut self,
        node: usize,
        user: u64,
        data: Bytes,
        edge: CausalEdge,
        imm: [u64; 3],
    ) {
        let wr = self.alloc_wr();
        self.nics[node].cq.push_back(Completion {
            wr_id: wr,
            user,
            data: Some(data),
            imm,
            edge,
        });
        self.nics[node].completions_generated += 1;
    }

    /// Schedule the synchronous-send match notification from the matching
    /// NIC (`from`) back to the sender (`to`).
    fn hw_schedule_ack(&mut self, from: usize, to: usize, user: u64) {
        let wr = self.alloc_wr();
        let at = self.now() + self.latency(from, to);
        self.schedule_pending(at, Pending::HwAck { from, to, wr, user });
    }

    /// Start the NIC-initiated rendezvous pull for a matched RTS.
    #[allow(clippy::too_many_arguments)]
    fn hw_start_pull(
        &mut self,
        dst: usize,
        src: usize,
        region: RegionId,
        len: usize,
        xfer: u64,
        tag: u64,
        user: u64,
        fin: Packet,
    ) {
        self.rdma_read_imm(
            dst,
            src,
            region,
            0,
            len,
            user,
            [src as u64, tag, xfer],
            Some(fin),
            Some(XferId(xfer)),
        );
    }

    /// Drain one completion from `node`'s CQ, if any. The *host cost* of the
    /// poll (`cfg().poll_cost`) must be charged by the caller.
    pub fn poll_cq(&mut self, node: usize) -> Option<Completion> {
        self.nics[node].cq.pop_front()
    }

    /// Drain one received packet from `node`'s receive queue, if any.
    pub fn poll_rx(&mut self, node: usize) -> Option<Packet> {
        self.nics[node].rx.pop_front()
    }

    /// Would a poll on `node` observe anything right now?
    pub fn has_host_events(&self, node: usize) -> bool {
        self.nics[node].has_host_events()
    }

    /// Counters for one NIC (diagnostics / utilization studies).
    pub fn nic_stats(&self, node: usize) -> NicStats {
        let nic = &self.nics[node];
        NicStats {
            packets_delivered: nic.packets_delivered,
            completions_generated: nic.completions_generated,
            dma_busy_until: nic.dma_free_at,
            rx_backlog: nic.rx.len(),
            cq_backlog: nic.cq.len(),
        }
    }

    /// Ground-truth transfer records so far.
    pub fn transfers(&self) -> &[TransferRecord] {
        &self.transfers
    }

    /// Take ownership of the transfer records (e.g. at end of run).
    pub fn take_transfers(&mut self) -> Vec<TransferRecord> {
        std::mem::take(&mut self.transfers)
    }

    /// Ground-truth fault events injected so far.
    pub fn fault_events(&self) -> &[FaultEvent] {
        &self.fault_events
    }

    /// Take ownership of the fault events (e.g. at end of run).
    pub fn take_fault_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.fault_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{SimOpts, Simulation};

    fn two_node_world() -> (Simulation, SharedWorld) {
        let sim = Simulation::new(2);
        let world = World::new_shared(NetConfig::infiniband_2006(), sim.handle(), 2);
        (sim, world)
    }

    #[test]
    fn send_delivers_packet_and_completion() {
        let (sim, world) = two_node_world();
        let w2 = world.clone();
        let out = sim
            .run(SimOpts::default(), move |ctx| {
                if ctx.rank() == 0 {
                    let xfer = {
                        let mut w = w2.lock();
                        let x = w.alloc_xfer_id();
                        let p = Packet::with_data(
                            0,
                            1064,
                            1,
                            [42, 0, 0, 0, 0, 0],
                            Bytes::from(vec![7u8; 1000]),
                        );
                        w.post_send(0, 1, p, 0, Some(x));
                        x
                    };
                    // Wait for the local completion.
                    loop {
                        if w2.lock().poll_cq(0).is_some() {
                            break;
                        }
                        ctx.park();
                    }
                    let _ = xfer;
                } else {
                    loop {
                        if let Some(p) = w2.lock().poll_rx(1) {
                            assert_eq!(p.src, 0);
                            assert_eq!(p.h[0], 42);
                            assert_eq!(p.data.unwrap()[999], 7);
                            break;
                        }
                        ctx.park();
                    }
                }
            })
            .unwrap();
        // serialization (1064 B at 1 B/ns) + 5 µs latency
        assert_eq!(out.end_time, 1064 + 5000);
        let ts = world.lock().take_transfers();
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].bytes, 1000);
        assert_eq!(ts[0].phys_end - ts[0].phys_start, 1064 + 5000);
    }

    #[test]
    fn rdma_write_places_data_without_waking_target() {
        let (sim, world) = two_node_world();
        let w2 = world.clone();
        let out = sim
            .run(SimOpts::default(), move |ctx| {
                if ctx.rank() == 0 {
                    {
                        let mut w = w2.lock();
                        let region = w.register(1, vec![0u8; 100]); // target-side region
                        let x = w.alloc_xfer_id();
                        w.post_rdma_write(
                            0,
                            1,
                            region,
                            10,
                            Bytes::from(vec![5u8; 50]),
                            99,
                            None,
                            Some(x),
                        );
                        // Stash region id for rank 1 via header-free channel:
                        // use a second region on node 0 as a mailbox.
                        let mailbox = w.register(0, region.0.to_le_bytes().to_vec());
                        assert_eq!(mailbox.0, region.0 + 1);
                    }
                    loop {
                        let c = w2.lock().poll_cq(0);
                        if let Some(c) = c {
                            assert_eq!(c.user, 99);
                            break;
                        }
                        ctx.park();
                    }
                    // After completion the data must be in target memory.
                    let w = w2.lock();
                    let data = w.mem(1).get(RegionId(0)).unwrap();
                    assert_eq!(&data[10..60], &[5u8; 50][..]);
                    assert_eq!(data[0], 0);
                } else {
                    // Target host does nothing; it must never be woken.
                    ctx.compute(100);
                }
            })
            .unwrap();
        assert!(out.end_time >= 5050);
        assert_eq!(world.lock().transfers()[0].kind, TransferKind::RdmaWrite);
    }

    #[test]
    fn rdma_read_fetches_remote_bytes() {
        let (sim, world) = two_node_world();
        let w2 = world.clone();
        sim.run(SimOpts::default(), move |ctx| {
            if ctx.rank() == 1 {
                // Target registers data at a deterministic region id (0) and
                // idles; its host never participates in the read.
                w2.lock().register(1, (0u8..200).collect());
                ctx.compute(1_000_000);
            } else {
                ctx.compute(10_000); // let target register first
                {
                    let mut w = w2.lock();
                    let x = w.alloc_xfer_id();
                    w.post_rdma_read(0, 1, RegionId(0), 50, 100, 7, None, Some(x));
                }
                loop {
                    let c = w2.lock().poll_cq(0);
                    if let Some(c) = c {
                        assert_eq!(c.user, 7);
                        let data = c.data.unwrap();
                        assert_eq!(data.len(), 100);
                        assert_eq!(data[0], 50);
                        assert_eq!(data[99], 149);
                        return;
                    }
                    ctx.park();
                }
            }
        })
        .unwrap();
        let ts = world.lock().take_transfers();
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].kind, TransferKind::RdmaRead);
        assert_eq!(ts[0].src, 1);
        assert_eq!(ts[0].dst, 0);
        // duration = serialization + return latency
        assert_eq!(ts[0].duration(), 100 + 5000);
    }

    #[test]
    fn dma_serializes_two_concurrent_sends() {
        let (sim, world) = two_node_world();
        let w2 = world.clone();
        sim.run(SimOpts::default(), move |ctx| {
            if ctx.rank() == 0 {
                {
                    let mut w = w2.lock();
                    let x1 = w.alloc_xfer_id();
                    let x2 = w.alloc_xfer_id();
                    let mk = |n| Packet::with_data(0, 1000, 1, [0; 6], Bytes::from(vec![n; 1000]));
                    w.post_send(0, 1, mk(1), 0, Some(x1));
                    w.post_send(0, 1, mk(2), 0, Some(x2));
                }
                let mut got = 0;
                while got < 2 {
                    while w2.lock().poll_cq(0).is_some() {
                        got += 1;
                    }
                    if got < 2 {
                        ctx.park();
                    }
                }
            } else {
                let mut got = 0;
                while got < 2 {
                    while w2.lock().poll_rx(1).is_some() {
                        got += 1;
                    }
                    if got < 2 {
                        ctx.park();
                    }
                }
            }
        })
        .unwrap();
        let ts = world.lock().take_transfers();
        assert_eq!(ts.len(), 2);
        // Second transfer's DMA start must wait for the first to finish.
        assert_eq!(ts[1].phys_start, ts[0].phys_start + 1000);
    }

    #[test]
    fn notify_packet_arrives_with_rdma_write() {
        let (sim, world) = two_node_world();
        let w2 = world.clone();
        sim.run(SimOpts::default(), move |ctx| {
            if ctx.rank() == 0 {
                {
                    let mut w = w2.lock();
                    let region = w.register(1, vec![0u8; 8]);
                    let fin = Packet::control(0, 64, 9, [region.0, 0, 0, 0, 0, 0]);
                    w.post_rdma_write(
                        0,
                        1,
                        region,
                        0,
                        Bytes::from(vec![3u8; 8]),
                        0,
                        Some(fin),
                        None,
                    );
                }
                ctx.compute(1);
            } else {
                loop {
                    let p = w2.lock().poll_rx(1);
                    if let Some(p) = p {
                        assert_eq!(p.ty, 9);
                        // Data must already be visible when the FIN arrives.
                        let w = w2.lock();
                        assert_eq!(w.mem(1).get(RegionId(p.h[0])).unwrap(), &[3u8; 8][..]);
                        return;
                    }
                    ctx.park();
                }
            }
        })
        .unwrap();
    }
}

#[cfg(test)]
mod ingress_tests {
    use super::*;
    use bytes::Bytes;
    use simcore::{SimOpts, Simulation};

    fn incast_end_time(contention: bool) -> simcore::Time {
        let sim = Simulation::new(3);
        let cfg = NetConfig {
            model_ingress_contention: contention,
            ..NetConfig::infiniband_2006()
        };
        let world = World::new_shared(cfg, sim.handle(), 3);
        let w2 = world.clone();
        let out = sim
            .run(SimOpts::default(), move |ctx| {
                if ctx.rank() == 2 {
                    // Sink: wait for both 100 KB packets.
                    let mut got = 0;
                    while got < 2 {
                        if w2.lock().poll_rx(2).is_some() {
                            got += 1;
                        } else {
                            ctx.park();
                        }
                    }
                } else {
                    let mut w = w2.lock();
                    let pkt = Packet::with_data(
                        ctx.rank(),
                        100_000,
                        1,
                        [0; 6],
                        Bytes::from(vec![1u8; 100_000]),
                    );
                    w.post_send(ctx.rank(), 2, pkt, 0, None);
                }
            })
            .unwrap();
        out.end_time
    }

    #[test]
    fn incast_contention_serializes_arrivals() {
        let free = incast_end_time(false);
        let contended = incast_end_time(true);
        // Without contention both arrive after one serialization; with it,
        // the second must queue behind the first at the receiver.
        assert!(contended > free, "{contended} <= {free}");
        assert!(
            contended >= free + 90_000,
            "second transfer should queue ~one serialization: {contended} vs {free}"
        );
    }

    #[test]
    fn point_to_point_unaffected_by_ingress_model() {
        // A single flow sees identical timing with or without the model.
        let run = |contention: bool| {
            let sim = Simulation::new(2);
            let cfg = NetConfig {
                model_ingress_contention: contention,
                ..NetConfig::infiniband_2006()
            };
            let world = World::new_shared(cfg, sim.handle(), 2);
            let w2 = world.clone();
            sim.run(SimOpts::default(), move |ctx| {
                if ctx.rank() == 0 {
                    let mut w = w2.lock();
                    let pkt =
                        Packet::with_data(0, 50_000, 1, [0; 6], Bytes::from(vec![1u8; 50_000]));
                    w.post_send(0, 1, pkt, 0, None);
                } else {
                    loop {
                        if w2.lock().poll_rx(1).is_some() {
                            break;
                        }
                        ctx.park();
                    }
                }
            })
            .unwrap()
            .end_time
        };
        assert_eq!(run(false), run(true));
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use bytes::Bytes;
    use simcore::{SimOpts, Simulation};

    #[test]
    fn nic_stats_count_traffic() {
        let sim = Simulation::new(2);
        let world = World::new_shared(NetConfig::infiniband_2006(), sim.handle(), 2);
        let w2 = world.clone();
        sim.run(SimOpts::default(), move |ctx| {
            if ctx.rank() == 0 {
                {
                    let mut w = w2.lock();
                    for i in 0..3 {
                        let pkt = Packet::with_data(0, 128, 1, [i; 6], Bytes::from(vec![1u8; 64]));
                        w.post_send(0, 1, pkt, 0, None);
                    }
                }
                let mut got = 0;
                while got < 3 {
                    if w2.lock().poll_cq(0).is_some() {
                        got += 1;
                    } else {
                        ctx.park();
                    }
                }
            } else {
                // Deliberately leave one packet unpolled to observe backlog.
                let mut got = 0;
                while got < 2 {
                    if w2.lock().poll_rx(1).is_some() {
                        got += 1;
                    } else {
                        ctx.park();
                    }
                }
            }
        })
        .unwrap();
        let w = world.lock();
        let s0 = w.nic_stats(0);
        let s1 = w.nic_stats(1);
        assert_eq!(s0.completions_generated, 3);
        assert_eq!(s0.cq_backlog, 0);
        assert_eq!(s1.packets_delivered, 3);
        assert_eq!(s1.rx_backlog, 1, "one packet intentionally unpolled");
        assert!(s0.dma_busy_until > 0);
    }
}
