//! `cargo bench --bench figures` — regenerates every paper figure's data
//! series and prints it (harness = false; this is a reproduction driver,
//! not a timing benchmark).

fn main() {
    let archive = std::path::Path::new("target/figures");
    println!("# Paper figure reproduction — Shet et al., CLUSTER 2006");
    println!("# (series shapes are compared against the paper in EXPERIMENTS.md;");
    println!("#  JSON copies land in target/figures/)\n");
    for (_, f) in bench::figures::all() {
        let s = f();
        s.save_json(archive);
        print!("{}", s.render());
        println!();
    }
    println!("# Ablations (DESIGN.md §6)\n");
    for (_, f) in bench::ablations::all() {
        let s = f();
        s.save_json(archive);
        print!("{}", s.render());
        println!();
    }
}
