//! Per-rank execution context.

use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};

use crate::engine::{EngineHandle, EngineShared, YieldMsg};
use crate::time::{Duration, Time};
use crate::truth::{Activity, ActivityLog};

/// How a rank continuation transfers control back to the engine. Constructed
/// by the engine's driver; a `RankCtx` never outlives its continuation, so
/// the fiber variant's raw cell pointer stays valid for the context's whole
/// life.
pub(crate) enum YieldPort {
    /// Fiber-hosted rank: yield by writing the message into the shared cell
    /// and swapping stacks — no syscall, no atomics.
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    Fiber(*mut crate::fiber::FiberData),
    /// Thread-hosted rank: rendezvous with the engine over a channel pair.
    Thread {
        yield_tx: Sender<YieldMsg>,
        resume_rx: Receiver<()>,
    },
}

/// Handle through which a simulated process interacts with virtual time.
///
/// A `RankCtx` is handed to the rank body by [`crate::Simulation::run`]. All
/// methods that advance or wait on virtual time transfer control back to the
/// engine, which runs network events (and other ranks) in the meantime.
pub struct RankCtx {
    rank: usize,
    nranks: usize,
    shared: Arc<EngineShared>,
    port: YieldPort,
    log: ActivityLog,
}

impl RankCtx {
    pub(crate) fn new(
        rank: usize,
        nranks: usize,
        shared: Arc<EngineShared>,
        port: YieldPort,
    ) -> Self {
        RankCtx {
            rank,
            nranks,
            shared,
            port,
            log: ActivityLog::new(),
        }
    }

    /// This rank's id, `0..nranks`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks in the simulation.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        EngineHandle {
            shared: Arc::clone(&self.shared),
        }
        .now()
    }

    /// Engine handle (for scheduling events / waking other ranks from
    /// library code running on this rank's continuation).
    pub fn handle(&self) -> EngineHandle {
        EngineHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Perform user computation for `d` nanoseconds of virtual time.
    pub fn compute(&mut self, d: Duration) {
        self.busy(d, Activity::Compute);
    }

    /// Spend `d` nanoseconds of host CPU time attributed to `kind`.
    /// Communication libraries use `Activity::Library` for copies,
    /// registration, and protocol processing costs.
    pub fn busy(&mut self, d: Duration, kind: Activity) {
        if d == 0 {
            return;
        }
        let start = self.now();
        let end = start.saturating_add(d);
        self.log.record(start, end, kind);
        self.yield_to_engine(YieldMsg::Sleep(end));
    }

    /// Block until an event handler calls [`EngineHandle::wake_rank`] for
    /// this rank. The blocked interval is attributed to
    /// [`Activity::LibraryWait`] in the ground-truth log. On wake-up the
    /// blocked-on note (if any) is cleared: the rank is no longer blocked.
    pub fn park(&mut self) {
        let start = self.now();
        self.yield_to_engine(YieldMsg::Park);
        let end = self.now();
        self.log.record(start, end, Activity::LibraryWait);
        // SAFETY: this rank is the running continuation and touches only its
        // own diag slot; the engine is suspended in `resume`.
        unsafe {
            self.shared.diags[self.rank].with(|d| {
                d.blocked_on = None;
                d.waits_on_rank = None;
                d.waits_on_req = None;
            });
        }
    }

    /// Describe what this rank is about to block on. Dumped per rank in
    /// [`crate::SimError::Deadlock`] if the simulation wedges; cleared
    /// automatically when [`RankCtx::park`] returns.
    ///
    /// This sits on the park hot path, so the note is shared, not copied:
    /// pass a cached `Arc<str>` (re-rendered only when the underlying state
    /// actually changes) and the call is a refcount bump plus a store into
    /// this rank's own diagnostic slot. Plain `&str` / `String` arguments
    /// still work and allocate once here.
    pub fn note_blocked_on(&self, what: impl Into<Arc<str>>) {
        let what = what.into();
        // SAFETY: running continuation, own slot only (see `park`).
        unsafe {
            self.shared.diags[self.rank].with(|d| d.blocked_on = Some(what));
        }
    }

    /// Record a structured wait-for edge alongside the free-text note: the
    /// peer rank whose action this rank is blocked on (when the library can
    /// name a single one) and the library-level request id it is blocked in.
    /// On deadlock these edges are walked into a `rank -> request -> rank`
    /// cycle report (see [`crate::deadlock_cycle`]); like the blocked-on
    /// note they are cleared when [`RankCtx::park`] returns.
    pub fn note_waiting_on(&self, peer: Option<usize>, req: Option<u64>) {
        // SAFETY: running continuation, own slot only (see `park`).
        unsafe {
            self.shared.diags[self.rank].with(|d| {
                d.waits_on_rank = peer;
                d.waits_on_req = req;
            });
        }
    }

    /// Record the name of the library call the rank just entered (also
    /// dumped in the deadlock diagnostic). Stored by pointer — no
    /// allocation or copy.
    pub fn note_call(&self, name: &'static str) {
        // SAFETY: running continuation, own slot only (see `park`).
        unsafe {
            self.shared.diags[self.rank].with(|d| d.last_call = Some(name));
        }
    }

    /// Ground-truth log recorded so far (read-only).
    pub fn activity(&self) -> &ActivityLog {
        &self.log
    }

    pub(crate) fn take_log(&mut self) -> ActivityLog {
        std::mem::take(&mut self.log)
    }

    fn yield_to_engine(&mut self, msg: YieldMsg) {
        match &mut self.port {
            #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
            YieldPort::Fiber(data) => {
                let data = *data;
                // SAFETY: we are the running fiber for this cell; the engine
                // (suspended in `resume`) reads the message after the switch
                // and owns the cell until it resumes us again.
                unsafe {
                    (*data).msg = Some(msg);
                    crate::fiber::yield_to_engine(data);
                    if (*data).abort {
                        // The engine tore down mid-run (another rank
                        // panicked, limit hit, ...). Unwind out of the rank
                        // body; the fiber entry wrapper swallows this.
                        panic!("simulation aborted");
                    }
                }
            }
            YieldPort::Thread {
                yield_tx,
                resume_rx,
            } => {
                yield_tx
                    .send(msg)
                    .unwrap_or_else(|_| panic!("simulation aborted"));
                if resume_rx.recv().is_err() {
                    // Same teardown unwind as the fiber path, triggered by
                    // the engine dropping the resume senders.
                    panic!("simulation aborted");
                }
            }
        }
    }
}
