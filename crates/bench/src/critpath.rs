//! Critical-path artifacts for `repro --critical-path <dir>`.
//!
//! Folds captured [`TraceBundle`]s through `overlap-core`'s
//! [attribution] layer into the three artifacts
//! the CLI exports per harness:
//!
//! * a per-rank **wait-state breakdown** ([`ScopeWaitStates`]) merged into
//!   the `--json` run report,
//! * a **collapsed-stack** file (`<id>.critpath.folded`, one
//!   `frame;frame;... weight` line per dominant wait chain — feed to any
//!   flamegraph renderer),
//! * a structured **attribution artifact** (`<id>.attribution.json`) with
//!   the per-transfer cause records and the instrumentation self-overhead
//!   meter.
//!
//! Everything here is a pure function of the captured traces (virtual time
//! only), so all artifacts are byte-identical across runs and `--jobs`
//! values. Host wall-clock — the one nondeterministic quantity — is
//! reported by the CLI on stderr only.

use overlap_core::attribution::{self, WaitCause};
use overlap_core::trace::TraceBundle;

/// Total attributed nanoseconds for one cause (stable label from
/// [`WaitCause::label`]).
#[derive(Debug, Clone, serde::Serialize)]
pub struct CauseTotal {
    /// Cause label (e.g. `"late_sender"`).
    pub cause: String,
    /// Attributed nanoseconds.
    pub ns: u64,
}

/// One rank's wait-state summary within a scope.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RankWaitStates {
    /// Rank index.
    pub rank: usize,
    /// Blocking intervals the library classified.
    pub wait_intervals: usize,
    /// Σ provably-non-overlapped transfer time, ns (`xfer_time −
    /// max_overlap` over all transfers).
    pub nonoverlap_ns: u64,
    /// Per-cause attributed totals in canonical cause order, zero causes
    /// omitted. Sums to `nonoverlap_ns`.
    pub causes: Vec<CauseTotal>,
}

/// Per-rank wait-state breakdown of one traced scope, as merged into the
/// `--json` run report.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ScopeWaitStates {
    /// Scope label (`"<harness>/<point>"`).
    pub scope: String,
    /// Per-rank summaries, rank order.
    pub ranks: Vec<RankWaitStates>,
}

/// One cause slice of a transfer's breakdown (serialized form).
#[derive(Debug, Clone, serde::Serialize)]
pub struct SliceJson {
    /// Cause label.
    pub cause: String,
    /// Attributed nanoseconds.
    pub ns: u64,
}

/// One per-transfer cause record (serialized form of
/// [`overlap_core::attribution::CauseRecord`]).
#[derive(Debug, Clone, serde::Serialize)]
pub struct TransferJson {
    /// Transfer id, if the instrumentation saw one.
    pub id: Option<u64>,
    /// Payload bytes.
    pub bytes: u64,
    /// A-priori wire time, ns.
    pub xfer_time: u64,
    /// Upper overlap bound, ns.
    pub max_overlap: u64,
    /// Non-overlapped time the breakdown explains, ns.
    pub nonoverlap: u64,
    /// Fault-disturbed transfer.
    pub flagged: bool,
    /// Cause breakdown; sums to `nonoverlap` exactly.
    pub breakdown: Vec<SliceJson>,
}

/// One rank's full attribution inside the artifact file.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RankAttributionJson {
    /// Rank index.
    pub rank: usize,
    /// Blocking intervals the library classified.
    pub wait_intervals: usize,
    /// Per-transfer records, close order.
    pub transfers: Vec<TransferJson>,
}

/// One scope's section of the artifact file.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ScopeAttributionJson {
    /// Scope label.
    pub scope: String,
    /// Per-rank attributions.
    pub ranks: Vec<RankAttributionJson>,
}

/// Instrumentation self-overhead meter: what the observability layer itself
/// cost, in deterministic units (counts and virtual-time nanoseconds — host
/// wall-clock goes to stderr, not into artifacts).
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct OverheadMeter {
    /// Traced scopes folded.
    pub scopes: usize,
    /// Rank traces folded.
    pub ranks: usize,
    /// Raw instrumentation events captured.
    pub events: u64,
    /// Per-transfer bound records derived.
    pub bound_records: u64,
    /// Wait intervals classified and recorded.
    pub wait_intervals: u64,
    /// Σ attributed non-overlap across all transfers, ns.
    pub attributed_ns: u64,
}

/// The `<id>.attribution.json` artifact: per-scope, per-rank, per-transfer
/// cause records plus the self-overhead meter.
#[derive(Debug, Clone, serde::Serialize)]
pub struct AttributionArtifact {
    /// Harness id the artifact covers.
    pub id: String,
    /// Per-scope attributions, scope order.
    pub scopes: Vec<ScopeAttributionJson>,
    /// What the instrumentation itself cost.
    pub overhead: OverheadMeter,
}

/// Summarize one scope's bundle into the per-rank wait-state breakdown for
/// the `--json` report.
pub fn wait_states(scope: &str, bundle: &TraceBundle) -> ScopeWaitStates {
    let ranks = bundle
        .ranks
        .iter()
        .map(|tr| {
            let attr = attribution::attribute(tr);
            let causes = WaitCause::ALL
                .iter()
                .filter_map(|c| {
                    attr.totals.get(c.label()).map(|&ns| CauseTotal {
                        cause: c.label().to_string(),
                        ns,
                    })
                })
                .collect();
            RankWaitStates {
                rank: tr.rank,
                wait_intervals: attr.wait_intervals,
                nonoverlap_ns: attr.total_nonoverlap(),
                causes,
            }
        })
        .collect();
    ScopeWaitStates {
        scope: scope.to_string(),
        ranks,
    }
}

/// Build the attribution artifact for one harness from its scope bundles
/// (scope order), accumulating the self-overhead meter as it goes.
pub fn attribution_artifact(id: &str, scoped: &[(String, &TraceBundle)]) -> AttributionArtifact {
    let mut overhead = OverheadMeter::default();
    let scopes = scoped
        .iter()
        .map(|(scope, bundle)| {
            overhead.scopes += 1;
            let ranks = bundle
                .ranks
                .iter()
                .map(|tr| {
                    overhead.ranks += 1;
                    overhead.events += tr.events.len() as u64;
                    overhead.bound_records += tr.bounds.len() as u64;
                    overhead.wait_intervals += tr.waits.len() as u64;
                    let attr = attribution::attribute(tr);
                    overhead.attributed_ns += attr.total_nonoverlap();
                    RankAttributionJson {
                        rank: tr.rank,
                        wait_intervals: attr.wait_intervals,
                        transfers: attr
                            .records
                            .iter()
                            .map(|r| TransferJson {
                                id: r.id,
                                bytes: r.bytes,
                                xfer_time: r.xfer_time,
                                max_overlap: r.max_overlap,
                                nonoverlap: r.nonoverlap,
                                flagged: r.flagged,
                                breakdown: r
                                    .breakdown
                                    .iter()
                                    .map(|s| SliceJson {
                                        cause: s.cause.label().to_string(),
                                        ns: s.ns,
                                    })
                                    .collect(),
                            })
                            .collect(),
                    }
                })
                .collect();
            ScopeAttributionJson {
                scope: scope.clone(),
                ranks,
            }
        })
        .collect();
    AttributionArtifact {
        id: id.to_string(),
        scopes,
        overhead,
    }
}

/// Collapsed-stack (flamegraph) text for one harness: each scope's dominant
/// wait chains concatenated in scope order. Lines are
/// `scope;rank N;<call>;<cause> <ns>`.
pub fn collapsed(scoped: &[(String, &TraceBundle)]) -> String {
    let mut out = String::new();
    for (_, bundle) in scoped {
        out.push_str(&attribution::collapsed_stack(bundle));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlap_core::attribution::{WaitCause, WaitInterval};
    use overlap_core::bounds::XferCase;
    use overlap_core::trace::{BoundRecord, RankTrace};
    use overlap_core::{Event, EventKind};

    fn bundle() -> TraceBundle {
        TraceBundle {
            scope: "t/a".into(),
            ranks: vec![RankTrace {
                rank: 0,
                events: vec![
                    Event::new(0, EventKind::CallEnter { name: "MPI_Recv" }),
                    Event::new(500, EventKind::XferEnd { id: 1, bytes: 256 }),
                    Event::new(500, EventKind::CallExit),
                ],
                bounds: vec![BoundRecord {
                    id: Some(1),
                    bytes: 256,
                    begin_t: Some(0),
                    end_t: 500,
                    xfer_time: 300,
                    min: 0,
                    max: 0,
                    case: XferCase::SameCall,
                    flagged: false,
                    clamped: false,
                }],
                waits: vec![WaitInterval {
                    start: 100,
                    end: 400,
                    cause: WaitCause::LateSender,
                    xfer: Some(1),
                }],
            }],
            extras: vec![],
        }
    }

    #[test]
    fn wait_states_reconcile_per_rank() {
        let b = bundle();
        let ws = wait_states("t/a", &b);
        assert_eq!(ws.ranks.len(), 1);
        let r = &ws.ranks[0];
        assert_eq!(r.nonoverlap_ns, 300);
        let total: u64 = r.causes.iter().map(|c| c.ns).sum();
        assert_eq!(total, r.nonoverlap_ns);
        assert!(r.causes.iter().any(|c| c.cause == "late_sender"));
    }

    #[test]
    fn artifact_carries_overhead_meter() {
        let b = bundle();
        let scoped = vec![("t/a".to_string(), &b)];
        let art = attribution_artifact("t", &scoped);
        assert_eq!(art.overhead.scopes, 1);
        assert_eq!(art.overhead.events, 3);
        assert_eq!(art.overhead.bound_records, 1);
        assert_eq!(art.overhead.wait_intervals, 1);
        assert_eq!(art.overhead.attributed_ns, 300);
        assert_eq!(art.scopes[0].ranks[0].transfers[0].nonoverlap, 300);
    }

    #[test]
    fn collapsed_concatenates_scopes_in_order() {
        let b = bundle();
        let scoped = vec![("t/a".to_string(), &b)];
        let s = collapsed(&scoped);
        assert_eq!(s, "t/a;rank 0;MPI_Recv;late_sender 300\n");
    }
}
