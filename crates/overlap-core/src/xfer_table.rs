//! The a-priori transfer-time table.
//!
//! The bound computation needs `xfer_time`, "the time for the data transfer
//! operation on the network that is measured a priori by running a standard
//! microbenchmark test" (paper Sec. 2.2 — the authors used Mellanox's
//! `perf_main`). The table maps message size → one-way transfer time and is
//! stored on disk; the communication library reads it into memory during
//! initialization (the paper notes this one-time cost explicitly).

use serde::{Deserialize, Serialize};

/// Piecewise-linear message-size → transfer-time table.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct XferTimeTable {
    /// `(bytes, ns)` points, strictly increasing in bytes.
    points: Vec<(u64, u64)>,
}

impl XferTimeTable {
    /// Build from measurement points. Points are sorted and deduplicated by
    /// size; at least one point is required.
    pub fn from_points(mut points: Vec<(u64, u64)>) -> Self {
        assert!(!points.is_empty(), "xfer table needs at least one point");
        points.sort_unstable_by_key(|&(b, _)| b);
        points.dedup_by_key(|&mut (b, _)| b);
        XferTimeTable { points }
    }

    /// Build by sampling a cost function at power-of-two sizes from
    /// `min_bytes` to `max_bytes` inclusive (plus the exact end points).
    /// This is how the suite's "perf_main" generator produces tables.
    pub fn sample(min_bytes: u64, max_bytes: u64, mut f: impl FnMut(u64) -> u64) -> Self {
        assert!(min_bytes <= max_bytes);
        let mut points = vec![(min_bytes, f(min_bytes))];
        let mut b = min_bytes.max(1).next_power_of_two();
        if b == min_bytes {
            b *= 2;
        }
        while b < max_bytes {
            points.push((b, f(b)));
            b *= 2;
        }
        if max_bytes > min_bytes {
            points.push((max_bytes, f(max_bytes)));
        }
        XferTimeTable::from_points(points)
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the table has no points (never: construction requires one).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The raw points.
    pub fn points(&self) -> &[(u64, u64)] {
        &self.points
    }

    /// Look up the transfer time for a `bytes`-sized message.
    ///
    /// Linear interpolation between bracketing points; clamped to the first
    /// point below the table range; linearly extrapolated from the last two
    /// points above it (transfer time is asymptotically linear in size).
    /// Both the interpolation and extrapolation paths round to the nearest
    /// nanosecond; a decreasing tail extrapolates downward and clamps at 0
    /// rather than silently flattening.
    ///
    /// ```
    /// use overlap_core::XferTimeTable;
    ///
    /// let t = XferTimeTable::from_points(vec![(1_000, 500), (2_000, 900)]);
    /// assert_eq!(t.lookup(1_000), 500);  // exact point
    /// assert_eq!(t.lookup(1_500), 700);  // interpolated
    /// assert_eq!(t.lookup(100), 500);    // clamped below the range
    /// assert_eq!(t.lookup(3_000), 1300); // extrapolated above it
    /// ```
    pub fn lookup(&self, bytes: u64) -> u64 {
        let pts = &self.points;
        if bytes <= pts[0].0 {
            return pts[0].1;
        }
        if let Some(&(last_b, last_t)) = pts.last() {
            if bytes >= last_b {
                if pts.len() < 2 {
                    return last_t;
                }
                let (pb, pt) = pts[pts.len() - 2];
                let slope = (last_t as f64 - pt as f64) / (last_b - pb) as f64;
                let v = last_t as f64 + slope * (bytes - last_b) as f64;
                return v.round().max(0.0) as u64;
            }
        }
        let idx = pts.partition_point(|&(b, _)| b <= bytes);
        let (b0, t0) = pts[idx - 1];
        let (b1, t1) = pts[idx];
        let frac = (bytes - b0) as f64 / (b1 - b0) as f64;
        (t0 as f64 + frac * (t1 as f64 - t0 as f64)).round() as u64
    }

    /// Serialize to a JSON file (the disk-resident artifact).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self).expect("table serializes");
        std::fs::write(path, json)
    }

    /// Load a table previously written by [`XferTimeTable::save`].
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let data = std::fs::read_to_string(path)?;
        serde_json::from_str(&data)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_exact_and_interpolated() {
        let t = XferTimeTable::from_points(vec![(100, 1000), (200, 2000)]);
        assert_eq!(t.lookup(100), 1000);
        assert_eq!(t.lookup(200), 2000);
        assert_eq!(t.lookup(150), 1500);
    }

    #[test]
    fn lookup_clamps_below_and_extrapolates_above() {
        let t = XferTimeTable::from_points(vec![(100, 1000), (200, 2000)]);
        assert_eq!(t.lookup(10), 1000);
        assert_eq!(t.lookup(300), 3000);
    }

    #[test]
    fn single_point_table_is_constant() {
        let t = XferTimeTable::from_points(vec![(64, 5000)]);
        assert_eq!(t.lookup(1), 5000);
        assert_eq!(t.lookup(1 << 20), 5000);
    }

    #[test]
    fn sample_covers_range() {
        let t = XferTimeTable::sample(1, 1 << 20, |b| 5000 + b);
        assert_eq!(t.lookup(1), 5001);
        assert_eq!(t.lookup(1 << 20), 5000 + (1 << 20));
        // interior power of two sampled exactly
        assert_eq!(t.lookup(4096), 5000 + 4096);
    }

    #[test]
    fn extrapolation_rounds_like_interpolation() {
        // Slope 10.01 ns/byte: the extrapolated value lands on x.5 and must
        // round (truncation would lose a nanosecond relative to the
        // interpolation path).
        let t = XferTimeTable::from_points(vec![(100, 0), (200, 1001)]);
        assert_eq!(t.lookup(250), 1502); // 1001 + 50*10.01 = 1501.5
        assert_eq!(t.lookup(150), 501); // interpolation: 500.5 rounds too
    }

    #[test]
    fn decreasing_tail_extrapolates_down_and_clamps_at_zero() {
        let t = XferTimeTable::from_points(vec![(100, 2000), (200, 1000)]);
        assert_eq!(t.lookup(250), 500); // follows the -10 ns/byte slope
        assert_eq!(t.lookup(300), 0); // hits zero exactly
        assert_eq!(t.lookup(1000), 0); // clamped, no underflow
    }

    #[test]
    fn unsorted_points_are_sorted() {
        let t = XferTimeTable::from_points(vec![(200, 2000), (100, 1000)]);
        assert_eq!(t.lookup(150), 1500);
    }

    #[test]
    fn save_load_roundtrip() {
        let t = XferTimeTable::sample(64, 1 << 16, |b| 5000 + b);
        let dir = std::env::temp_dir().join("overlap_core_table_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.json");
        t.save(&path).unwrap();
        let loaded = XferTimeTable::load(&path).unwrap();
        assert_eq!(t, loaded);
    }
}
