//! Extended point-to-point API: synchronous sends, blocking probe, waitany,
//! testall, persistent requests.

use overlap_core::RecorderOpts;
use simmpi::{run_mpi, MpiConfig, MpiRunOutcome, Src, TagSel};
use simnet::NetConfig;

fn run(
    nranks: usize,
    cfg: MpiConfig,
    body: impl Fn(&mut simmpi::Mpi) + Send + Sync + 'static,
) -> MpiRunOutcome {
    run_mpi(
        nranks,
        NetConfig::default(),
        cfg,
        RecorderOpts::default(),
        body,
    )
    .expect("run failed")
}

#[test]
fn ssend_blocks_until_receiver_matches() {
    run(2, MpiConfig::default(), |mpi| {
        if mpi.rank() == 0 {
            let t0 = mpi.now();
            mpi.ssend(1, 1, &[1u8; 256]); // eager-sized, but synchronous
            let elapsed = mpi.now() - t0;
            // The receiver only posts its recv after 5 ms of compute, so a
            // synchronous send cannot return before ~5 ms.
            assert!(
                elapsed >= 4_900_000,
                "ssend returned after only {elapsed} ns — did not wait for the match"
            );
        } else {
            mpi.compute(5_000_000);
            let st = mpi.recv(Src::Rank(0), TagSel::Is(1));
            assert_eq!(st.into_data().len(), 256);
        }
    });
}

#[test]
fn plain_send_does_not_block_on_late_receiver() {
    run(2, MpiConfig::default(), |mpi| {
        if mpi.rank() == 0 {
            let t0 = mpi.now();
            mpi.send(1, 1, &[1u8; 256]); // buffered semantics
            assert!(mpi.now() - t0 < 1_000_000, "buffered send blocked");
        } else {
            mpi.compute(5_000_000);
            mpi.recv(Src::Rank(0), TagSel::Is(1));
        }
    });
}

#[test]
fn issend_completes_after_match_for_rendezvous_too() {
    for cfg in [MpiConfig::mvapich2(), MpiConfig::open_mpi_pipelined()] {
        run(2, cfg, |mpi| {
            if mpi.rank() == 0 {
                let r = mpi.issend(1, 1, &vec![2u8; 512 << 10]);
                let st_time_before = mpi.now();
                mpi.wait(r);
                assert!(mpi.now() > st_time_before);
            } else {
                mpi.compute(2_000_000);
                let st = mpi.recv(Src::Rank(0), TagSel::Is(1));
                assert_eq!(st.into_data().len(), 512 << 10);
            }
        });
    }
}

#[test]
fn probe_blocks_then_reports_envelope() {
    run(2, MpiConfig::default(), |mpi| {
        if mpi.rank() == 0 {
            mpi.compute(1_000_000);
            mpi.send(1, 77, b"probe-me");
        } else {
            let (src, tag) = mpi.probe(Src::Any, TagSel::Any);
            assert_eq!((src, tag), (0, 77));
            // Message is still there — probe does not consume.
            let st = mpi.recv(Src::Rank(src), TagSel::Is(tag));
            assert_eq!(&st.into_data()[..], b"probe-me");
        }
    });
}

#[test]
fn waitany_returns_first_completion() {
    run(3, MpiConfig::default(), |mpi| {
        if mpi.rank() == 0 {
            // Rank 2 answers fast, rank 1 slowly.
            let r1 = mpi.irecv(Src::Rank(1), TagSel::Is(1));
            let r2 = mpi.irecv(Src::Rank(2), TagSel::Is(2));
            let (idx, st) = mpi.waitany(&[r1, r2]);
            assert_eq!(idx, 1, "the fast sender should complete first");
            assert_eq!(st.source, 2);
            let (idx2, st2) = mpi.waitany(&[r1]);
            assert_eq!(idx2, 0);
            assert_eq!(st2.source, 1);
        } else if mpi.rank() == 1 {
            mpi.compute(3_000_000);
            mpi.send(0, 1, &[1u8; 64]);
        } else {
            mpi.send(0, 2, &[2u8; 64]);
        }
    });
}

#[test]
fn testall_reports_collective_completion() {
    run(2, MpiConfig::default(), |mpi| {
        if mpi.rank() == 0 {
            let r1 = mpi.irecv(Src::Rank(1), TagSel::Is(1));
            let r2 = mpi.irecv(Src::Rank(1), TagSel::Is(2));
            assert!(!mpi.testall(&[r1, r2]));
            mpi.compute(2_000_000);
            assert!(mpi.testall(&[r1, r2]), "both should have arrived by now");
            mpi.waitall(&[r1, r2]);
        } else {
            mpi.send(0, 1, &[1u8; 32]);
            mpi.send(0, 2, &[2u8; 32]);
        }
    });
}

#[test]
fn persistent_requests_reusable_across_iterations() {
    run(2, MpiConfig::default(), |mpi| {
        let other = 1 - mpi.rank();
        let ps = mpi.send_init(other, 5, &[mpi.rank() as u8; 1024]);
        let pr = mpi.recv_init(Src::Rank(other), TagSel::Is(5));
        for _ in 0..10 {
            let reqs = mpi.startall(std::slice::from_ref(&ps));
            let r = mpi.start(&pr);
            mpi.compute(20_000);
            mpi.wait(reqs[0]);
            let st = mpi.wait(r);
            assert_eq!(st.into_data()[0], other as u8);
        }
    });
    // Start/Startall show up in the per-call stats.
    let out = run(2, MpiConfig::default(), |mpi| {
        let other = 1 - mpi.rank();
        let ps = mpi.send_init(other, 5, &[0u8; 64]);
        let pr = mpi.recv_init(Src::Rank(other), TagSel::Is(5));
        for _ in 0..4 {
            let s = mpi.start(&ps);
            let r = mpi.start(&pr);
            mpi.waitall(&[s, r]);
        }
    });
    assert_eq!(out.reports[0].calls["MPI_Start"].count, 8);
}

#[test]
fn ssend_overlap_bounds_still_bracket_truth() {
    let net = NetConfig::default();
    let out = run(2, MpiConfig::default(), |mpi| {
        let other = 1 - mpi.rank();
        for i in 0..10 {
            let r = mpi.irecv(Src::Rank(other), TagSel::Is(i));
            let s = mpi.issend(other, i, &[4u8; 4096]);
            mpi.compute(100_000);
            mpi.wait(s);
            mpi.wait(r);
        }
    });
    let table = simmpi::default_xfer_table(&net);
    for rank in 0..2 {
        let rep = &out.reports[rank].total;
        let truth = out.true_overlap(rank);
        assert!(rep.min_overlap <= truth);
        assert!(truth <= rep.max_overlap + out.congestion_excess(rank, &table));
    }
}

#[test]
fn event_observer_traces_library_activity() {
    use std::sync::{Arc, Mutex};
    let trace: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let trace_in = Arc::clone(&trace);
    run_mpi(
        2,
        NetConfig::default(),
        MpiConfig::default(),
        RecorderOpts::default(),
        move |mpi| {
            if mpi.rank() == 0 {
                let trace = Arc::clone(&trace_in);
                mpi.set_event_observer(Box::new(move |e: &overlap_core::Event| {
                    trace.lock().unwrap().push(format!("{:?}", e.kind));
                }));
                mpi.send(1, 1, &[1u8; 256]);
                let obs = mpi.take_event_observer();
                assert!(obs.is_some());
            } else {
                mpi.recv(Src::Rank(0), TagSel::Is(1));
            }
        },
    )
    .unwrap();
    let t = trace.lock().unwrap();
    assert!(t.iter().any(|l| l.contains("CallEnter")), "trace: {t:?}");
    assert!(t.iter().any(|l| l.contains("XferBegin")), "trace: {t:?}");
}
