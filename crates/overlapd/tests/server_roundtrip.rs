//! End-to-end service tests over real loopback sockets: framed pushes,
//! HTTP uploads, live endpoints, artifact byte-equivalence, refusal paths,
//! and graceful shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use overlap_core::attribution::{WaitCause, WaitInterval};
use overlap_core::bounds::XferCase;
use overlap_core::stream::SessionFold;
use overlap_core::trace::{jsonl, BoundRecord, ExtraEvent, RankTrace, TraceBundle};
use overlap_core::{Event, EventKind};
use overlapd::{push_text, PushError, Server, Service};

fn ev(t: u64, kind: EventKind) -> Event {
    Event::new(t, kind)
}

/// A deterministic little two-rank trace with transfers, waits and a fault.
fn bundle(scope: &str, shift: u64) -> TraceBundle {
    let rank = |r: usize| RankTrace {
        rank: r,
        events: vec![
            ev(shift, EventKind::CallEnter { name: "MPI_Isend" }),
            ev(
                shift + 5,
                EventKind::XferBegin {
                    id: r as u64 + 1,
                    bytes: 2048,
                },
            ),
            ev(shift + 10, EventKind::CallExit),
            ev(shift + 900, EventKind::CallEnter { name: "MPI_Wait" }),
            ev(
                shift + 1_400,
                EventKind::XferEnd {
                    id: r as u64 + 1,
                    bytes: 2048,
                },
            ),
            ev(shift + 1_410, EventKind::CallExit),
        ],
        bounds: vec![BoundRecord {
            id: Some(r as u64 + 1),
            bytes: 2048,
            begin_t: Some(shift + 5),
            end_t: shift + 1_400,
            xfer_time: 300,
            min: 0,
            max: 300,
            case: XferCase::SplitCalls,
            flagged: false,
            clamped: false,
        }],
        waits: vec![WaitInterval {
            start: shift + 900,
            end: shift + 1_400,
            cause: WaitCause::LateSender,
            xfer: Some(r as u64 + 1),
        }],
    };
    TraceBundle {
        scope: scope.to_string(),
        ranks: vec![rank(0), rank(1)],
        extras: vec![ExtraEvent {
            t: shift + 700,
            name: "fault.dropped".to_string(),
            detail: "synthetic".to_string(),
        }],
    }
}

fn start_server() -> (
    String,
    overlapd::server::ServerHandle,
    std::thread::JoinHandle<()>,
) {
    let service = Arc::new(Service::default());
    let server = Server::bind("127.0.0.1:0", service).expect("bind loopback");
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

/// Tiny HTTP client: one request, returns (status, body bytes).
fn http(addr: &str, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    s.write_all(head.as_bytes()).unwrap();
    s.write_all(body).unwrap();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let sep = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header/body separator");
    (status, raw[sep + 4..].to_vec())
}

#[test]
fn concurrent_pushes_then_live_endpoints_match_local_fold() {
    let (addr, handle, join) = start_server();

    let alpha = jsonl(&[bundle("alpha/p0", 0), bundle("alpha/p1", 10_000)]);
    let beta = jsonl(&[bundle("beta/p0", 5_000)]);

    // Two sessions pushed concurrently from separate client threads.
    let (a2, b2) = (alpha.clone(), beta.clone());
    let (aa, ab) = (addr.clone(), addr.clone());
    let ta = std::thread::spawn(move || push_text(&aa, "alpha", &a2).expect("alpha push"));
    let tb = std::thread::spawn(move || push_text(&ab, "beta", &b2).expect("beta push"));
    let pushed_a = ta.join().unwrap();
    let pushed_b = tb.join().unwrap();
    assert_eq!(pushed_a, 24); // 2 scopes x 2 ranks x 6 events
    assert_eq!(pushed_b, 12);

    // Local reference folds of the same streams.
    let mut ref_a = SessionFold::default();
    ref_a.push_text(&alpha).unwrap();
    let mut ref_b = SessionFold::default();
    ref_b.push_text(&beta).unwrap();

    let (st, body) = http(&addr, "GET", "/healthz", b"");
    assert_eq!((st, body.as_slice()), (200, &b"ok\n"[..]));

    let (st, body) = http(&addr, "GET", "/v1/sessions/alpha/report", b"");
    assert_eq!(st, 200);
    assert_eq!(
        body,
        serde_json::to_string(&ref_a.report()).unwrap().into_bytes()
    );

    let (st, body) = http(&addr, "GET", "/v1/sessions/alpha/series?window_ns=500", b"");
    assert_eq!(st, 200);
    assert_eq!(
        body,
        serde_json::to_string(&ref_a.series(Some(500)))
            .unwrap()
            .into_bytes()
    );

    // Artifact endpoints serve the exact batch file bytes.
    let (st, body) = http(&addr, "GET", "/v1/sessions/beta/attribution.json", b"");
    assert_eq!(st, 200);
    assert_eq!(
        body,
        serde_json::to_string_pretty(&ref_b.attribution("beta"))
            .unwrap()
            .into_bytes()
    );
    let (st, body) = http(&addr, "GET", "/v1/sessions/beta/critpath.folded", b"");
    assert_eq!(st, 200);
    assert_eq!(body, ref_b.collapsed().into_bytes());

    // Fleet = both sessions merged.
    let (st, body) = http(&addr, "GET", "/v1/fleet", b"");
    assert_eq!(st, 200);
    let fleet: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("fleet json");
    assert_eq!(fleet.field("scopes").as_u64(), Some(3));
    assert_eq!(fleet.field("ranks").as_u64(), Some(6));
    assert_eq!(fleet.field("events").as_u64(), Some(36));
    let mut total = overlap_core::OverlapStats::default();
    for f in [&mut ref_a, &mut ref_b] {
        for scope in f.report() {
            for r in &scope.ranks {
                total.merge(&r.total);
            }
        }
    }
    assert_eq!(fleet.field("total"), &serde_json::to_value(&total));

    let (st, _) = http(&addr, "GET", "/v1/sessions/nope/report", b"");
    assert_eq!(st, 404);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn http_upload_equals_framed_push() {
    let (addr, handle, join) = start_server();
    let text = jsonl(&[bundle("up/p0", 0)]);

    push_text(&addr, "framed", &text).expect("framed push");
    let (st, body) = http(&addr, "POST", "/v1/sessions/posted", text.as_bytes());
    assert_eq!(st, 200);
    assert!(String::from_utf8_lossy(&body).starts_with("ok events=12"));

    let (_, framed) = http(&addr, "GET", "/v1/sessions/framed/report", b"");
    let (_, posted) = http(&addr, "GET", "/v1/sessions/posted/report", b"");
    // Same stream, either transport: identical scope contents.
    let f: serde_json::Value = serde_json::from_str(std::str::from_utf8(&framed).unwrap()).unwrap();
    let p: serde_json::Value = serde_json::from_str(std::str::from_utf8(&posted).unwrap()).unwrap();
    assert_eq!(f, p);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn refusals_are_one_line_and_leave_no_session_state() {
    let (addr, handle, join) = start_server();

    // Missing header.
    let err = push_text(
        &addr,
        "s1",
        r#"{"scope":"x","rank":0,"t":0,"ev":"call_exit"}"#,
    )
    .unwrap_err();
    match err {
        PushError::Refused(msg) => {
            assert!(msg.contains("missing schema header"), "got: {msg}");
            assert!(!msg.contains('\n'));
        }
        other => panic!("expected refusal, got {other}"),
    }

    // Version mismatch.
    let err = push_text(&addr, "s2", "{\"ev\":\"header\",\"schema_version\":999}\n").unwrap_err();
    match err {
        PushError::Refused(msg) => assert!(msg.contains("schema_version mismatch"), "got: {msg}"),
        other => panic!("expected refusal, got {other}"),
    }

    // A refused stream folds nothing: the session reports no events.
    let (st, body) = http(&addr, "GET", "/v1/sessions", b"");
    assert_eq!(st, 200);
    let sessions: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
    for s in sessions.as_array().unwrap() {
        assert_eq!(s.field("events").as_u64(), Some(0));
    }

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let (addr, _handle, join) = start_server();
    let (st, body) = http(&addr, "POST", "/v1/shutdown", b"");
    assert_eq!(st, 200);
    assert_eq!(body, b"shutting down\n");
    join.join().unwrap();
    // Connections after shutdown fail (accept loop gone).
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(
        TcpStream::connect(&addr).is_err() || {
            // The OS may briefly accept into the backlog; a request must fail.
            let mut s = TcpStream::connect(&addr).unwrap();
            s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let mut buf = Vec::new();
            s.read_to_end(&mut buf).unwrap_or(0) == 0
        }
    );
}
