//! `cargo bench --bench figures` — regenerates every paper figure's data
//! series and prints it (harness = false; this is a reproduction driver,
//! not a timing benchmark). Runs on the parallel harness runner with the
//! default worker budget; output order stays canonical.

fn main() {
    let archive = std::path::Path::new("target/figures");
    println!("# Paper figure reproduction — Shet et al., CLUSTER 2006");
    println!("# (series shapes are compared against the paper in EXPERIMENTS.md;");
    println!("#  JSON copies land in target/figures/)\n");
    let print_and_save = |run: &bench::runner::HarnessRun| {
        run.series.save_json(archive);
        print!("{}", run.series.render());
        println!();
    };
    bench::runner::run_harnesses(&bench::figures::all(), print_and_save);
    println!("# Ablations (DESIGN.md §6)\n");
    bench::runner::run_harnesses(&bench::ablations::all(), print_and_save);
}
