//! NAS FT (3-D FFT).
//!
//! Transpose-based parallel FFT: each iteration evolves the spectrum, runs
//! local 1-D FFT passes, and performs a global **Alltoall** to transpose the
//! distributed array. The alltoall blocks are long (`n³·16 / np²` bytes) and
//! move inside one blocking collective call — no computation can overlap
//! them — so FT shows the lowest overlap of the suite (paper Figure 13);
//! the little overlap it does report comes from the short `Reduce`/`Bcast`
//! messages of the checksum step.
//!
//! Memory substitution: class payloads are generated per message at
//! `1/vol_scale` of the true volume (the true class-A array alone is 134 MB
//! per transpose); the *compute model* uses the unscaled point counts. The
//! scaled messages remain deep in the rendezvous regime, so the overlap
//! behaviour is unchanged (see `DESIGN.md`).

use simmpi::{Mpi, ReduceOp};

use crate::class::Class;
use crate::model::{flops_ns, FT_EVOLVE_FLOPS, FT_FFT_FLOPS_PER_POINT};

/// FT workload parameters.
#[derive(Debug, Clone)]
pub struct FtParams {
    /// Problem class.
    pub class: Class,
    /// Iterations (NPB: 6 for A, 20 for B; scaled).
    pub iterations: usize,
    /// Volume divisor applied to *message payloads only*.
    pub vol_scale: usize,
    /// Use the non-blocking transpose (`MPI_Ialltoall` overlapped with the
    /// local FFT passes) — the fix the paper's FT analysis motivates.
    pub nonblocking: bool,
}

impl FtParams {
    /// FT at the given class with scaled iterations and a memory-safe
    /// payload scale.
    pub fn new(class: Class) -> Self {
        let vol_scale = match class {
            Class::S | Class::W => 1,
            Class::A => 4,
            Class::B => 8,
        };
        FtParams {
            class,
            iterations: 3,
            vol_scale,
            nonblocking: false,
        }
    }

    /// The non-blocking-transpose variant.
    pub fn nonblocking(class: Class) -> Self {
        FtParams {
            nonblocking: true,
            ..FtParams::new(class)
        }
    }

    /// Grid dimensions `(nx, ny, nz)` (NPB 3.x).
    pub fn dims(&self) -> (usize, usize, usize) {
        match self.class {
            Class::S => (64, 64, 64),
            Class::W => (128, 128, 32),
            Class::A => (256, 256, 128),
            Class::B => (512, 256, 256),
        }
    }

    /// Total grid points.
    pub fn points(&self) -> usize {
        let (x, y, z) = self.dims();
        x * y * z
    }
}

/// Run FT on the given MPI endpoint.
pub fn run_ft(mpi: &mut Mpi, p: &FtParams) {
    let np = mpi.nranks();
    let me = mpi.rank();
    let points = p.points();
    let local_points = points / np;

    // Alltoall block: the local slab re-split across all ranks, complex f64
    // (16 B per point), payload-scaled.
    let block_bytes = (points * 16) / (np * np * p.vol_scale);
    let fft_ns = flops_ns(local_points as f64 * FT_FFT_FLOPS_PER_POINT);
    let evolve_ns = flops_ns(local_points as f64 * FT_EVOLVE_FLOPS);

    // Setup: distribute the roots-of-unity table.
    let mut twiddle = if me == 0 { vec![1u8; 4096] } else { Vec::new() };
    mpi.bcast(0, &mut twiddle);

    for _ in 0..p.iterations {
        // evolve: pointwise exponential factors.
        mpi.compute(evolve_ns);
        // Local FFT passes over the owned slab.
        mpi.compute(fft_ns);
        // Global transpose.
        let blocks: Vec<Vec<u8>> = (0..np)
            .map(|d| vec![(me * np + d) as u8; block_bytes])
            .collect();
        let got = if p.nonblocking {
            // Initiate the transpose, overlap the next FFT pass against it
            // (probing to drive the progress engine), then complete.
            let h = mpi.ialltoall(&blocks);
            let chunks = 8;
            for _ in 0..chunks {
                mpi.compute(fft_ns / chunks);
                mpi.iprobe(simmpi::Src::Any, simmpi::TagSel::Any);
            }
            mpi.icoll_wait(h).into_blocks()
        } else {
            mpi.alltoall(&blocks)
        };
        for (src, b) in got.iter().enumerate() {
            assert_eq!(b.len(), block_bytes);
            assert!(
                b.iter().all(|&x| x == (src * np + me) as u8),
                "transpose corrupted"
            );
        }
        // Second local FFT pass after the transpose (already spent in the
        // non-blocking variant, which folds it into the overlap window).
        if !p.nonblocking {
            mpi.compute(fft_ns);
        }
        // Checksum: short reduction + broadcast of the verification value.
        let sum = mpi.reduce(0, &[me as f64, 1.0], ReduceOp::Sum);
        let mut chk = if me == 0 {
            let s = sum.unwrap();
            s[0].to_le_bytes().to_vec()
        } else {
            Vec::new()
        };
        mpi.bcast(0, &mut chk);
        assert_eq!(chk.len(), 8);
    }
}
