//! Criterion micro-benchmarks: the instrumentation hot path (the paper's
//! low-overhead claim rests on it), the bound processor, table lookups,
//! interval math, and end-to-end simulator throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use overlap_core::{ManualClock, Recorder, RecorderOpts, SizeBins, XferTimeTable};
use simcore::IntervalSet;

fn flat_table() -> XferTimeTable {
    XferTimeTable::sample(1, 8 << 20, |b| 5_000 + b)
}

/// The per-message recorder cost: CALL_ENTER + XFER_BEGIN + CALL_EXIT +
/// CALL_ENTER + XFER_END + CALL_EXIT — what every instrumented send pays.
fn bench_recorder_hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("recorder");
    g.throughput(Throughput::Elements(1));
    g.bench_function("message_cycle", |b| {
        let clock = ManualClock::new();
        let mut rec = Recorder::new(
            0,
            Box::new(clock.clone()),
            flat_table(),
            RecorderOpts::default(),
        );
        let mut id = 0u64;
        b.iter(|| {
            clock.advance(100);
            rec.call_enter("MPI_Isend");
            rec.xfer_begin(id, 4096);
            clock.advance(10);
            rec.call_exit();
            clock.advance(500);
            rec.call_enter("MPI_Wait");
            rec.xfer_end(id, 4096);
            clock.advance(10);
            rec.call_exit();
            id += 1;
        });
    });
    g.bench_function("disabled_noop", |b| {
        let clock = ManualClock::new();
        let mut rec = Recorder::new(
            0,
            Box::new(clock.clone()),
            flat_table(),
            RecorderOpts {
                enabled: false,
                ..Default::default()
            },
        );
        b.iter(|| {
            rec.call_enter("MPI_Isend");
            rec.xfer_begin(1, 4096);
            rec.call_exit();
        });
    });
    g.finish();
}

/// Data-processing module throughput: events folded per second, across
/// queue capacities (the DESIGN.md §6 queue ablation's timing face).
fn bench_processor(c: &mut Criterion) {
    let mut g = c.benchmark_group("processor");
    for capacity in [64usize, 4096] {
        g.throughput(Throughput::Elements(6 * 1000));
        g.bench_function(format!("fold_1000_msgs_cap{capacity}"), |b| {
            b.iter_batched(
                || {
                    let clock = ManualClock::new();
                    let rec = Recorder::new(
                        0,
                        Box::new(clock.clone()),
                        flat_table(),
                        RecorderOpts {
                            queue_capacity: capacity,
                            bins: SizeBins::default(),
                            enabled: true,
                            trace: false,
                        },
                    );
                    (clock, rec)
                },
                |(clock, mut rec)| {
                    for id in 0..1000u64 {
                        clock.advance(100);
                        rec.call_enter("MPI_Isend");
                        rec.xfer_begin(id, 10_240);
                        rec.call_exit();
                        clock.advance(400);
                        rec.call_enter("MPI_Wait");
                        rec.xfer_end(id, 10_240);
                        rec.call_exit();
                    }
                    rec.finish()
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_table_lookup(c: &mut Criterion) {
    let table = flat_table();
    let mut g = c.benchmark_group("xfer_table");
    g.bench_function("lookup_interpolated", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            std::hint::black_box(table.lookup((x % (4 << 20)) + 1))
        });
    });
    g.finish();
}

fn bench_intervals(c: &mut Criterion) {
    let a = IntervalSet::from_unsorted((0..1000).map(|i| (i * 100, i * 100 + 60)).collect());
    let bset = IntervalSet::from_unsorted((0..1000).map(|i| (i * 97 + 13, i * 97 + 55)).collect());
    let mut g = c.benchmark_group("intervals");
    g.bench_function("intersect_1000x1000", |b| {
        b.iter(|| std::hint::black_box(a.intersect(&bset)).total());
    });
    g.bench_function("overlap_with_window", |b| {
        b.iter(|| std::hint::black_box(a.overlap_with(25_000, 75_000)));
    });
    g.finish();
}

/// End-to-end simulated ping-pong throughput (engine + fabric + library +
/// instrumentation together).
fn bench_sim_pingpong(c: &mut Criterion) {
    use overlap_core::RecorderOpts;
    use simmpi::{run_mpi, MpiConfig, Src, TagSel};
    use simnet::NetConfig;
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    g.throughput(Throughput::Elements(200));
    g.bench_function("pingpong_200_msgs", |b| {
        b.iter(|| {
            run_mpi(
                2,
                NetConfig::default(),
                MpiConfig::default(),
                RecorderOpts::default(),
                |mpi| {
                    for i in 0..100 {
                        if mpi.rank() == 0 {
                            mpi.send(1, i, &[1u8; 1024]);
                            mpi.recv(Src::Rank(1), TagSel::Is(i + 1000));
                        } else {
                            mpi.recv(Src::Rank(0), TagSel::Is(i));
                            mpi.send(0, i + 1000, &[2u8; 1024]);
                        }
                    }
                },
            )
            .unwrap()
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_recorder_hot_path,
    bench_processor,
    bench_table_lookup,
    bench_intervals,
    bench_sim_pingpong
);
criterion_main!(benches);
