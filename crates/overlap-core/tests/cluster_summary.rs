//! Cluster-level report merging.

use overlap_core::{ClusterSummary, ManualClock, Recorder, RecorderOpts, XferTimeTable};

fn one_report(rank: usize, n_xfers: u64, compute_per: u64) -> overlap_core::OverlapReport {
    let clock = ManualClock::new();
    let table = XferTimeTable::from_points(vec![(1, 500)]);
    let mut r = Recorder::new(
        rank,
        Box::new(clock.clone()),
        table,
        RecorderOpts::default(),
    );
    for i in 0..n_xfers {
        r.call_enter("Isend");
        r.xfer_begin(i, 1000);
        clock.advance(10);
        r.call_exit();
        clock.advance(compute_per);
        r.call_enter("Wait");
        clock.advance(10);
        r.xfer_end(i, 1000);
        r.call_exit();
    }
    r.finish()
}

#[test]
fn merge_sums_and_tracks_extremes() {
    // Rank 0 overlaps fully (ample compute); rank 1 not at all (none).
    let r0 = one_report(0, 10, 10_000);
    let r1 = one_report(1, 5, 0);
    let sum = ClusterSummary::merge(&[r0.clone(), r1.clone()]);
    assert_eq!(sum.ranks, 2);
    assert_eq!(sum.total.transfers, 15);
    assert_eq!(
        sum.total.data_transfer_time,
        r0.total.data_transfer_time + r1.total.data_transfer_time
    );
    assert!(sum.best_max_pct > 95.0);
    assert!(sum.worst_max_pct < 5.0);
    assert_eq!(
        sum.user_compute_time,
        r0.user_compute_time + r1.user_compute_time
    );
    // Per-bin sums line up with the total.
    let bin_total: u64 = sum.by_bin.iter().map(|b| b.transfers).sum();
    assert_eq!(bin_total, sum.total.transfers);
}

#[test]
fn merge_single_report_is_identity() {
    let r = one_report(3, 4, 100);
    let sum = ClusterSummary::merge(std::slice::from_ref(&r));
    assert_eq!(sum.ranks, 1);
    assert_eq!(sum.total, r.total);
    assert_eq!(sum.worst_max_pct, sum.best_max_pct);
}

#[test]
fn render_text_mentions_rank_count_and_bins() {
    let sum = ClusterSummary::merge(&[one_report(0, 3, 1000), one_report(1, 3, 1000)]);
    let text = sum.render_text();
    assert!(text.contains("2 ranks"));
    assert!(text.contains("transfers 6"));
}

#[test]
#[should_panic(expected = "nothing to merge")]
fn merge_empty_panics() {
    ClusterSummary::merge(&[]);
}

#[test]
fn merge_roundtrips_through_json() {
    let sum = ClusterSummary::merge(&[one_report(0, 2, 50)]);
    let json = serde_json::to_string(&sum).unwrap();
    let back: ClusterSummary = serde_json::from_str(&json).unwrap();
    assert_eq!(back.total, sum.total);
    assert_eq!(back.ranks, sum.ranks);
}
